// Per-verb latency SLOs with burn-rate tracking. An objective declares "this
// verb should answer within T" (optionally "for at least X% of requests":
// `query=2ms@99.9`, default 99%). Every completed request counts as good or
// bad — bad when it failed or overran its verb's threshold — into cumulative
// counters plus two bucketed sliding windows. The exported burn rates follow
// the SRE convention: burn = (bad fraction in window) / error budget, so
// 1.0 means "exactly consuming the budget", 14 means "an hour of this burns
// a day's budget" — the fast (1 min) window catches incidents, the slow
// (1 h) window catches slow leaks.
//
// record() is wait-free (relaxed atomics; window buckets reset racily,
// which can drop a handful of counts at epoch edges — telemetry, not
// accounting). Verbs without an objective are not tracked.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace lama::svc {

struct SloObjective {
  std::string verb;  // lowercase request verb: query, mapbatch, optimize, ...
  std::uint64_t threshold_ns = 0;
  double target = 0.99;  // fraction of requests that must be good
};

// Parses "--slo query=2ms,mapbatch=20ms@99.9,...". Durations accept ns, us,
// ms, and s suffixes (bare numbers are ns). Throws ParseError on malformed
// specs, duplicate verbs, or targets outside (0, 100).
std::vector<SloObjective> parse_slo_spec(const std::string& spec);

class SloTracker {
 public:
  explicit SloTracker(std::vector<SloObjective> objectives);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  [[nodiscard]] bool enabled() const { return !verbs_.empty(); }

  // One completed request for `verb`: good when it succeeded within its
  // objective, bad otherwise. Unknown verbs are ignored.
  void record(std::string_view verb, std::uint64_t duration_ns, bool ok);

  struct VerbSnapshot {
    std::string verb;
    std::uint64_t threshold_ns = 0;
    double target = 0.99;
    std::uint64_t good = 0;  // cumulative
    std::uint64_t bad = 0;   // cumulative
    double fast_burn = 0.0;  // burn rate over the last minute
    double slow_burn = 0.0;  // burn rate over the last hour
  };
  [[nodiscard]] std::vector<VerbSnapshot> snapshot() const;

  // Cumulative bad count across all verbs — the WATCH verb diffs this to
  // emit slo_breach events.
  [[nodiscard]] std::uint64_t breaches() const {
    return breaches_.load(std::memory_order_relaxed);
  }

 private:
  // A sliding window of Buckets epochs, each Width seconds wide. A bucket
  // is valid only while its stored epoch is current; stale buckets are
  // reset on first touch and skipped by readers.
  template <std::size_t Buckets, std::uint64_t Width>
  struct Window {
    struct Bucket {
      std::atomic<std::uint64_t> epoch{~0ULL};
      std::atomic<std::uint64_t> good{0};
      std::atomic<std::uint64_t> bad{0};
    };
    Bucket buckets[Buckets];

    void add(std::uint64_t now_s, bool good_sample) {
      const std::uint64_t epoch = now_s / Width;
      Bucket& b = buckets[epoch % Buckets];
      if (b.epoch.load(std::memory_order_relaxed) != epoch) {
        b.good.store(0, std::memory_order_relaxed);
        b.bad.store(0, std::memory_order_relaxed);
        b.epoch.store(epoch, std::memory_order_relaxed);
      }
      (good_sample ? b.good : b.bad).fetch_add(1, std::memory_order_relaxed);
    }

    // bad fraction over the live buckets; 0 when the window is empty.
    [[nodiscard]] double bad_fraction(std::uint64_t now_s) const {
      const std::uint64_t epoch = now_s / Width;
      std::uint64_t good = 0, bad = 0;
      for (const Bucket& b : buckets) {
        const std::uint64_t e = b.epoch.load(std::memory_order_relaxed);
        if (e == ~0ULL || e > epoch || epoch - e >= Buckets) continue;
        good += b.good.load(std::memory_order_relaxed);
        bad += b.bad.load(std::memory_order_relaxed);
      }
      const std::uint64_t total = good + bad;
      return total == 0 ? 0.0
                        : static_cast<double>(bad) / static_cast<double>(total);
    }
  };

  struct PerVerb {
    SloObjective objective;
    std::atomic<std::uint64_t> good{0};
    std::atomic<std::uint64_t> bad{0};
    Window<12, 5> fast;     // 60 s in 5 s buckets
    Window<60, 60> slow;    // 1 h in 1 min buckets
  };

  // unique_ptr: PerVerb holds atomics and must not move after construction.
  std::vector<std::unique_ptr<PerVerb>> verbs_;
  std::atomic<std::uint64_t> breaches_{0};
};

}  // namespace lama::svc
