// The optimization-result cache: OptimizeResults (opt/optimizer.hpp) cached
// beside the tree and plan caches, keyed by (allocation fingerprint,
// communication-matrix digest, budget) — the full input of an OPTIMIZE
// request. A placement search costs many mapping walks plus O(n^3)
// refinement, so repeat requests for the same traffic on the same
// allocation (the common steady-state: one application profile, many
// launches) must be a lookup, not a search.
//
// Invalidation mirrors the tree cache: invalidate_alloc() drops every
// result computed over a fingerprint when an epoch bump retires the
// allocation. Results are immutable shared_ptrs — a hit can be served while
// another thread invalidates, and the reply keeps its snapshot alive.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "opt/optimizer.hpp"
#include "support/hash.hpp"
#include "support/lru.hpp"
#include "support/numa.hpp"

namespace lama::svc {

struct OptKey {
  std::uint64_t alloc_fp = 0;       // allocation fingerprint
  std::uint64_t matrix_digest = 0;  // CommMatrix::digest()
  std::uint64_t budget = 0;         // OptBudget::key()

  bool operator==(const OptKey& other) const {
    return alloc_fp == other.alloc_fp &&
           matrix_digest == other.matrix_digest && budget == other.budget;
  }
};

struct OptKeyHash {
  std::size_t operator()(const OptKey& key) const {
    std::uint64_t h = fnv1a64("opt-key");
    h = hash_combine(h, key.alloc_fp);
    h = hash_combine(h, key.matrix_digest);
    h = hash_combine(h, key.budget);
    return static_cast<std::size_t>(h);
  }
};

class OptCache {
 public:
  // `capacity_per_shard` of 0 disables caching (every lookup misses, every
  // insert is dropped) — the same convention as the tree and plan caches.
  // `arena`/`numa` (optional) NUMA-place the shard control blocks exactly
  // like ShardedTreeCache; null degrades to plain operator new.
  OptCache(std::size_t num_shards, std::size_t capacity_per_shard,
           support::NumaAllocator* arena = nullptr,
           const support::NumaTopology* numa = nullptr);

  // The cached result, or null on a miss. Hit/miss accounting is the
  // caller's (the service owns the opt_* counters).
  [[nodiscard]] std::shared_ptr<const opt::OptimizeResult> get(
      const OptKey& key);

  void put(const OptKey& key,
           std::shared_ptr<const opt::OptimizeResult> result);

  // Drops every result computed over this fingerprint — invoked by the same
  // epoch-bump hook that invalidates the tree and plan caches. Returns the
  // number removed.
  std::size_t invalidate_alloc(std::uint64_t alloc_fp);

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  // Cached results across all shards (racy under concurrency; for tests).
  [[nodiscard]] std::size_t size() const;

 private:
  using ResultPtr = std::shared_ptr<const opt::OptimizeResult>;

  struct Shard {
    explicit Shard(std::size_t capacity) : lru(capacity) {}
    std::mutex mu;
    LruMap<OptKey, ResultPtr, OptKeyHash> lru;
  };

  Shard& shard_for(const OptKey& key);

  std::vector<support::NumaUniquePtr<Shard>> shards_;
};

}  // namespace lama::svc
