// The service's wire protocol: line-oriented over an istream/ostream pair,
// so `lamactl serve` runs on plain stdin/stdout — deterministic, pipeable,
// and testable without sockets. One response line per command:
//
//   NODE <alloc-id> <slots> <topology s-expr>   -> OK node ...
//   MAP <alloc-id> <np> <spec> [key=value ...]  -> OK hit=... pus=... | ERR ...
//   BATCH <n>       (the next n MAP lines execute concurrently;
//                    n response lines follow, in request order)
//   STATS           -> STATS <key=value counters>
//   QUIT            -> OK bye (serving stops; EOF works too)
//
// MAP options: oversub=0|1, pus=<per-proc PUs>, npernode=<cap>,
// bind=<target>. Blank lines and '#' comments are ignored. Full reference:
// docs/service.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "cluster/cluster.hpp"
#include "svc/service.hpp"

namespace lama::svc {

// Runs the protocol until QUIT or EOF; returns the number of MAP requests
// served. Malformed commands produce an ERR line and serving continues.
// When `stats_at_eof` is set, a final STATS line is emitted after the loop.
std::size_t serve(std::istream& in, std::ostream& out,
                  MappingService& service, bool stats_at_eof = false);

// The client side of one query: NODE lines defining `alloc` under
// `alloc_id`, then a MAP line. `options` is the raw "key=value ..." tail
// (may be empty). This is what `lamactl query` prints.
std::string format_query(const Allocation& alloc, const std::string& alloc_id,
                         std::size_t np, const std::string& spec,
                         const std::string& options = "");

// The response line for one MAP: "OK hit=0 coalesced=0 np=8 sweeps=1
// nodes=0,0,1,1 pus=0,2,0,2 [widths=...]" or "ERR <message>".
std::string format_map_response(const MapResponse& response);

}  // namespace lama::svc
