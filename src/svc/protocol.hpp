// The service's wire protocol: line-oriented over an istream/ostream pair,
// so `lamactl serve` runs on plain stdin/stdout — deterministic, pipeable,
// and testable without sockets. One response line per command:
//
//   NODE <alloc-id> <slots> <topology s-expr>   -> OK node ...
//   MAP <alloc-id> <np> <spec> [key=value ...]  -> OK hit=... pus=... | ERR ...
//   BATCH <n>       (the next n MAP lines execute concurrently;
//                    n response lines follow, in request order)
//   MAPBATCH <n> <job>...  (n jobs on one line, each
//                    "<alloc-id>/<np>/<spec>[/key=value]..."; n "JOB <i> ..."
//                    response lines in job order, then one trailer
//                    "OK mapbatch jobs=<n> ok=<k> err=<m>". One bad job
//                    answers "JOB <i> ERR ..." without failing the rest.)
//   OFFLINE <alloc-id> <node> [pu...]           -> OK offline ... epoch=...
//   ONLINE <alloc-id> <node> [pu...]            -> OK online ... epoch=...
//   REMAP <alloc-id> [timeout=ms]               -> OK remap ... | ERR ...
//   OPTIMIZE <alloc-id> <np> pattern=<name>[:<bytes>] [key=value ...]
//   OPTIMIZE <alloc-id> <np> matrix=<nlines> [key=value ...]
//                   (matrix= reads the next nlines as communication-matrix
//                    body lines — "<src> <dst> <bytes>" edges or dense
//                    "row <i> <v0> ...": the "np" header is implied by <np>.
//                    Answers "OK optimize hit=... cost=... static=..." with
//                    the optimized placement; see docs/optimize.md.)
//   STATS [json]    -> STATS <key=value counters> | STATS <one-line JSON>
//   METRICS [json]  -> Prometheus text format, terminated by a "# EOF"
//                      line | METRICS <one-line JSON> (same snapshot)
//   TRACE <id>|last|errors  -> TRACE id=<id> <Chrome trace-event JSON,
//                      one line> | ERR (tracing off, or not retained)
//   HEALTH          -> OK health status=ready|draining ... (liveness,
//                      readiness, recovery status, journal lag; grammar in
//                      docs/resilience.md. Always served, even draining.)
//   WATCH [interval_ms] [stats|metrics|events]  -> socket connections only
//                      (svc/event_loop.hpp): OK watch interval_ms=<n>
//                      mode=<m>, then server-pushed snapshots every interval
//                      (STATS line / Prometheus text framed by "# EOF") and
//                      immediate "EVENT failure ..."/"EVENT slo_breach ..."
//                      lines; "WATCH stop" unsubscribes. On stdin: ERR.
//   QUIT            -> OK bye (serving stops; EOF works too)
//
// MAP options: oversub=0|1, pus=<per-proc PUs>, npernode=<cap>,
// bind=<target>, timeout=<ms>, threads=<mapping workers> (0 = sequential
// walk; N runs lama_map_parallel — same bytes out either way). MAPBATCH
// jobs take the same options, '/'-separated since a job must stay one
// token. Blank lines and '#' comments are ignored.
// All numeric fields are parsed with overflow rejection and protocol bounds
// (kMaxNp and friends) — malformed or absurd input answers ERR and the
// session continues; nothing a client sends can wrap an integer or
// allocate unboundedly. Full reference: docs/service.md, docs/resilience.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "svc/service.hpp"

namespace lama::dur {
class StateStore;
}  // namespace lama::dur

namespace lama::svc {

// Protocol bounds on untrusted numeric input. Generous for any real job,
// small enough that a hostile value cannot drive memory growth or a
// near-endless mapping walk.
inline constexpr std::size_t kMaxNp = 1u << 20;         // processes per MAP
inline constexpr std::size_t kMaxSlots = 1u << 20;      // slots per NODE
inline constexpr std::size_t kMaxPusPerProc = 1u << 12;
inline constexpr std::size_t kMaxBatch = 4096;          // jobs per (MAP)BATCH
inline constexpr std::size_t kMaxTimeoutMs = 3'600'000; // one hour
inline constexpr std::size_t kMaxMapThreads = 64;       // threads= per MAP
inline constexpr std::size_t kMaxNodesPerAlloc = 1u << 16;
// OPTIMIZE runs an O(np^2) evaluation per candidate and O(np^3) refinement
// passes, so its np is bounded far below kMaxNp — a hostile count must not
// buy minutes of CPU with one line. The matrix payload and search knobs are
// bounded for the same reason.
inline constexpr std::size_t kMaxOptNp = 256;           // processes
inline constexpr std::size_t kMaxOptMatrixLines = 8192; // payload lines
inline constexpr std::size_t kMaxOptCandidates = 64;    // budget=
inline constexpr std::size_t kMaxOptPasses = 16;        // passes=

// One live protocol session: named allocations under construction, their
// availability epochs, and the last lama mapping per allocation (what REMAP
// re-places). serve() is a loop over execute(); the fault-injection harness
// drives execute() directly so it can interleave availability faults,
// malformed lines, and cache corruption between requests.
class ProtocolSession {
 public:
  explicit ProtocolSession(MappingService& service);
  ~ProtocolSession();

  ProtocolSession(const ProtocolSession&) = delete;
  ProtocolSession& operator=(const ProtocolSession&) = delete;

  // Executes one command line and returns the full response text (newline-
  // terminated; `n + 1` lines for a BATCH). BATCH reads its MAP lines from
  // `more`. Blank and comment lines return "". Errors never throw — they
  // answer "ERR ...\n" and leave the session usable.
  std::string execute(const std::string& line, std::istream& more);

  // What recovery found and whether it checked out (HEALTH reports this).
  struct RecoveryInfo {
    bool attempted = false;      // restore_from() ran
    bool recovered = false;      // any state came back from disk
    bool self_check_ok = true;   // rebuilt digest matched the last seal
    bool torn_tail = false;      // the journal lost an unsealed tail
    std::size_t snapshot_lines = 0;
    std::size_t journal_records = 0;
    std::size_t replay_errors = 0;  // restored lines that failed to apply
    std::size_t prewarmed = 0;      // cache pre-warm mappings that succeeded
    std::vector<std::string> warnings;
  };

  // Durability: restores state from `store` (newest snapshot, then journal
  // replay, tolerating a torn tail), verifies the rebuilt state digest
  // against the last sealed record, optionally pre-warms the caches for
  // restored allocations, and records every subsequent mutation into the
  // store. Never throws and never refuses — recovery trouble lands in the
  // returned info (and in HEALTH), the session always starts. Call once,
  // before serving traffic.
  RecoveryInfo restore_from(dur::StateStore& store);

  // Stable fingerprint of the full control-plane state: allocation ids,
  // topologies with availability flags, epochs, and remap baselines. Every
  // journal record seals the writer's post-mutation digest; recovery
  // recomputes this and compares.
  [[nodiscard]] std::uint64_t state_digest() const;

  // The session state as restorable lines (what write_snapshot stores):
  // NODE lines whose serialized topologies carry the availability flags,
  // then #EPOCH and #LAST directives pinning what NODE replay cannot.
  [[nodiscard]] std::vector<std::string> snapshot_lines() const;

  // True once QUIT was executed.
  [[nodiscard]] bool done() const { return done_; }
  // MAP/REMAP requests answered so far (both OK and ERR, excluding requests
  // whose line failed to parse).
  [[nodiscard]] std::size_t served() const { return served_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  bool done_ = false;
  std::size_t served_ = 0;
};

// Runs the protocol until QUIT or EOF; returns the number of MAP requests
// served. Malformed commands produce an ERR line and serving continues.
// When `stats_at_eof` is set, a final STATS line is emitted after the loop.
std::size_t serve(std::istream& in, std::ostream& out,
                  MappingService& service, bool stats_at_eof = false);

// serve() over a caller-owned session (so durability can be attached and
// restored before the loop, and the final snapshot written after it) with a
// stop predicate polled before every read — the signal-driven drain exits
// here. A signal interrupting the blocking read also ends the loop: the
// reader fails on EINTR, getline returns false, and control comes back.
std::size_t serve(std::istream& in, std::ostream& out,
                  ProtocolSession& session, MappingService& service,
                  bool stats_at_eof = false,
                  const std::function<bool()>& stop = nullptr);

// The client side of one query: NODE lines defining `alloc` under
// `alloc_id`, then a MAP line. `options` is the raw "key=value ..." tail
// (may be empty). This is what `lamactl query` prints.
std::string format_query(const Allocation& alloc, const std::string& alloc_id,
                         std::size_t np, const std::string& spec,
                         const std::string& options = "");

// The response line for one MAP: "OK hit=0 coalesced=0 np=8 sweeps=1
// nodes=0,0,1,1 pus=0,2,0,2 [widths=...]", "ERR busy retry-after=<ms>" for
// a shed request, or "ERR <message>".
std::string format_map_response(const MapResponse& response);

}  // namespace lama::svc
