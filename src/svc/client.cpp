#include "svc/client.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <thread>

#include "support/strings.hpp"
#include "svc/protocol.hpp"

namespace lama::svc {

bool QueryResult::ok() const { return starts_with(response, "OK"); }

bool BatchResult::ok() const { return starts_with(trailer, "OK"); }

std::string format_mapbatch(const std::vector<BatchJob>& jobs) {
  std::string out = "MAPBATCH " + std::to_string(jobs.size());
  for (const BatchJob& job : jobs) {
    out += " " + job.alloc_id + "/" + std::to_string(job.np) + "/" + job.spec;
    for (const std::string& opt : job.options) out += "/" + opt;
  }
  return out;
}

bool parse_busy_response(const std::string& response,
                         std::uint32_t& retry_after_ms) {
  static constexpr std::string_view kPrefix = "ERR busy retry-after=";
  if (!starts_with(response, kPrefix)) return false;
  const std::string tail = trim(response.substr(kPrefix.size()));
  try {
    retry_after_ms =
        static_cast<std::uint32_t>(parse_size_bounded(tail, "retry-after",
                                                      kMaxTimeoutMs));
  } catch (...) {
    return false;  // malformed hint: treat as a terminal error, not busy
  }
  return true;
}

QueryClient::QueryClient(Transport transport, RetryPolicy policy)
    : transport_(std::move(transport)),
      policy_(policy),
      sleeper_([](std::uint32_t ms) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }),
      jitter_(policy.seed) {}

void QueryClient::set_sleeper(Sleeper sleeper) {
  sleeper_ = std::move(sleeper);
}

std::uint32_t QueryClient::backoff_ms(std::size_t attempt,
                                      std::uint32_t server_hint_ms) {
  // Capped exponential: base * 2^(attempt-1), clamped to max_ms.
  std::uint64_t exp = policy_.base_ms;
  for (std::size_t i = 1; i < attempt && exp < policy_.max_ms; ++i) exp *= 2;
  exp = std::min<std::uint64_t>(exp, policy_.max_ms);
  // Half-jitter: uniformly in [exp/2, exp], so synchronized clients spread
  // out while the delay stays within a factor of two of the schedule.
  const std::uint64_t half = exp / 2;
  const std::uint64_t jittered =
      half + (half > 0 ? jitter_.next_below(half + 1) : 0);
  // The server's hint is a promise that retrying sooner is pointless.
  return static_cast<std::uint32_t>(
      std::max<std::uint64_t>(jittered, server_hint_ms));
}

QueryResult QueryClient::send(const std::string& line) {
  QueryResult result;
  const std::size_t attempts = std::max<std::size_t>(policy_.max_attempts, 1);
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    result.response = transport_(line);
    result.attempts = attempt;
    std::uint32_t hint_ms = 0;
    if (!parse_busy_response(result.response, hint_ms)) return result;
    if (attempt == attempts) break;  // budget exhausted: report busy
    const std::uint32_t delay = backoff_ms(attempt, hint_ms);
    result.total_backoff_ms += delay;
    if (delay > 0) sleeper_(delay);
  }
  result.gave_up_busy = true;
  return result;
}

QueryResult QueryClient::query(const Allocation& alloc,
                               const std::string& alloc_id, std::size_t np,
                               const std::string& spec,
                               const std::string& options) {
  // NODE lines are definitions, not work — they are never shed, so a non-OK
  // response is terminal.
  const std::string text = format_query(alloc, alloc_id, np, spec, options);
  std::size_t pos = 0;
  std::string map_line;
  while (pos < text.size()) {
    const auto nl = text.find('\n', pos);
    const std::string line = text.substr(pos, nl - pos);
    pos = nl == std::string::npos ? text.size() : nl + 1;
    if (line.empty()) continue;
    if (starts_with(line, "MAP ")) {
      map_line = line;  // always the last line of a query
      continue;
    }
    QueryResult setup;
    setup.response = transport_(line);
    setup.attempts = 1;
    if (!setup.ok()) return setup;
  }
  return send(map_line);
}

BatchResult QueryClient::map_batch(const std::vector<BatchJob>& jobs,
                                   const MultiTransport& transport) {
  BatchResult result;
  result.responses.assign(jobs.size(), "");
  // `pending[j]` is the original position of the j-th job of the next send:
  // each retry round re-sends only the busy subset as a smaller MAPBATCH.
  std::vector<std::size_t> pending(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) pending[i] = i;
  std::vector<BatchJob> to_send = jobs;

  const std::size_t attempts = std::max<std::size_t>(policy_.max_attempts, 1);
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    const std::vector<std::string> lines =
        transport(format_mapbatch(to_send));
    result.attempts = attempt;
    result.trailer = lines.empty() ? std::string() : lines.back();
    if (!result.ok()) {
      // The batch line itself was rejected (or the stream died): terminal,
      // and there are no per-job responses to merge.
      return result;
    }

    // "JOB <i> <response>" -> response, indexed within this send.
    std::vector<std::string> slot(to_send.size());
    for (std::size_t l = 0; l + 1 < lines.size(); ++l) {
      const std::string& line = lines[l];
      if (!starts_with(line, "JOB ")) continue;
      const auto sp = line.find(' ', 4);
      if (sp == std::string::npos) continue;
      try {
        const std::size_t idx = parse_size_bounded(
            line.substr(4, sp - 4), "JOB index", to_send.size() - 1);
        slot[idx] = line.substr(sp + 1);
      } catch (...) {
        // A malformed JOB line cannot be attributed to a job; drop it. The
        // affected slot settles with an empty (non-OK) response.
      }
    }

    std::vector<std::size_t> busy_positions;
    std::vector<BatchJob> busy_jobs;
    std::uint32_t max_hint_ms = 0;
    for (std::size_t j = 0; j < to_send.size(); ++j) {
      result.responses[pending[j]] = slot[j];
      std::uint32_t hint_ms = 0;
      if (parse_busy_response(slot[j], hint_ms)) {
        busy_positions.push_back(pending[j]);
        busy_jobs.push_back(to_send[j]);
        max_hint_ms = std::max(max_hint_ms, hint_ms);
      }
    }
    if (busy_positions.empty()) return result;
    if (attempt == attempts) break;  // budget exhausted: report busy jobs

    const std::uint32_t delay = backoff_ms(attempt, max_hint_ms);
    result.total_backoff_ms += delay;
    if (delay > 0) sleeper_(delay);
    pending = std::move(busy_positions);
    to_send = std::move(busy_jobs);
  }
  result.gave_up_busy = true;
  return result;
}

QueryClient::Transport stream_transport(std::ostream& out, std::istream& in) {
  return [&out, &in](const std::string& line) {
    out << line << "\n";
    out.flush();
    std::string response;
    std::getline(in, response);
    return response;
  };
}

QueryClient::MultiTransport stream_multi_transport(std::ostream& out,
                                                   std::istream& in) {
  return [&out, &in](const std::string& line) {
    out << line << "\n";
    out.flush();
    std::vector<std::string> lines;
    std::string response;
    while (std::getline(in, response)) {
      lines.push_back(response);
      // MAPBATCH responses are self-delimiting: JOB lines, then exactly one
      // non-JOB line (the trailer, or ERR for a rejected batch).
      if (!starts_with(response, "JOB ")) break;
    }
    return lines;
  };
}

}  // namespace lama::svc
