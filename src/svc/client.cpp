#include "svc/client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>

#include <arpa/inet.h>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "svc/event_loop.hpp"
#include "svc/protocol.hpp"

namespace lama::svc {

bool QueryResult::ok() const { return starts_with(response, "OK"); }

bool BatchResult::ok() const { return starts_with(trailer, "OK"); }

std::string format_mapbatch(const std::vector<BatchJob>& jobs) {
  std::string out = "MAPBATCH " + std::to_string(jobs.size());
  for (const BatchJob& job : jobs) {
    out += " " + job.alloc_id + "/" + std::to_string(job.np) + "/" + job.spec;
    for (const std::string& opt : job.options) out += "/" + opt;
  }
  return out;
}

bool parse_busy_response(const std::string& response,
                         std::uint32_t& retry_after_ms) {
  static constexpr std::string_view kPrefix = "ERR busy retry-after=";
  if (!starts_with(response, kPrefix)) return false;
  const std::string tail = trim(response.substr(kPrefix.size()));
  try {
    retry_after_ms =
        static_cast<std::uint32_t>(parse_size_bounded(tail, "retry-after",
                                                      kMaxTimeoutMs));
  } catch (...) {
    return false;  // malformed hint: treat as a terminal error, not busy
  }
  return true;
}

QueryClient::QueryClient(Transport transport, RetryPolicy policy)
    : transport_(std::move(transport)),
      policy_(policy),
      sleeper_([](std::uint32_t ms) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }),
      jitter_(policy.seed) {}

void QueryClient::set_sleeper(Sleeper sleeper) {
  sleeper_ = std::move(sleeper);
}

std::uint32_t QueryClient::backoff_ms(std::size_t attempt,
                                      std::uint32_t server_hint_ms) {
  // Capped exponential: base * 2^(attempt-1), clamped to max_ms.
  std::uint64_t exp = policy_.base_ms;
  for (std::size_t i = 1; i < attempt && exp < policy_.max_ms; ++i) exp *= 2;
  exp = std::min<std::uint64_t>(exp, policy_.max_ms);
  // Half-jitter: uniformly in [exp/2, exp], so synchronized clients spread
  // out while the delay stays within a factor of two of the schedule.
  const std::uint64_t half = exp / 2;
  const std::uint64_t jittered =
      half + (half > 0 ? jitter_.next_below(half + 1) : 0);
  // The server's hint is a promise that retrying sooner is pointless.
  return static_cast<std::uint32_t>(
      std::max<std::uint64_t>(jittered, server_hint_ms));
}

QueryResult QueryClient::send(const std::string& line) {
  QueryResult result;
  const std::size_t attempts = std::max<std::size_t>(policy_.max_attempts, 1);
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    result.response = transport_(line);
    result.attempts = attempt;
    std::uint32_t hint_ms = 0;
    if (!parse_busy_response(result.response, hint_ms)) return result;
    if (attempt == attempts) break;  // budget exhausted: report busy
    const std::uint32_t delay = backoff_ms(attempt, hint_ms);
    result.total_backoff_ms += delay;
    if (delay > 0) sleeper_(delay);
  }
  result.gave_up_busy = true;
  return result;
}

QueryResult QueryClient::query(const Allocation& alloc,
                               const std::string& alloc_id, std::size_t np,
                               const std::string& spec,
                               const std::string& options) {
  // NODE lines are definitions, not work — they are never shed, so a non-OK
  // response is terminal.
  const std::string text = format_query(alloc, alloc_id, np, spec, options);
  std::size_t pos = 0;
  std::string map_line;
  while (pos < text.size()) {
    const auto nl = text.find('\n', pos);
    const std::string line = text.substr(pos, nl - pos);
    pos = nl == std::string::npos ? text.size() : nl + 1;
    if (line.empty()) continue;
    if (starts_with(line, "MAP ")) {
      map_line = line;  // always the last line of a query
      continue;
    }
    QueryResult setup;
    setup.response = transport_(line);
    setup.attempts = 1;
    if (!setup.ok()) return setup;
  }
  return send(map_line);
}

BatchResult QueryClient::map_batch(const std::vector<BatchJob>& jobs,
                                   const MultiTransport& transport) {
  BatchResult result;
  result.responses.assign(jobs.size(), "");
  // `pending[j]` is the original position of the j-th job of the next send:
  // each retry round re-sends only the busy subset as a smaller MAPBATCH.
  std::vector<std::size_t> pending(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) pending[i] = i;
  std::vector<BatchJob> to_send = jobs;

  const std::size_t attempts = std::max<std::size_t>(policy_.max_attempts, 1);
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    const std::vector<std::string> lines =
        transport(format_mapbatch(to_send));
    result.attempts = attempt;
    result.trailer = lines.empty() ? std::string() : lines.back();
    if (!result.ok()) {
      // The batch line itself was rejected (or the stream died): terminal,
      // and there are no per-job responses to merge.
      return result;
    }

    // "JOB <i> <response>" -> response, indexed within this send.
    std::vector<std::string> slot(to_send.size());
    for (std::size_t l = 0; l + 1 < lines.size(); ++l) {
      const std::string& line = lines[l];
      if (!starts_with(line, "JOB ")) continue;
      const auto sp = line.find(' ', 4);
      if (sp == std::string::npos) continue;
      try {
        const std::size_t idx = parse_size_bounded(
            line.substr(4, sp - 4), "JOB index", to_send.size() - 1);
        slot[idx] = line.substr(sp + 1);
      } catch (...) {
        // A malformed JOB line cannot be attributed to a job; drop it. The
        // affected slot settles with an empty (non-OK) response.
      }
    }

    std::vector<std::size_t> busy_positions;
    std::vector<BatchJob> busy_jobs;
    std::uint32_t max_hint_ms = 0;
    for (std::size_t j = 0; j < to_send.size(); ++j) {
      result.responses[pending[j]] = slot[j];
      std::uint32_t hint_ms = 0;
      if (parse_busy_response(slot[j], hint_ms)) {
        busy_positions.push_back(pending[j]);
        busy_jobs.push_back(to_send[j]);
        max_hint_ms = std::max(max_hint_ms, hint_ms);
      }
    }
    if (busy_positions.empty()) return result;
    if (attempt == attempts) break;  // budget exhausted: report busy jobs

    const std::uint32_t delay = backoff_ms(attempt, max_hint_ms);
    result.total_backoff_ms += delay;
    if (delay > 0) sleeper_(delay);
    pending = std::move(busy_positions);
    to_send = std::move(busy_jobs);
  }
  result.gave_up_busy = true;
  return result;
}

QueryClient::Transport stream_transport(std::ostream& out, std::istream& in) {
  return [&out, &in](const std::string& line) {
    out << line << "\n";
    out.flush();
    std::string response;
    std::getline(in, response);
    return response;
  };
}

QueryClient::MultiTransport stream_multi_transport(std::ostream& out,
                                                   std::istream& in) {
  return [&out, &in](const std::string& line) {
    out << line << "\n";
    out.flush();
    std::vector<std::string> lines;
    std::string response;
    while (std::getline(in, response)) {
      lines.push_back(response);
      // MAPBATCH responses are self-delimiting: JOB lines, then exactly one
      // non-JOB line (the trailer, or ERR for a rejected batch).
      if (!starts_with(response, "JOB ")) break;
    }
    return lines;
  };
}

// ---- NetChannel ------------------------------------------------------------

namespace {

std::string_view first_word(std::string_view text) {
  const std::size_t b = text.find_first_not_of(" \t");
  if (b == std::string_view::npos) return {};
  const std::size_t e = text.find_first_of(" \t\n", b);
  return text.substr(b, e == std::string_view::npos ? e : e - b);
}

}  // namespace

NetChannel::NetChannel(ReadFn read_fn, WriteFn write_fn)
    : read_fn_(std::move(read_fn)), write_fn_(std::move(write_fn)) {}

NetChannel NetChannel::over_fd(int fd) {
  return NetChannel(
      [fd](char* buf, std::size_t len) {
        return static_cast<long>(::read(fd, buf, len));
      },
      [fd](const char* buf, std::size_t len) {
        // MSG_NOSIGNAL so a dead peer surfaces as EPIPE (and the retry loop
        // reconnects) instead of SIGPIPE killing the client. Non-socket fds
        // (pipes in tests) fall back to write().
        const long w = static_cast<long>(::send(fd, buf, len, MSG_NOSIGNAL));
        if (w < 0 && errno == ENOTSOCK) {
          return static_cast<long>(::write(fd, buf, len));
        }
        return w;
      });
}

bool NetChannel::write_all(std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const long w = write_fn_(data.data() + off, data.size() - off);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;  // EOF-ish write or hard error
  }
  return true;
}

bool NetChannel::fill_some(std::string& error) {
  char buf[4096];
  for (;;) {
    const long r = read_fn_(buf, sizeof(buf));
    if (r > 0) {
      buf_.append(buf, static_cast<std::size_t>(r));
      return true;
    }
    if (r == 0) {
      error = "connection closed";
      return false;
    }
    if (errno == EINTR) continue;
    error = std::string("read: ") + std::strerror(errno);
    return false;
  }
}

bool NetChannel::read_line(std::string& line) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buf_, 0, nl);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      buf_.erase(0, nl + 1);
      return true;
    }
    std::string error;
    if (!fill_some(error)) return false;
  }
}

bool NetChannel::write_frame(WireVerb verb, std::string_view payload) {
  return write_all(encode_frame(verb, payload));
}

bool NetChannel::read_frame(WireVerb& verb, std::string& payload,
                            std::string& error) {
  for (;;) {
    WireFrame frame;
    std::size_t consumed = 0;
    const FrameStatus status = decode_frame(buf_, frame, consumed, error);
    if (status == FrameStatus::kBad) return false;
    if (status == FrameStatus::kFrame) {
      verb = frame.verb;
      payload.assign(frame.payload);
      buf_.erase(0, consumed);
      return true;
    }
    if (!fill_some(error)) return false;
  }
}

// ---- SocketClient ----------------------------------------------------------

SocketClient::SocketClient(ConnectConfig config)
    : config_(std::move(config)) {}

SocketClient::~SocketClient() { close(); }

void SocketClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SocketClient::ensure_connected(std::string& error) {
  if (fd_ >= 0) return true;
  ListenAddress addr;
  try {
    addr = parse_listen_address(config_.address);
  } catch (const Error& e) {
    error = e.what();
    return false;
  }
  int fd = -1;
  if (addr.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::strncpy(sun.sun_path, addr.path.c_str(), sizeof(sun.sun_path) - 1);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) < 0) {
      error = "connect " + addr.to_string() + ": " + std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return false;
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(addr.port);
    const std::string host =
        (addr.host == "*" || addr.host == "0.0.0.0" ||
         addr.host == "localhost")
            ? "127.0.0.1"
            : addr.host;
    if (fd < 0 || ::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) < 0) {
      error = "connect " + addr.to_string() + ": " + std::strerror(errno);
      if (fd >= 0) ::close(fd);
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  fd_ = fd;
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  return true;
}

bool SocketClient::exchange(const std::string& command,
                            std::vector<std::string>& lines,
                            std::string& error) {
  NetChannel channel = NetChannel::over_fd(fd_);
  const std::string_view keyword = first_word(command);
  if (config_.binary) {
    const std::optional<WireVerb> verb = wire_verb_for_keyword(keyword);
    if (!verb) {
      // Not a connection failure — do not burn reconnect attempts on it.
      lines = {"ERR unknown command keyword: " + std::string(keyword)};
      return true;
    }
    if (!channel.write_frame(*verb, command)) {
      error = "write failed: " + std::string(std::strerror(errno));
      return false;
    }
    WireVerb rverb = WireVerb::kErr;
    std::string payload;
    if (!channel.read_frame(rverb, payload, error)) return false;
    std::size_t pos = 0;
    while (pos < payload.size()) {
      const std::size_t nl = payload.find('\n', pos);
      if (nl == std::string::npos) {
        lines.push_back(payload.substr(pos));
        break;
      }
      lines.push_back(payload.substr(pos, nl - pos));
      pos = nl + 1;
    }
    return true;
  }

  if (!channel.write_all(command + "\n")) {
    error = "write failed: " + std::string(std::strerror(errno));
    return false;
  }
  const auto read_one = [&]() -> bool {
    std::string line;
    if (!channel.read_line(line)) {
      error = "connection closed mid-response";
      return false;
    }
    lines.push_back(std::move(line));
    return true;
  };
  if (keyword == "MAPBATCH") {
    do {
      if (!read_one()) return false;
    } while (starts_with(lines.back(), "JOB "));
    return true;
  }
  if (keyword == "BATCH") {
    std::size_t n = 1;
    try {
      n = parse_size_bounded(
          std::string(first_word(command.substr(
              command.find("BATCH") + 5))),
          "batch count", kMaxBatch);
    } catch (...) {
      n = 1;  // the server answers one ERR line for a bad count
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!read_one()) return false;
    }
    return true;
  }
  if (keyword == "METRICS" && command.find("json") == std::string::npos) {
    do {
      if (!read_one()) return false;
    } while (lines.back() != "# EOF");
    return true;
  }
  return read_one();
}

std::vector<std::string> SocketClient::request(const std::string& command) {
  std::string error = "no attempts made";
  const std::size_t attempts = std::max<std::size_t>(config_.max_attempts, 1);
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      std::uint64_t delay = config_.backoff_base_ms;
      for (std::size_t i = 2; i < attempt && delay < config_.backoff_max_ms;
           ++i) {
        delay *= 2;
      }
      delay = std::min<std::uint64_t>(delay, config_.backoff_max_ms);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
    if (!ensure_connected(error)) continue;
    std::vector<std::string> lines;
    if (exchange(command, lines, error)) return lines;
    close();  // the connection died mid-exchange; retry on a fresh one
  }
  return {"ERR connect: " + error};
}

bool SocketClient::watch(
    const std::string& command,
    const std::function<bool(const std::string&)>& on_unit,
    std::string& error) {
  if (!ensure_connected(error)) return false;
  NetChannel channel = NetChannel::over_fd(fd_);
  if (config_.binary) {
    if (!channel.write_frame(WireVerb::kWatch, command)) {
      error = std::string("write failed: ") + std::strerror(errno);
      close();
      return false;
    }
    WireVerb verb = WireVerb::kErr;
    std::string payload;
    if (!channel.read_frame(verb, payload, error)) {
      close();
      return false;
    }
    if (verb == WireVerb::kErr || !starts_with(payload, "OK watch")) {
      error = trim(payload);
      close();
      return false;
    }
    while (channel.read_frame(verb, payload, error)) {
      if (!on_unit(payload)) {
        close();
        return true;
      }
    }
  } else {
    if (!channel.write_all(command + "\n")) {
      error = std::string("write failed: ") + std::strerror(errno);
      close();
      return false;
    }
    std::string line;
    if (!channel.read_line(line)) {
      error = "connection closed before the subscription was confirmed";
      close();
      return false;
    }
    if (!starts_with(line, "OK watch")) {
      error = line;
      close();
      return false;
    }
    while (channel.read_line(line)) {
      if (!on_unit(line)) {
        close();
        return true;
      }
    }
    error = "connection closed";
  }
  close();
  return false;
}

QueryClient::Transport SocketClient::transport() {
  return [this](const std::string& line) {
    const std::vector<std::string> lines = request(line);
    return lines.empty() ? std::string() : lines.front();
  };
}

QueryClient::MultiTransport SocketClient::multi_transport() {
  return [this](const std::string& line) { return request(line); };
}

}  // namespace lama::svc
