#include "svc/protocol.hpp"

#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <vector>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "topo/serialize.hpp"

namespace lama::svc {

namespace {

// One named allocation being assembled by NODE lines. Interning is lazy and
// re-done after further NODE lines (a MAP between NODEs sees the allocation
// as defined so far).
struct AllocEntry {
  std::string text;  // wire form accumulated from NODE lines
  std::size_t num_nodes = 0;
  InternedAlloc interned;
  bool dirty = true;
};

struct Session {
  MappingService& service;
  std::map<std::string, AllocEntry> allocs;

  const InternedAlloc& interned(const std::string& id) {
    const auto it = allocs.find(id);
    if (it == allocs.end()) {
      throw ParseError("unknown allocation id '" + id +
                       "' (define it with NODE lines first)");
    }
    AllocEntry& entry = it->second;
    if (entry.dirty) {
      entry.interned = service.intern_serialized(entry.text);
      entry.dirty = false;
    }
    return entry.interned;
  }
};

// "MAP <alloc-id> <np> <spec> [key=value ...]" -> a service request.
MapRequest parse_map_command(Session& session,
                             const std::vector<std::string>& tokens) {
  if (tokens.size() < 4) {
    throw ParseError("MAP needs '<alloc-id> <np> <spec>'");
  }
  MapRequest request;
  request.alloc = session.interned(tokens[1]);
  request.opts.np = parse_size(tokens[2], "MAP process count");
  request.spec = tokens[3];
  for (std::size_t i = 4; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      throw ParseError("MAP option must be key=value: '" + tokens[i] + "'");
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    if (key == "oversub") {
      request.opts.allow_oversubscribe =
          parse_size(value, "MAP oversub") != 0;
    } else if (key == "pus") {
      request.opts.pus_per_proc = parse_size(value, "MAP pus");
    } else if (key == "npernode") {
      request.opts.set_cap(ResourceType::kNode,
                           parse_size(value, "MAP npernode"));
    } else if (key == "bind") {
      request.binding = BindingPolicy{parse_bind_target(value)};
    } else {
      throw ParseError("unknown MAP option '" + key + "'");
    }
  }
  return request;
}

std::string csv(const std::vector<std::size_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

}  // namespace

std::string format_map_response(const MapResponse& response) {
  if (!response.ok()) return "ERR " + response.error;
  std::vector<std::size_t> nodes, pus;
  nodes.reserve(response.mapping.num_procs());
  pus.reserve(response.mapping.num_procs());
  for (const Placement& p : response.mapping.placements) {
    nodes.push_back(p.node);
    pus.push_back(p.representative_pu());
  }
  std::string out = "OK hit=" + std::to_string(response.cache_hit ? 1 : 0) +
                    " coalesced=" + std::to_string(response.coalesced ? 1 : 0) +
                    " np=" + std::to_string(response.mapping.num_procs()) +
                    " sweeps=" + std::to_string(response.mapping.sweeps) +
                    " nodes=" + csv(nodes) + " pus=" + csv(pus);
  if (response.binding.has_value()) {
    std::vector<std::size_t> widths;
    widths.reserve(response.binding->bindings.size());
    for (const ProcessBinding& b : response.binding->bindings) {
      widths.push_back(b.width);
    }
    out += " widths=" + csv(widths);
  }
  return out;
}

std::string format_query(const Allocation& alloc, const std::string& alloc_id,
                         std::size_t np, const std::string& spec,
                         const std::string& options) {
  std::string out;
  for (std::size_t i = 0; i < alloc.num_nodes(); ++i) {
    const AllocatedNode& node = alloc.node(i);
    out += "NODE " + alloc_id + " " + std::to_string(node.slots) + " " +
           serialize_topology(node.topo) + "\n";
  }
  out += "MAP " + alloc_id + " " + std::to_string(np) + " " + spec;
  if (!options.empty()) out += " " + options;
  out += "\n";
  return out;
}

std::size_t serve(std::istream& in, std::ostream& out,
                  MappingService& service, bool stats_at_eof) {
  Session session{service, {}};
  std::size_t served = 0;
  std::string line;

  // Parses upcoming MAP lines of a BATCH; a parse failure becomes an ERR
  // response in that request's slot without aborting the batch.
  const auto parse_batch_line =
      [&](const std::string& text) -> std::optional<MapRequest> {
    const std::vector<std::string> tokens = split_ws(text);
    if (tokens.empty() || tokens[0] != "MAP") {
      throw ParseError("BATCH expects MAP lines, got: '" + trim(text) + "'");
    }
    return parse_map_command(session, tokens);
  };

  while (std::getline(in, line)) {
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> tokens = split_ws(trimmed);
    const std::string& cmd = tokens[0];
    try {
      if (cmd == "NODE") {
        if (tokens.size() < 4) {
          throw ParseError("NODE needs '<alloc-id> <slots> <topology>'");
        }
        // Re-join the topology expression (it may contain spaces).
        const auto topo_at = trimmed.find('(');
        if (topo_at == std::string::npos) {
          throw ParseError("NODE line has no topology s-expression");
        }
        AllocEntry& entry = session.allocs[tokens[1]];
        entry.text += tokens[2] + " " + trimmed.substr(topo_at) + "\n";
        entry.num_nodes += 1;
        entry.dirty = true;
        out << "OK node " << tokens[1] << " n=" << entry.num_nodes << "\n";
      } else if (cmd == "MAP") {
        MapRequest request = parse_map_command(session, tokens);
        out << format_map_response(service.map(request)) << "\n";
        ++served;
      } else if (cmd == "BATCH") {
        if (tokens.size() != 2) throw ParseError("BATCH needs '<count>'");
        const std::size_t count = parse_size(tokens[1], "BATCH count");
        std::vector<std::optional<MapRequest>> slots;
        std::vector<std::string> parse_errors(count);
        slots.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          if (!std::getline(in, line)) {
            throw ParseError("BATCH ended early: expected " +
                             std::to_string(count) + " MAP lines, got " +
                             std::to_string(i));
          }
          try {
            slots.push_back(parse_batch_line(line));
          } catch (const Error& e) {
            slots.push_back(std::nullopt);
            parse_errors[i] = e.what();
          }
        }
        std::vector<MapRequest> requests;
        for (const auto& slot : slots) {
          if (slot.has_value()) requests.push_back(*slot);
        }
        const std::vector<MapResponse> responses =
            service.map_batch(requests);
        std::size_t next = 0;
        for (std::size_t i = 0; i < count; ++i) {
          if (slots[i].has_value()) {
            out << format_map_response(responses[next++]) << "\n";
            ++served;
          } else {
            out << "ERR " << parse_errors[i] << "\n";
          }
        }
      } else if (cmd == "STATS") {
        out << "STATS " << service.counters().stats_line() << "\n";
      } else if (cmd == "QUIT") {
        out << "OK bye\n";
        break;
      } else {
        throw ParseError("unknown command '" + cmd + "'");
      }
    } catch (const Error& e) {
      out << "ERR " << e.what() << "\n";
    }
    out.flush();
  }
  if (stats_at_eof) {
    out << "STATS " << service.counters().stats_line() << "\n";
    out.flush();
  }
  return served;
}

}  // namespace lama::svc
