#include "svc/protocol.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "cluster/alloc_serialize.hpp"
#include "dur/state_store.hpp"
#include "sim/traffic.hpp"
#include "lama/layout.hpp"
#include "obs/chrome.hpp"
#include "obs/tracer.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"
#include "topo/serialize.hpp"

namespace lama::svc {

namespace {

std::string csv(const std::vector<std::size_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

std::string csv_int(const std::vector<int>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

}  // namespace

// The session state behind execute(): named allocations (parsed eagerly from
// NODE lines so OFFLINE/ONLINE can mutate availability in place), their
// epochs, and the last successful lama mapping per allocation for REMAP.
struct ProtocolSession::Impl {
  explicit Impl(MappingService& svc) : service(svc) {}

  // The most recent lama mapping served for an allocation — the state REMAP
  // re-places after an availability change.
  struct LastMap {
    ProcessLayout layout{std::vector<ResourceType>{ResourceType::kNode}};
    MapOptions opts;
    MappingResult mapping;
  };

  struct AllocEntry {
    Allocation current;        // availability edits apply here
    std::uint64_t epoch = 0;   // bumped by NODE/OFFLINE/ONLINE
    InternedAlloc interned;    // lazy snapshot of `current` at `epoch`
    bool dirty = true;
    std::optional<LastMap> last;
    // The last canonical MAP line journaled for this allocation and the
    // epoch it was journaled under: the same line at the same epoch yields
    // the same baseline, so repeat MAPs (the warm path) are not journaled.
    std::string journaled_map_line;
    std::uint64_t journaled_map_epoch = 0;
  };

  MappingService& service;
  std::map<std::string, AllocEntry> allocs;

  // Durability (dur/state_store.hpp): null when serving without persistence.
  dur::StateStore* store = nullptr;
  // True while restored lines replay — replay must not re-journal itself.
  bool replaying = false;
  RecoveryInfo recovery;

  AllocEntry& entry(const std::string& id) {
    const auto it = allocs.find(id);
    if (it == allocs.end()) {
      throw ParseError("unknown allocation id '" + id +
                       "' (define it with NODE lines first)");
    }
    return it->second;
  }

  // Interning is lazy and re-done after any availability change: a MAP after
  // an OFFLINE sees the reduced allocation (and a new fingerprint, so cached
  // trees from the old epoch can never serve it).
  const InternedAlloc& interned(AllocEntry& e) {
    if (e.dirty) {
      e.interned = service.intern(e.current, e.epoch);
      e.dirty = false;
    }
    return e.interned;
  }

  // An availability change starts a new epoch: drop the stale trees now
  // (their fingerprint will never be requested again) and force re-intern.
  void bump_epoch(AllocEntry& e) {
    if (e.interned.valid()) service.invalidate(e.interned.fingerprint);
    e.epoch += 1;
    e.dirty = true;
  }

  MapRequest parse_map_command(const std::vector<std::string>& tokens);
  MapRequest parse_mapbatch_job(const std::string& job);
  std::string handle_node(const std::vector<std::string>& tokens,
                          const std::string& trimmed);
  std::string handle_availability(const std::vector<std::string>& tokens,
                                  bool offline);
  std::string handle_remap(const std::vector<std::string>& tokens,
                           std::size_t& served, obs::Outcome& outcome);
  std::string handle_optimize(const std::vector<std::string>& tokens,
                              std::istream& more, std::size_t& served,
                              obs::Outcome& outcome);
  std::string handle_trace(const std::vector<std::string>& tokens);
  std::string handle_health() const;
  void record_last_map(const std::string& id, const MapRequest& request,
                       const MapResponse& response);

  // Durability plumbing. persist() seals one accepted mutation into the
  // journal (a no-op without a store, and during replay) and rotates a
  // compacting snapshot when enough mutations accumulated. Journal trouble
  // degrades — it is counted and surfaced through HEALTH, never thrown.
  std::uint64_t digest() const;
  std::vector<std::string> dump_lines() const;
  void persist(const std::string& line);
  bool apply_restore_line(const std::string& raw, std::string& error);
  void restore_epoch(const std::vector<std::string>& tokens);
  void restore_last(const std::vector<std::string>& tokens);
};

// Fingerprint of the full control-plane state: every field a snapshot
// preserves and replay rebuilds, nothing more — so a state restored from
// snapshot+journal hashes identically to one replayed from genesis. The
// serialized topology carries the availability ('!') flags, so OFFLINE and
// ONLINE move the digest.
std::uint64_t ProtocolSession::Impl::digest() const {
  std::uint64_t h = fnv1a64("lama-dur-v1");
  for (const auto& [id, e] : allocs) {
    h = hash_combine(h, fnv1a64(id));
    h = hash_combine(h, e.epoch);
    for (std::size_t i = 0; i < e.current.num_nodes(); ++i) {
      const AllocatedNode& node = e.current.node(i);
      h = hash_combine(h, node.slots);
      h = hash_combine(h, fnv1a64(serialize_topology(node.topo)));
    }
    if (!e.last.has_value()) {
      h = hash_combine(h, 0);
      continue;
    }
    h = hash_combine(h, 1);
    h = hash_combine(h, fnv1a64(e.last->layout.to_string()));
    h = hash_combine(h, e.last->opts.np);
    h = hash_combine(h, e.last->opts.allow_oversubscribe ? 1 : 0);
    h = hash_combine(h, e.last->opts.pus_per_proc);
    h = hash_combine(h, e.last->opts.resource_caps[static_cast<std::size_t>(
                            canonical_depth(ResourceType::kNode))]);
    h = hash_combine(h, e.last->mapping.sweeps);
    for (const Placement& p : e.last->mapping.placements) {
      h = hash_combine(h, static_cast<std::uint64_t>(p.rank));
      h = hash_combine(h, p.node);
      h = hash_combine(h, fnv1a64(p.target_pus.to_string()));
    }
  }
  return h;
}

// The session state as restorable lines — what write_snapshot compacts. NODE
// replay rebuilds the allocations (availability flags ride in the serialized
// topology); the #EPOCH directive pins the exact epoch (NODE replay alone
// would undercount it) and #LAST pins the remap baseline without re-running
// the mapping.
std::vector<std::string> ProtocolSession::Impl::dump_lines() const {
  std::vector<std::string> lines;
  for (const auto& [id, e] : allocs) {
    for (std::size_t i = 0; i < e.current.num_nodes(); ++i) {
      const AllocatedNode& node = e.current.node(i);
      lines.push_back("NODE " + id + " " + std::to_string(node.slots) + " " +
                      serialize_topology(node.topo));
    }
    lines.push_back("#EPOCH " + id + " " + std::to_string(e.epoch));
    if (!e.last.has_value()) continue;
    std::string placements;
    for (const Placement& p : e.last->mapping.placements) {
      if (!placements.empty()) placements += ';';
      placements += std::to_string(p.rank) + ":" + std::to_string(p.node) +
                    ":" + p.target_pus.to_string();
    }
    const std::size_t cap = e.last->opts.resource_caps[static_cast<std::size_t>(
        canonical_depth(ResourceType::kNode))];
    lines.push_back(
        "#LAST " + id + " layout=" + e.last->layout.to_string() +
        " np=" + std::to_string(e.last->opts.np) +
        " oversub=" + std::to_string(e.last->opts.allow_oversubscribe ? 1 : 0) +
        " pus=" + std::to_string(e.last->opts.pus_per_proc) +
        " npernode=" + std::to_string(cap) +
        " sweeps=" + std::to_string(e.last->mapping.sweeps) +
        " placements=" + placements);
  }
  return lines;
}

void ProtocolSession::Impl::persist(const std::string& line) {
  if (store == nullptr || replaying) return;
  const std::uint64_t state_digest = digest();
  store->record(line, state_digest);
  if (store->should_snapshot()) {
    store->write_snapshot(dump_lines(), state_digest);
  }
}

// "#EPOCH <id> <n>": pin the allocation's epoch to its pre-crash value.
void ProtocolSession::Impl::restore_epoch(
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 3) throw ParseError("#EPOCH needs '<id> <epoch>'");
  AllocEntry& e = entry(tokens[1]);
  e.epoch = parse_size(tokens[2], "#EPOCH value");
  e.dirty = true;
}

// "#LAST <id> layout=... np=... oversub=... pus=... npernode=... sweeps=...
// placements=rank:node:pus;...": rebuild the remap baseline exactly as the
// writer recorded it, without re-running the mapping.
void ProtocolSession::Impl::restore_last(
    const std::vector<std::string>& tokens) {
  if (tokens.size() < 3) throw ParseError("#LAST needs '<id> key=value ...'");
  AllocEntry& e = entry(tokens[1]);
  LastMap last;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      throw ParseError("#LAST field must be key=value: '" + tokens[i] + "'");
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    if (key == "layout") {
      last.layout = ProcessLayout::parse(value);
      last.mapping.layout = last.layout.to_string();
    } else if (key == "np") {
      last.opts.np = parse_size_bounded(value, "#LAST np", kMaxNp);
    } else if (key == "oversub") {
      last.opts.allow_oversubscribe = parse_size(value, "#LAST oversub") != 0;
    } else if (key == "pus") {
      last.opts.pus_per_proc =
          parse_size_bounded(value, "#LAST pus", kMaxPusPerProc);
    } else if (key == "npernode") {
      const std::size_t cap =
          parse_size_bounded(value, "#LAST npernode", kMaxNp);
      if (cap > 0) last.opts.set_cap(ResourceType::kNode, cap);
    } else if (key == "sweeps") {
      last.mapping.sweeps = parse_size(value, "#LAST sweeps");
    } else if (key == "placements") {
      for (const std::string& field : split(value, ';')) {
        if (field.empty()) continue;
        const std::vector<std::string> parts = split(field, ':');
        if (parts.size() < 2) {
          throw ParseError("#LAST placement needs 'rank:node:pus'");
        }
        Placement p;
        p.rank = static_cast<int>(
            parse_size_bounded(parts[0], "#LAST rank", kMaxNp));
        p.node = parse_size_bounded(parts[1], "#LAST node", kMaxNodesPerAlloc);
        if (parts.size() >= 3 && !parts[2].empty()) {
          p.target_pus = Bitmap::parse(parts[2]);
        }
        last.mapping.placements.push_back(std::move(p));
      }
    } else {
      throw ParseError("unknown #LAST field '" + key + "'");
    }
  }
  last.mapping.procs_per_node.assign(e.current.num_nodes(), 0);
  for (const Placement& p : last.mapping.placements) {
    if (p.node >= e.current.num_nodes()) {
      throw ParseError("#LAST placement node out of range");
    }
    ++last.mapping.procs_per_node[p.node];
  }
  e.last = std::move(last);
}

// One restored line: the snapshot/journal directives, or a regular mutation
// replayed through the same handlers that served it originally (MAP re-runs
// the deterministic mapping, which doubles as cache warming). Returns false
// with a bounded reason when the line cannot apply — recovery notes it and
// keeps going.
bool ProtocolSession::Impl::apply_restore_line(const std::string& raw,
                                               std::string& error) {
  const std::string trimmed = trim(raw);
  if (trimmed.empty()) return true;
  const std::vector<std::string> tokens = split_ws(trimmed);
  try {
    if (tokens[0] == "#EPOCH") {
      restore_epoch(tokens);
      return true;
    }
    if (tokens[0] == "#LAST") {
      restore_last(tokens);
      return true;
    }
    if (tokens[0] == "NODE") {
      handle_node(tokens, trimmed);
      return true;
    }
    if (tokens[0] == "OFFLINE" || tokens[0] == "ONLINE") {
      handle_availability(tokens, tokens[0] == "OFFLINE");
      return true;
    }
    if (tokens[0] == "MAP") {
      const MapRequest request = parse_map_command(tokens);
      const MapResponse response = service.map(request);
      if (!response.ok()) {
        error = response.error.empty() ? "busy" : response.error;
        return false;
      }
      record_last_map(tokens[1], request, response);
      return true;
    }
    if (tokens[0] == "REMAP") {
      std::size_t unused_served = 0;
      obs::Outcome unused_outcome = obs::Outcome::kOk;
      const std::string out =
          handle_remap(tokens, unused_served, unused_outcome);
      if (!starts_with(out, "OK")) {
        error = out;
        return false;
      }
      return true;
    }
    error = "unknown restored line '" + tokens[0] + "'";
    return false;
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
}

// The HEALTH reply: liveness (the reply itself), readiness (status=),
// recovery status, and journal durability at a glance. Grammar documented in
// docs/resilience.md; keys only ever append. Served even while draining —
// an orchestrator must be able to watch the drain finish.
std::string ProtocolSession::Impl::handle_health() const {
  char head[192];
  std::snprintf(head, sizeof(head),
                "OK health status=%s uptime_s=%.1f persist=%d allocs=%zu "
                "state_digest=%016llx",
                service.draining() ? "draining" : "ready", service.uptime_s(),
                store != nullptr ? 1 : 0, allocs.size(),
                static_cast<unsigned long long>(digest()));
  char rec[160];
  std::snprintf(rec, sizeof(rec),
                " recovered=%d recovery_ok=%d recovered_records=%zu "
                "torn_tail=%d prewarmed=%zu",
                recovery.recovered ? 1 : 0, recovery.self_check_ok ? 1 : 0,
                recovery.snapshot_lines + recovery.journal_records,
                recovery.torn_tail ? 1 : 0, recovery.prewarmed);
  char jrn[192];
  if (store != nullptr) {
    const dur::StoreStats s = store->stats();
    std::snprintf(jrn, sizeof(jrn),
                  " journal_records=%llu journal_lag=%llu journal_errors=%llu "
                  "snapshot_seq=%llu snapshots=%llu",
                  static_cast<unsigned long long>(s.journal.appended),
                  static_cast<unsigned long long>(store->journal_lag()),
                  static_cast<unsigned long long>(s.journal.write_errors +
                                                  s.journal.fsync_errors),
                  static_cast<unsigned long long>(store->snapshot_seq()),
                  static_cast<unsigned long long>(s.snapshots));
  } else {
    std::snprintf(jrn, sizeof(jrn),
                  " journal_records=0 journal_lag=0 journal_errors=0 "
                  "snapshot_seq=0 snapshots=0");
  }
  return std::string(head) + rec + jrn;
}

// "MAP <alloc-id> <np> <spec> [key=value ...]" -> a service request. Every
// numeric field is bounds-checked: a hostile count answers ERR instead of
// sizing a vector.
MapRequest ProtocolSession::Impl::parse_map_command(
    const std::vector<std::string>& tokens) {
  if (tokens.size() < 4) {
    throw ParseError("MAP needs '<alloc-id> <np> <spec>'");
  }
  MapRequest request;
  request.alloc = interned(entry(tokens[1]));
  request.opts.np = parse_size_bounded(tokens[2], "MAP process count", kMaxNp);
  request.spec = tokens[3];
  for (std::size_t i = 4; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      throw ParseError("MAP option must be key=value: '" + tokens[i] + "'");
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    if (key == "oversub") {
      request.opts.allow_oversubscribe =
          parse_size(value, "MAP oversub") != 0;
    } else if (key == "pus") {
      request.opts.pus_per_proc =
          parse_size_bounded(value, "MAP pus", kMaxPusPerProc);
    } else if (key == "npernode") {
      request.opts.set_cap(ResourceType::kNode,
                           parse_size_bounded(value, "MAP npernode", kMaxNp));
    } else if (key == "bind") {
      request.binding = BindingPolicy{parse_bind_target(value)};
    } else if (key == "timeout") {
      request.timeout_ms = static_cast<std::uint32_t>(
          parse_size_bounded(value, "MAP timeout", kMaxTimeoutMs));
    } else if (key == "threads") {
      request.map_threads =
          parse_size_bounded(value, "MAP threads", kMaxMapThreads);
    } else {
      throw ParseError("unknown MAP option '" + key + "'");
    }
  }
  return request;
}

// One MAPBATCH job: "<alloc-id>/<np>/<spec>[/key=value]...". '/' separates
// the fields because a job must stay a single whitespace token on the
// MAPBATCH line (the spec itself contains ':', never '/'). The fields after
// the split are exactly a MAP line's tokens, so parsing is shared — and so
// are the bounds checks.
MapRequest ProtocolSession::Impl::parse_mapbatch_job(const std::string& job) {
  std::vector<std::string> tokens = {"MAP"};
  std::size_t pos = 0;
  while (pos <= job.size()) {
    const auto slash = job.find('/', pos);
    const std::string field =
        job.substr(pos, slash == std::string::npos ? std::string::npos
                                                   : slash - pos);
    if (field.empty()) {
      throw ParseError("MAPBATCH job has an empty field: '" + job + "'");
    }
    tokens.push_back(field);
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  if (tokens.size() < 4) {
    throw ParseError("MAPBATCH job needs '<alloc-id>/<np>/<spec>': '" + job +
                     "'");
  }
  return parse_map_command(tokens);
}

std::string ProtocolSession::Impl::handle_node(
    const std::vector<std::string>& tokens, const std::string& trimmed) {
  if (tokens.size() < 4) {
    throw ParseError("NODE needs '<alloc-id> <slots> <topology>'");
  }
  // Validate the slot count before handing the line to the allocation
  // parser, so protocol bounds apply.
  parse_size_bounded(tokens[2], "NODE slots", kMaxSlots);
  // Re-join the topology expression (it may contain spaces).
  const auto topo_at = trimmed.find('(');
  if (topo_at == std::string::npos) {
    throw ParseError("NODE line has no topology s-expression");
  }
  Allocation parsed =
      parse_allocation(tokens[2] + " " + trimmed.substr(topo_at));
  AllocEntry& e = allocs[tokens[1]];
  if (e.current.num_nodes() >= kMaxNodesPerAlloc) {
    throw ParseError("allocation '" + tokens[1] + "' exceeds " +
                     std::to_string(kMaxNodesPerAlloc) + " nodes");
  }
  AllocatedNode node = std::move(parsed.mutable_node(0));
  node.cluster_index = e.current.num_nodes();
  e.current.add(std::move(node));
  bump_epoch(e);
  persist(trimmed);
  return "OK node " + tokens[1] + " n=" + std::to_string(e.current.num_nodes());
}

// OFFLINE/ONLINE <alloc-id> <node> [pu...]: without PU indices the whole
// node object is toggled; with them, individual leaves. ONLINE re-enables
// exactly what the matching OFFLINE disabled — a PU under a dead node stays
// unusable until the node itself comes back.
std::string ProtocolSession::Impl::handle_availability(
    const std::vector<std::string>& tokens, bool offline) {
  const char* verb = offline ? "OFFLINE" : "ONLINE";
  if (tokens.size() < 3) {
    throw ParseError(std::string(verb) + " needs '<alloc-id> <node> [pu...]'");
  }
  AllocEntry& e = entry(tokens[1]);
  const std::size_t node = parse_size_bounded(
      tokens[2], std::string(verb) + " node index", e.current.num_nodes() - 1);
  NodeTopology& topo = e.current.mutable_node(node).topo;
  std::vector<std::size_t> pus;
  for (std::size_t i = 3; i < tokens.size(); ++i) {
    pus.push_back(parse_size_bounded(
        tokens[i], std::string(verb) + " pu index", topo.pu_count() - 1));
  }
  if (pus.empty()) {
    topo.set_object_disabled(ResourceType::kNode, 0, offline);
  } else {
    for (const std::size_t pu : pus) {
      topo.set_object_disabled(topo.leaf_type(), pu, offline);
    }
  }
  bump_epoch(e);
  persist(join(tokens, " "));
  std::string out = std::string("OK ") + (offline ? "offline" : "online") +
                    " " + tokens[1] + " node=" + std::to_string(node) +
                    " epoch=" + std::to_string(e.epoch);
  if (!pus.empty()) out += " pus=" + csv(pus);
  return out;
}

// REMAP <alloc-id> [timeout=ms]: re-place this allocation's last lama
// mapping onto its current (reduced) availability. Survivors keep their
// PUs; only displaced ranks move (lama/remap.hpp).
std::string ProtocolSession::Impl::handle_remap(
    const std::vector<std::string>& tokens, std::size_t& served,
    obs::Outcome& outcome) {
  if (tokens.size() < 2) {
    throw ParseError("REMAP needs '<alloc-id> [timeout=ms]'");
  }
  AllocEntry& e = entry(tokens[1]);
  if (!e.last.has_value()) {
    throw ParseError("no previous lama mapping for '" + tokens[1] +
                     "' (run 'MAP " + tokens[1] + " <np> lama[:layout]' first)");
  }
  RemapRequest request;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    const std::string key =
        eq == std::string::npos ? tokens[i] : tokens[i].substr(0, eq);
    if (eq == std::string::npos || key != "timeout") {
      throw ParseError("unknown REMAP option '" + tokens[i] + "'");
    }
    request.timeout_ms = static_cast<std::uint32_t>(parse_size_bounded(
        tokens[i].substr(eq + 1), "REMAP timeout", kMaxTimeoutMs));
  }
  request.alloc = interned(e);
  request.layout = e.last->layout;
  request.opts = e.last->opts;
  request.previous = &e.last->mapping;

  const MapResponse response = service.remap(request);
  outcome = response.outcome;
  ++served;
  if (!response.ok()) {
    if (response.busy) {
      return "ERR busy retry-after=" + std::to_string(response.retry_after_ms);
    }
    return "ERR " + response.error;
  }
  // The remapped placement becomes the baseline for the next REMAP. The
  // journal records the verb alone (no timeout= — a runtime knob, not
  // state): replaying it re-runs the same deterministic re-placement.
  e.last->mapping = response.mapping;
  persist("REMAP " + tokens[1]);

  std::vector<std::size_t> nodes, pus;
  nodes.reserve(response.mapping.num_procs());
  pus.reserve(response.mapping.num_procs());
  for (const Placement& p : response.mapping.placements) {
    nodes.push_back(p.node);
    pus.push_back(p.representative_pu());
  }
  return "OK remap epoch=" + std::to_string(e.epoch) +
         " np=" + std::to_string(response.mapping.num_procs()) +
         " surviving=" + std::to_string(response.surviving) + " displaced=" +
         (response.displaced.empty() ? "-" : csv_int(response.displaced)) +
         " degraded=" + std::to_string(response.degraded ? 1 : 0) +
         " nodes=" + csv(nodes) + " pus=" + csv(pus);
}

// OPTIMIZE <alloc-id> <np> pattern=...|matrix=<nlines> [options]: search the
// placement space for np processes against a communication matrix. The
// matrix arrives either as a named sim pattern (shared vocabulary with
// lamactl) or as framed payload lines read from `more`, BATCH-style — edges
// or dense rows, with the "np" header implied by the command's <np> token.
std::string ProtocolSession::Impl::handle_optimize(
    const std::vector<std::string>& tokens, std::istream& more,
    std::size_t& served, obs::Outcome& outcome) {
  if (tokens.size() < 4) {
    throw ParseError(
        "OPTIMIZE needs '<alloc-id> <np> pattern=<name>[:<bytes>]' or "
        "'<alloc-id> <np> matrix=<nlines>'");
  }
  AllocEntry& e = entry(tokens[1]);
  const std::size_t np =
      parse_size_bounded(tokens[2], "OPTIMIZE process count", kMaxOptNp);
  if (np < 2) throw ParseError("OPTIMIZE needs np >= 2");

  OptimizeRequest request;
  std::shared_ptr<const CommMatrix> matrix;
  for (std::size_t i = 3; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      throw ParseError("OPTIMIZE option must be key=value: '" + tokens[i] +
                       "'");
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    if (key == "pattern" || key == "matrix") {
      if (matrix != nullptr) {
        throw ParseError("OPTIMIZE takes exactly one pattern= or matrix=");
      }
    }
    if (key == "pattern") {
      matrix = std::make_shared<const CommMatrix>(CommMatrix::from_pattern(
          make_named_pattern(value, static_cast<int>(np))));
      if (static_cast<std::size_t>(matrix->np()) != np) {
        throw ParseError("pattern '" + value + "' hosts " +
                         std::to_string(matrix->np()) + " processes, not " +
                         std::to_string(np));
      }
    } else if (key == "matrix") {
      const std::size_t lines = parse_size_bounded(
          value, "OPTIMIZE matrix line count", kMaxOptMatrixLines);
      // The payload is framed like BATCH: exactly `lines` continuation
      // lines, consumed here so the session stays line-synchronized even
      // when the matrix itself fails to parse.
      std::string text = "np " + std::to_string(np) + "\n";
      std::string payload_line;
      for (std::size_t j = 0; j < lines; ++j) {
        if (!std::getline(more, payload_line)) {
          throw ParseError("OPTIMIZE matrix ended early: expected " +
                           std::to_string(lines) + " lines, got " +
                           std::to_string(j));
        }
        text += payload_line;
        text += '\n';
      }
      matrix = std::make_shared<const CommMatrix>(CommMatrix::parse(text));
    } else if (key == "budget") {
      request.budget.max_candidates = parse_size_bounded(
          value, "OPTIMIZE budget", kMaxOptCandidates);
      if (request.budget.max_candidates == 0) {
        throw ParseError("OPTIMIZE budget must be >= 1");
      }
    } else if (key == "passes") {
      request.budget.refine_passes =
          parse_size_bounded(value, "OPTIMIZE passes", kMaxOptPasses);
    } else if (key == "timeout") {
      request.timeout_ms = static_cast<std::uint32_t>(
          parse_size_bounded(value, "OPTIMIZE timeout", kMaxTimeoutMs));
    } else if (key == "threads") {
      request.threads =
          parse_size_bounded(value, "OPTIMIZE threads", kMaxMapThreads);
    } else {
      throw ParseError("unknown OPTIMIZE option '" + key + "'");
    }
  }
  if (matrix == nullptr) {
    throw ParseError("OPTIMIZE needs a pattern= or matrix= source");
  }
  request.alloc = interned(e);
  request.matrix = std::move(matrix);

  const OptimizeResponse response = service.optimize(request);
  outcome = response.outcome;
  ++served;
  if (!response.ok()) {
    if (response.busy) {
      return "ERR busy retry-after=" + std::to_string(response.retry_after_ms);
    }
    return "ERR " + response.error;
  }
  const opt::OptimizeResult& result = *response.result;
  std::vector<std::size_t> nodes, pus;
  nodes.reserve(result.mapping.num_procs());
  pus.reserve(result.mapping.num_procs());
  for (const Placement& p : result.mapping.placements) {
    nodes.push_back(p.node);
    pus.push_back(p.representative_pu());
  }
  char numbers[160];
  std::snprintf(numbers, sizeof(numbers),
                " cost=%.0f static=%.0f improvement=%.4f",
                result.cost_ns, result.best_layout_cost_ns,
                result.improvement());
  return "OK optimize hit=" + std::to_string(response.cache_hit ? 1 : 0) +
         " np=" + std::to_string(result.mapping.num_procs()) + numbers +
         " source=" + result.source + " layout=" + result.best_layout +
         " candidates=" + std::to_string(result.candidates_evaluated) +
         " swaps=" + std::to_string(result.refine_swaps) +
         " nodes=" + csv(nodes) + " pus=" + csv(pus);
}

// TRACE <id>|last|errors: one retained trace from the flight recorder,
// rendered as a single line of Chrome trace-event JSON.
std::string ProtocolSession::Impl::handle_trace(
    const std::vector<std::string>& tokens) {
  obs::Tracer* tracer = service.tracer();
  if (tracer == nullptr) {
    throw ParseError(
        "tracing is disabled (serve with --flight-recorder=N to enable)");
  }
  if (tokens.size() != 2) throw ParseError("TRACE needs '<id>|last|errors'");
  std::optional<obs::Trace> trace;
  if (tokens[1] == "last") {
    trace = tracer->recorder().last();
  } else if (tokens[1] == "errors") {
    trace = tracer->recorder().last_failure();
  } else {
    trace = tracer->recorder().by_id(parse_size(tokens[1], "TRACE id"));
  }
  if (!trace.has_value()) {
    throw ParseError("no retained trace for '" + tokens[1] +
                     "' (sampled 1/" +
                     std::to_string(tracer->config().sample_every) +
                     "; failures always retained)");
  }
  return "TRACE id=" + std::to_string(trace->id) + " " +
         obs::to_chrome_json(*trace);
}

// Remember the mapping REMAP would re-place: the last successful,
// non-batched lama MAP per allocation. The baseline is state, so it is
// journaled — as the canonical MAP line (only the options that shape the
// mapping), deduped per (line, epoch): the repeated identical MAP that
// dominates warm traffic re-derives the same baseline and is not journaled,
// but the same line after an availability change is, since the mapping
// differs on the reduced allocation.
void ProtocolSession::Impl::record_last_map(const std::string& id,
                                            const MapRequest& request,
                                            const MapResponse& response) {
  if (!response.ok()) return;
  const auto [name, args] = split_rmaps_spec(request.spec);
  if (name != "lama") return;
  LastMap last;
  last.layout = ProcessLayout::parse(args.empty() ? kLamaDefaultLayout : args);
  last.opts = request.opts;
  last.mapping = response.mapping;
  AllocEntry& e = allocs[id];
  e.last = std::move(last);
  if (store == nullptr) return;
  std::string canonical =
      "MAP " + id + " " + std::to_string(request.opts.np) + " " +
      request.spec +
      " oversub=" + std::to_string(request.opts.allow_oversubscribe ? 1 : 0) +
      " pus=" + std::to_string(request.opts.pus_per_proc);
  const std::size_t cap = request.opts.resource_caps[static_cast<std::size_t>(
      canonical_depth(ResourceType::kNode))];
  if (cap > 0) canonical += " npernode=" + std::to_string(cap);
  if (canonical != e.journaled_map_line || e.epoch != e.journaled_map_epoch) {
    e.journaled_map_line = canonical;
    e.journaled_map_epoch = e.epoch;
    persist(canonical);
  }
}

ProtocolSession::ProtocolSession(MappingService& service)
    : impl_(std::make_unique<Impl>(service)) {}

ProtocolSession::~ProtocolSession() = default;

std::uint64_t ProtocolSession::state_digest() const { return impl_->digest(); }

std::vector<std::string> ProtocolSession::snapshot_lines() const {
  return impl_->dump_lines();
}

ProtocolSession::RecoveryInfo ProtocolSession::restore_from(
    dur::StateStore& store) {
  RecoveryInfo info;
  info.attempted = true;
  impl_->store = &store;
  dur::RestoreResult restored = store.restore();
  info.warnings = std::move(restored.warnings);
  info.torn_tail = restored.torn_tail;
  info.snapshot_lines = restored.snapshot_lines.size();
  info.journal_records = restored.journal_lines.size();
  info.recovered =
      !restored.snapshot_lines.empty() || !restored.journal_lines.empty();

  // Replay: snapshot lines rebuild the compacted state, journal lines re-run
  // every mutation since. A line that cannot apply is noted and skipped —
  // recovery never refuses to start.
  impl_->replaying = true;
  for (const std::vector<std::string>* lines :
       {&restored.snapshot_lines, &restored.journal_lines}) {
    for (const std::string& line : *lines) {
      std::string error;
      if (!impl_->apply_restore_line(line, error)) {
        ++info.replay_errors;
        info.warnings.push_back("cannot replay '" + line + "': " + error);
      }
    }
  }
  impl_->replaying = false;

  // Self-check: the rebuilt state must hash to the digest the last sealed
  // record carried. A mismatch is reported (HEALTH recovery_ok=0), not fatal
  // — the operator decides whether a diverged replica may serve.
  if (restored.have_digest) {
    const std::uint64_t rebuilt = impl_->digest();
    info.self_check_ok = rebuilt == restored.expected_digest;
    if (!info.self_check_ok) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "recovery self-check failed: rebuilt digest %016llx != "
                    "sealed %016llx",
                    static_cast<unsigned long long>(rebuilt),
                    static_cast<unsigned long long>(restored.expected_digest));
      info.warnings.push_back(buf);
    }
  }

  // Cache pre-warm: re-run each restored allocation's last mapping so the
  // tree/plan caches are hot before the first client request. Replayed MAP
  // lines already warmed their entries; this covers baselines restored from
  // #LAST alone.
  if (store.config().prewarm) {
    for (auto& [id, e] : impl_->allocs) {
      if (!e.last.has_value()) continue;
      MapRequest request;
      try {
        request.alloc = impl_->interned(e);
      } catch (const std::exception& err) {
        info.warnings.push_back("cannot prewarm '" + id + "': " + err.what());
        continue;
      }
      request.spec = "lama:" + e.last->layout.to_string();
      request.opts = e.last->opts;
      if (impl_->service.map(request).ok()) ++info.prewarmed;
    }
  }

  impl_->recovery = info;
  return info;
}

std::string ProtocolSession::execute(const std::string& line,
                                     std::istream& more) {
  const std::string trimmed = trim(line);
  if (trimmed.empty() || trimmed[0] == '#') return "";
  const std::vector<std::string> tokens = split_ws(trimmed);
  const std::string& cmd = tokens[0];
  // Draining: every working verb sheds with the standard busy reply (the
  // retrying client backs off and finds the replacement process); reads and
  // QUIT keep serving so an orchestrator can watch the drain finish.
  if (impl_->service.draining() && cmd != "STATS" && cmd != "METRICS" &&
      cmd != "TRACE" && cmd != "HEALTH" && cmd != "QUIT") {
    return "ERR busy retry-after=" +
           std::to_string(impl_->service.config().retry_after_ms) + "\n";
  }
  try {
    if (cmd == "NODE") {
      return impl_->handle_node(tokens, trimmed) + "\n";
    }
    if (cmd == "MAP") {
      // The protocol owns the request trace so parse and reply are covered;
      // the service's own scope (run_counted) defers to it.
      obs::TraceScope trace_scope(impl_->service.tracer());
      const std::uint64_t parse_span = obs::span_begin();
      const MapRequest request = impl_->parse_map_command(tokens);
      obs::span_end(obs::Stage::kParse, 0, parse_span);
      const MapResponse response = impl_->service.map(request);
      ++served_;
      impl_->record_last_map(tokens[1], request, response);
      const obs::SpanScope reply_span(obs::Stage::kReply);
      trace_scope.set_outcome(response.outcome);
      return format_map_response(response) + "\n";
    }
    if (cmd == "BATCH") {
      if (tokens.size() != 2) throw ParseError("BATCH needs '<count>'");
      const std::size_t count =
          parse_size_bounded(tokens[1], "BATCH count", kMaxBatch);
      // A MAP line that fails to parse becomes an ERR response in its slot
      // without aborting the batch.
      std::vector<std::optional<MapRequest>> slots;
      std::vector<std::string> parse_errors(count);
      slots.reserve(count);
      std::string batch_line;
      for (std::size_t i = 0; i < count; ++i) {
        if (!std::getline(more, batch_line)) {
          throw ParseError("BATCH ended early: expected " +
                           std::to_string(count) + " MAP lines, got " +
                           std::to_string(i));
        }
        try {
          const std::vector<std::string> map_tokens =
              split_ws(trim(batch_line));
          if (map_tokens.empty() || map_tokens[0] != "MAP") {
            throw ParseError("BATCH expects MAP lines, got: '" +
                             trim(batch_line) + "'");
          }
          slots.push_back(impl_->parse_map_command(map_tokens));
        } catch (const Error& e) {
          slots.push_back(std::nullopt);
          parse_errors[i] = e.what();
        }
      }
      std::vector<MapRequest> requests;
      for (const auto& slot : slots) {
        if (slot.has_value()) requests.push_back(*slot);
      }
      const std::vector<MapResponse> responses =
          impl_->service.map_batch(requests);
      std::string out;
      std::size_t next = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (slots[i].has_value()) {
          out += format_map_response(responses[next++]) + "\n";
          ++served_;
        } else {
          out += "ERR " + parse_errors[i] + "\n";
        }
      }
      return out;
    }
    if (cmd == "MAPBATCH") {
      obs::TraceScope trace_scope(impl_->service.tracer());
      if (tokens.size() < 2) {
        throw ParseError("MAPBATCH needs '<count> <job>...'");
      }
      const std::size_t count =
          parse_size_bounded(tokens[1], "MAPBATCH count", kMaxBatch);
      if (tokens.size() != 2 + count) {
        throw ParseError("MAPBATCH declares " + std::to_string(count) +
                         " jobs but carries " +
                         std::to_string(tokens.size() - 2));
      }
      // Per-job error isolation: a job that fails to parse answers ERR in
      // its own JOB line; the rest of the batch executes normally.
      const std::uint64_t parse_span = obs::span_begin();
      std::vector<std::optional<MapRequest>> slots;
      std::vector<std::string> parse_errors(count);
      slots.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        try {
          slots.push_back(impl_->parse_mapbatch_job(tokens[2 + i]));
        } catch (const Error& e) {
          slots.push_back(std::nullopt);
          parse_errors[i] = e.what();
        }
      }
      obs::span_end(obs::Stage::kParse, static_cast<std::uint32_t>(count),
                    parse_span);
      std::vector<MapRequest> requests;
      for (const auto& slot : slots) {
        if (slot.has_value()) requests.push_back(*slot);
      }
      const std::vector<MapResponse> responses =
          impl_->service.map_batch(requests);
      const obs::SpanScope reply_span(
          obs::Stage::kReply, static_cast<std::uint32_t>(count));
      std::string out;
      std::size_t ok_jobs = 0;
      std::size_t next = 0;
      for (std::size_t i = 0; i < count; ++i) {
        std::string job_response;
        if (slots[i].has_value()) {
          job_response = format_map_response(responses[next++]);
          ++served_;
        } else {
          job_response = "ERR " + parse_errors[i];
        }
        if (starts_with(job_response, "OK")) ++ok_jobs;
        out += "JOB " + std::to_string(i) + " " + job_response + "\n";
      }
      out += "OK mapbatch jobs=" + std::to_string(count) +
             " ok=" + std::to_string(ok_jobs) +
             " err=" + std::to_string(count - ok_jobs) + "\n";
      trace_scope.set_outcome(ok_jobs == count ? obs::Outcome::kOk
                                               : obs::Outcome::kError);
      return out;
    }
    if (cmd == "OFFLINE" || cmd == "ONLINE") {
      return impl_->handle_availability(tokens, cmd == "OFFLINE") + "\n";
    }
    if (cmd == "REMAP") {
      obs::TraceScope trace_scope(impl_->service.tracer());
      obs::Outcome outcome = obs::Outcome::kError;
      const std::string out = impl_->handle_remap(tokens, served_, outcome);
      trace_scope.set_outcome(outcome);
      return out + "\n";
    }
    if (cmd == "OPTIMIZE") {
      obs::TraceScope trace_scope(impl_->service.tracer());
      obs::Outcome outcome = obs::Outcome::kError;
      const std::string out =
          impl_->handle_optimize(tokens, more, served_, outcome);
      trace_scope.set_outcome(outcome);
      return out + "\n";
    }
    if (cmd == "STATS") {
      if (tokens.size() >= 2 && tokens[1] == "json") {
        return "STATS " + impl_->service.metrics_snapshot().to_json() + "\n";
      }
      return "STATS " + impl_->service.stats_line() + "\n";
    }
    if (cmd == "METRICS") {
      if (tokens.size() >= 2 && tokens[1] == "json") {
        return "METRICS " + impl_->service.metrics_snapshot().to_json() + "\n";
      }
      // Multi-line Prometheus text; the trailing "# EOF" line frames it for
      // line-oriented clients.
      return impl_->service.metrics_snapshot().to_prometheus();
    }
    if (cmd == "TRACE") {
      return impl_->handle_trace(tokens) + "\n";
    }
    if (cmd == "HEALTH") {
      return impl_->handle_health() + "\n";
    }
    if (cmd == "WATCH") {
      // Streaming subscriptions live in the event-loop server, which
      // intercepts WATCH before this session sees it: a stdin session has
      // no way to push frames between reads.
      throw ParseError("WATCH requires a socket connection (serve --listen)");
    }
    if (cmd == "QUIT") {
      done_ = true;
      return "OK bye\n";
    }
    throw ParseError("unknown command '" + cmd + "'");
  } catch (const Error& e) {
    return std::string("ERR ") + e.what() + "\n";
  } catch (const std::exception& e) {
    // The session must survive anything a line of input can provoke.
    return std::string("ERR unexpected error: ") + e.what() + "\n";
  }
}

std::string format_map_response(const MapResponse& response) {
  if (response.busy) {
    return "ERR busy retry-after=" + std::to_string(response.retry_after_ms);
  }
  if (!response.ok()) return "ERR " + response.error;
  std::vector<std::size_t> nodes, pus;
  nodes.reserve(response.mapping.num_procs());
  pus.reserve(response.mapping.num_procs());
  for (const Placement& p : response.mapping.placements) {
    nodes.push_back(p.node);
    pus.push_back(p.representative_pu());
  }
  std::string out = "OK hit=" + std::to_string(response.cache_hit ? 1 : 0) +
                    " coalesced=" + std::to_string(response.coalesced ? 1 : 0) +
                    " np=" + std::to_string(response.mapping.num_procs()) +
                    " sweeps=" + std::to_string(response.mapping.sweeps) +
                    " nodes=" + csv(nodes) + " pus=" + csv(pus);
  if (response.degraded) out += " degraded=1";
  if (response.binding.has_value()) {
    std::vector<std::size_t> widths;
    widths.reserve(response.binding->bindings.size());
    for (const ProcessBinding& b : response.binding->bindings) {
      widths.push_back(b.width);
    }
    out += " widths=" + csv(widths);
  }
  return out;
}

std::string format_query(const Allocation& alloc, const std::string& alloc_id,
                         std::size_t np, const std::string& spec,
                         const std::string& options) {
  std::string out;
  for (std::size_t i = 0; i < alloc.num_nodes(); ++i) {
    const AllocatedNode& node = alloc.node(i);
    out += "NODE " + alloc_id + " " + std::to_string(node.slots) + " " +
           serialize_topology(node.topo) + "\n";
  }
  out += "MAP " + alloc_id + " " + std::to_string(np) + " " + spec;
  if (!options.empty()) out += " " + options;
  out += "\n";
  return out;
}

std::size_t serve(std::istream& in, std::ostream& out,
                  MappingService& service, bool stats_at_eof) {
  ProtocolSession session(service);
  return serve(in, out, session, service, stats_at_eof, nullptr);
}

std::size_t serve(std::istream& in, std::ostream& out,
                  ProtocolSession& session, MappingService& service,
                  bool stats_at_eof, const std::function<bool()>& stop) {
  std::string line;
  while (!(stop && stop()) && std::getline(in, line)) {
    const std::string response = session.execute(line, in);
    if (!response.empty()) {
      out << response;
      out.flush();
    }
    if (session.done()) break;
  }
  if (stats_at_eof) {
    out << "STATS " << service.stats_line() << "\n";
    out.flush();
  }
  return session.served();
}

}  // namespace lama::svc
