// The compiled-plan cache: MapPlans (lama/map_plan.hpp) cached beside the
// tree cache under the same (allocation fingerprint, canonical layout) keys,
// so repeated MAP/MAPBATCH queries skip not just the tree build but the
// whole coordinate-resolution walk and run the zero-allocation executor
// against precompiled slots.
//
// A cached plan co-owns the CachedTree it was compiled from: plans borrow
// the tree's PU bitmaps, so the shared_ptr keeps those alive even after the
// tree itself is evicted from (or replaced in) the tree cache. Because the
// tree a plan embeds and the tree a later request looks up are both built
// for the same key, the placements are identical either way — the embedded
// tree's allocation is what the mapping (and any binding step) must run
// against.
//
// Integrity and invalidation mirror the tree cache: the plan memoizes the
// seal its tree must carry, verified on every hit without allocating (the
// tree cache's seal_for() concatenates strings; the memoized compare does
// not), and invalidate_alloc() drops every plan under a fingerprint when an
// epoch bump retires the allocation — stale-epoch plans leave with their
// trees. Unlike the tree cache there is no in-flight coalescing: a compile
// costs about one mapping walk, and concurrent misses for the same key have
// already coalesced on the tree build; letting the rare duplicate compile
// run is cheaper than another promise table on the hot path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "lama/map_plan.hpp"
#include "support/lru.hpp"
#include "svc/counters.hpp"
#include "svc/tree_cache.hpp"

namespace lama::svc {

// An immutable (cached tree, compiled plan) pair. Always compiled under the
// default iteration policy — the cache serves default-policy requests only
// (MapPlan::default_policy is the executor-side guard).
class CachedPlan {
 public:
  CachedPlan(std::shared_ptr<const CachedTree> tree, const TreeKey& key);

  CachedPlan(const CachedPlan&) = delete;
  CachedPlan& operator=(const CachedPlan&) = delete;

  [[nodiscard]] const std::shared_ptr<const CachedTree>& tree() const {
    return tree_;
  }
  [[nodiscard]] const MapPlan& plan() const { return plan_; }

  // True when the embedded tree still carries the seal this plan's key
  // demands. Allocation-free: compares against the seal memoized at compile
  // time, so corruption of the shared tree is caught on the plan hit path
  // too.
  [[nodiscard]] bool verify() const {
    return tree_->seal() == expected_seal_;
  }

 private:
  std::shared_ptr<const CachedTree> tree_;  // must outlive plan_ (borrowed bitmaps)
  MapPlan plan_;
  std::uint64_t expected_seal_ = 0;
};

class PlanCache {
 public:
  // `capacity_per_shard` of 0 disables caching: every lookup misses and
  // compiles nothing. `max_space` > 0 refuses to compile plans whose
  // iteration space exceeds it (the request falls back to the reference
  // walk); 0 means unbounded.
  // `arena`/`numa` (optional) NUMA-place the shard control blocks exactly
  // like ShardedTreeCache; null degrades to plain operator new.
  PlanCache(std::size_t num_shards, std::size_t capacity_per_shard,
            std::uint64_t max_space, Counters& counters,
            support::NumaAllocator* arena = nullptr,
            const support::NumaTopology* numa = nullptr);

  struct Lookup {
    // Null when the cache is disabled, the plan's iteration space exceeds
    // max_space (neither counts as a miss), or verification of a cached
    // entry failed and recompilation was not possible.
    std::shared_ptr<const CachedPlan> plan;
    bool hit = false;  // served from the LRU (and verified, when asked)
  };

  // Returns the plan for `key`, compiling it from `tree` on a miss (counted
  // in plan_misses, timed into plan_compile_ns under a plan_compile span).
  // A hit is verified against the memoized seal when `verify` is set;
  // failures drop the entry and recompile from `tree` — which the caller
  // has already integrity-checked. Compile exceptions propagate.
  Lookup get_or_compile(const TreeKey& key,
                        const std::shared_ptr<const CachedTree>& tree,
                        bool verify);

  // Drops one entry (e.g. after the paired tree failed its integrity
  // check). Returns true when it was present.
  bool erase(const TreeKey& key);

  // Drops every plan compiled over this fingerprint — invoked by the same
  // epoch-bump hook that invalidates the tree cache, so stale-epoch plans
  // never outlive their trees. Returns the number removed. Does NOT bump
  // the invalidations counter: the tree cache already accounts the epoch
  // bump, and the resilience invariants count invalidation events once.
  std::size_t invalidate_alloc(std::uint64_t alloc_fp);

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  // Cached plans across all shards (racy under concurrency; for tests).
  [[nodiscard]] std::size_t size() const;

 private:
  using PlanPtr = std::shared_ptr<const CachedPlan>;

  struct Shard {
    explicit Shard(std::size_t capacity) : lru(capacity) {}
    std::mutex mu;
    LruMap<TreeKey, PlanPtr, TreeKeyHash> lru;
  };

  Shard& shard_for(const TreeKey& key);
  PlanPtr compile(const TreeKey& key,
                  const std::shared_ptr<const CachedTree>& tree);

  std::vector<support::NumaUniquePtr<Shard>> shards_;
  std::uint64_t max_space_;
  std::size_t capacity_per_shard_;
  Counters& counters_;
};

}  // namespace lama::svc
