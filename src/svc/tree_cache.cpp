#include "svc/tree_cache.hpp"

#include <chrono>

#include "cluster/alloc_serialize.hpp"
#include "obs/tracer.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace lama::svc {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

std::size_t TreeKeyHash::operator()(const TreeKey& key) const {
  return static_cast<std::size_t>(
      hash_combine(key.alloc_fp, fnv1a64(key.layout)));
}

CachedTree::CachedTree(const Allocation& alloc, ProcessLayout layout)
    : alloc_((alloc.validate(), alloc)),  // never cache an unusable tree
      layout_(std::move(layout)),
      tree_(alloc_, layout_),
      seal_(seal_for(
          TreeKey{allocation_fingerprint(alloc_), layout_.to_string()})) {}

std::uint64_t CachedTree::seal_for(const TreeKey& key) {
  return hash_combine(key.alloc_fp, fnv1a64("tree-seal:" + key.layout));
}

bool CachedTree::verify(const TreeKey& key) const {
  return seal_.load(std::memory_order_relaxed) == seal_for(key);
}

void CachedTree::corrupt_for_testing() const {
  seal_.fetch_xor(0xDEADBEEFCAFEF00DULL, std::memory_order_relaxed);
}

ShardedTreeCache::ShardedTreeCache(std::size_t num_shards,
                                   std::size_t capacity_per_shard,
                                   Counters& counters,
                                   support::NumaAllocator* arena,
                                   const support::NumaTopology* numa)
    : counters_(counters) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  support::NumaAllocator& a =
      arena != nullptr ? *arena : support::plain_arena();
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(support::numa_new<Shard>(a, support::shard_node(numa, i),
                                               capacity_per_shard));
  }
}

ShardedTreeCache::Shard& ShardedTreeCache::shard_for(const TreeKey& key) {
  return *shards_[TreeKeyHash{}(key) % shards_.size()];
}

ShardedTreeCache::Lookup ShardedTreeCache::get_or_build(
    const TreeKey& key, const Allocation& alloc, const ProcessLayout& layout) {
  const auto lookup_start = std::chrono::steady_clock::now();
  Shard& shard = shard_for(key);
  std::unique_lock<std::mutex> lock(shard.mu);

  if (TreePtr* cached = shard.lru.get(key)) {
    TreePtr tree = *cached;
    lock.unlock();
    counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    counters_.lookup_ns.record_ns(elapsed_ns(lookup_start));
    return {std::move(tree), /*hit=*/true, /*coalesced=*/false};
  }

  if (const auto it = shard.inflight.find(key); it != shard.inflight.end()) {
    std::shared_future<TreePtr> pending = it->second;
    lock.unlock();
    counters_.coalesced.fetch_add(1, std::memory_order_relaxed);
    counters_.lookup_ns.record_ns(elapsed_ns(lookup_start));
    const obs::SpanScope wait_span(obs::Stage::kCoalesceWait);
    return {pending.get(), /*hit=*/false, /*coalesced=*/true};  // may rethrow
  }

  // Miss: publish the build before starting it so duplicates coalesce.
  std::promise<TreePtr> promise;
  shard.inflight.emplace(key, promise.get_future().share());
  lock.unlock();
  counters_.cache_misses.fetch_add(1, std::memory_order_relaxed);
  counters_.lookup_ns.record_ns(elapsed_ns(lookup_start));

  TreePtr built;
  const auto build_start = std::chrono::steady_clock::now();
  try {
    built = std::make_shared<const CachedTree>(alloc, layout);
  } catch (...) {
    lock.lock();
    shard.inflight.erase(key);
    lock.unlock();
    promise.set_exception(std::current_exception());
    throw;
  }
  counters_.build_ns.record_ns(elapsed_ns(build_start));

  lock.lock();
  const std::size_t evicted_before = shard.lru.evictions();
  shard.lru.put(key, built);
  const std::size_t newly_evicted = shard.lru.evictions() - evicted_before;
  shard.inflight.erase(key);
  lock.unlock();
  if (newly_evicted > 0) {
    counters_.evictions.fetch_add(newly_evicted, std::memory_order_relaxed);
  }
  promise.set_value(built);
  return {std::move(built), /*hit=*/false, /*coalesced=*/false};
}

bool ShardedTreeCache::erase(const TreeKey& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.lru.erase(key);
}

std::size_t ShardedTreeCache::invalidate_alloc(std::uint64_t alloc_fp) {
  std::size_t removed = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    removed += shard->lru.erase_if(
        [alloc_fp](const TreeKey& key, const TreePtr&) {
          return key.alloc_fp == alloc_fp;
        });
  }
  if (removed > 0) {
    counters_.invalidations.fetch_add(removed, std::memory_order_relaxed);
  }
  return removed;
}

std::size_t ShardedTreeCache::corrupt_for_testing(std::uint64_t alloc_fp) {
  std::size_t corrupted = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.for_each([&](const TreeKey& key, const TreePtr& tree) {
      if (alloc_fp == 0 || key.alloc_fp == alloc_fp) {
        tree->corrupt_for_testing();
        ++corrupted;
      }
    });
  }
  return corrupted;
}

std::size_t ShardedTreeCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace lama::svc
