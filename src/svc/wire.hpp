// The service's binary wire protocol: length-framed request/response frames
// carried over the epoll event-loop server (svc/event_loop.hpp) beside the
// text protocol, auto-detected per connection by the first byte — a binary
// connection's very first octet is kWireMagic (0xC4, outside ASCII), which no
// text command can start with, so one peek decides the connection's framing
// for its whole lifetime.
//
// Frame layout (little-endian, 10-byte header):
//
//   [u8 magic=0xC4][u8 verb][u32 payload-len][u32 crc32c][payload bytes]
//
// The CRC-32C (support/crc32.hpp — the same polynomial sealing the WAL)
// covers the verb byte and the payload together, so a flipped verb cannot
// slip past the seal. payload-len is bounded by kMaxFramePayload (1 MiB,
// mirroring the journal's record bound): a corrupt length byte must not size
// an allocation.
//
// Request payload: the exact text-protocol command line (no trailing '\n'),
// optionally followed by '\n'-separated continuation lines (BATCH MAP lines,
// OPTIMIZE matrix rows). The verb byte names the command a second time;
// dispatch cross-checks it against the line's leading keyword and answers
// ERR on a mismatch. Because the payload IS the text command, the binary
// protocol parses through the existing protocol.cpp handlers unchanged — a
// zero-copy string_view stream (ViewStream) feeds the continuation lines —
// and every response is byte-for-byte the text protocol's response, carried
// as the payload of one kOk/kErr frame. The differential conformance suite
// (tests/svc/wire_conformance_test.cpp) pins that identity for every verb.
//
// Error handling contract (event_loop.cpp enforces it):
//   * unknown verb byte on a well-sealed frame -> ERR frame, connection
//     survives (the framing is still synchronized);
//   * bad magic, oversized length, or CRC mismatch -> ERR frame, then the
//     connection closes (framing is unrecoverable);
//   * a truncated frame at disconnect is dropped silently (torn tail).
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <optional>
#include <streambuf>
#include <string>
#include <string_view>

namespace lama::svc {

// First octet of every binary frame — and therefore of every binary
// connection. Deliberately outside ASCII so no text-protocol line (commands,
// comments, blank lines) can begin with it.
inline constexpr unsigned char kWireMagic = 0xC4;

// Bytes of framing before the payload: magic(1) + verb(1) + len(4) + crc(4).
inline constexpr std::size_t kFrameHeaderBytes = 10;

// Largest payload one frame may carry, request or response — the same 1 MiB
// bound the WAL places on journal records. Oversized METRICS/TRACE responses
// cannot occur at current bounds (the exporters are bounded); if one ever
// did, the server answers an ERR frame instead.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

// Frame verbs. Request verbs mirror the text commands one-to-one; responses
// use kOk/kErr with the text response as payload. Values are wire ABI:
// append, never renumber.
enum class WireVerb : std::uint8_t {
  kNode = 1,
  kMap = 2,
  kBatch = 3,
  kMapBatch = 4,
  kOffline = 5,
  kOnline = 6,
  kRemap = 7,
  kOptimize = 8,
  kStats = 9,
  kMetrics = 10,
  kTrace = 11,
  kHealth = 12,
  kQuit = 13,
  kWatch = 14,
  // Responses.
  kOk = 0x20,
  kErr = 0x21,
};

// The text keyword a request verb stands for ("MAP", "MAPBATCH", ...);
// "OK"/"ERR" for the response verbs, "?" for anything else.
const char* wire_verb_keyword(WireVerb verb);

// The request verb for a text command keyword, or nullopt for unknown
// keywords (clients use this to stamp outgoing frames).
std::optional<WireVerb> wire_verb_for_keyword(std::string_view keyword);

// True for a verb value a request frame may carry.
bool wire_request_verb(std::uint8_t verb);

// One encoded frame, ready for the socket. Throws ParseError when the
// payload exceeds kMaxFramePayload.
std::string encode_frame(WireVerb verb, std::string_view payload);

// A decoded frame. `payload` views into the decode buffer — valid only
// while that buffer lives and is not mutated (zero-copy by design).
struct WireFrame {
  WireVerb verb = WireVerb::kErr;
  std::string_view payload;
};

enum class FrameStatus : std::uint8_t {
  kFrame = 0,   // one complete, sealed frame decoded
  kNeedMore,    // the buffer holds a prefix of a frame; read more bytes
  kBad,         // unrecoverable framing damage; close the connection
};

// Decodes one frame from the front of `buffer`. On kFrame, `consumed` is
// the frame's full size and `out.payload` views into `buffer`. On kBad,
// `error` holds a bounded human-readable reason (bad magic, oversized
// length, CRC mismatch). An unknown verb on a sealed frame still returns
// kFrame — the caller decides (the server answers ERR and keeps the
// connection). Never throws, never reads past the buffer.
FrameStatus decode_frame(std::string_view buffer, WireFrame& out,
                         std::size_t& consumed, std::string& error);

// An istream over a string_view — no copy, no ownership. Feeds a frame's
// continuation lines (everything past the first '\n') to
// ProtocolSession::execute exactly as the stdin server's getline loop would.
class ViewStreamBuf : public std::streambuf {
 public:
  explicit ViewStreamBuf(std::string_view view) {
    char* base = const_cast<char*>(view.data());
    setg(base, base, base + view.size());
  }
};

class ViewStream : private ViewStreamBuf, public std::istream {
 public:
  explicit ViewStream(std::string_view view)
      : ViewStreamBuf(view), std::istream(this) {}
};

// Splits a request payload into the command line and its continuation text
// (empty when the payload has no '\n').
struct WireCommand {
  std::string_view line;
  std::string_view continuation;
};
WireCommand split_wire_payload(std::string_view payload);

// Classifies a text response for the response frame verb: kErr iff the
// response begins with "ERR" (MAPBATCH bodies that merely contain JOB-level
// ERR lines classify by their trailer path, i.e. kOk).
WireVerb classify_response(std::string_view response);

}  // namespace lama::svc
