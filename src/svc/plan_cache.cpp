#include "svc/plan_cache.hpp"

#include <chrono>
#include <utility>

#include "lama/iteration.hpp"
#include "obs/tracer.hpp"
#include "support/error.hpp"

namespace lama::svc {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

CachedPlan::CachedPlan(std::shared_ptr<const CachedTree> tree,
                       const TreeKey& key)
    : tree_(std::move(tree)),
      plan_(compile_map_plan(tree_->tree(), tree_->layout(),
                             IterationPolicy{})),
      expected_seal_(CachedTree::seal_for(key)) {}

PlanCache::PlanCache(std::size_t num_shards, std::size_t capacity_per_shard,
                     std::uint64_t max_space, Counters& counters,
                     support::NumaAllocator* arena,
                     const support::NumaTopology* numa)
    : max_space_(max_space),
      capacity_per_shard_(capacity_per_shard),
      counters_(counters) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  support::NumaAllocator& a =
      arena != nullptr ? *arena : support::plain_arena();
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(support::numa_new<Shard>(a, support::shard_node(numa, i),
                                               capacity_per_shard));
  }
}

PlanCache::Shard& PlanCache::shard_for(const TreeKey& key) {
  return *shards_[TreeKeyHash{}(key) % shards_.size()];
}

PlanCache::PlanPtr PlanCache::compile(
    const TreeKey& key, const std::shared_ptr<const CachedTree>& tree) {
  // Refusal is not a miss: a plan that will never be compiled should not
  // depress the hit ratio — the request simply keeps the reference walk.
  if (max_space_ != 0 &&
      map_plan_space(tree->tree(), tree->layout(), IterationPolicy{}) >
          max_space_) {
    return nullptr;
  }
  counters_.plan_misses.fetch_add(1, std::memory_order_relaxed);
  const obs::SpanScope compile_span(obs::Stage::kPlanCompile);
  const auto start = std::chrono::steady_clock::now();
  PlanPtr built = std::make_shared<const CachedPlan>(tree, key);
  counters_.plan_compile_ns.record_ns(elapsed_ns(start));
  return built;
}

PlanCache::Lookup PlanCache::get_or_compile(
    const TreeKey& key, const std::shared_ptr<const CachedTree>& tree,
    bool verify) {
  if (capacity_per_shard_ == 0) return {nullptr, /*hit=*/false};
  Shard& shard = shard_for(key);
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    if (PlanPtr* entry = shard.lru.get(key)) {
      PlanPtr plan = *entry;
      if (!verify || plan->verify()) {
        lock.unlock();
        counters_.plan_hits.fetch_add(1, std::memory_order_relaxed);
        return {std::move(plan), /*hit=*/true};
      }
      // The embedded tree lost its seal: never execute a plan whose source
      // tree cannot be trusted. Drop it and recompile below from the
      // caller's tree, which passed its own verification.
      shard.lru.erase(key);
    }
  }

  // Compile outside the shard lock — it costs a full walk, and duplicate
  // concurrent misses already coalesced on the tree build. Last writer wins.
  PlanPtr built = compile(key, tree);
  if (built == nullptr) return {nullptr, /*hit=*/false};
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.put(key, built);
  }
  return {std::move(built), /*hit=*/false};
}

bool PlanCache::erase(const TreeKey& key) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.lru.erase(key);
}

std::size_t PlanCache::invalidate_alloc(std::uint64_t alloc_fp) {
  std::size_t removed = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    removed += shard->lru.erase_if(
        [alloc_fp](const TreeKey& key, const PlanPtr&) {
          return key.alloc_fp == alloc_fp;
        });
  }
  return removed;
}

std::size_t PlanCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace lama::svc
