#include "svc/worker_pool.hpp"

namespace lama::svc {

WorkerPool::WorkerPool(std::size_t num_threads, std::size_t max_queue)
    : max_queue_(max_queue) {
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool WorkerPool::try_submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_queue_ > 0 && queue_.size() >= max_queue_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

std::size_t WorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain remaining work on shutdown so pending futures always resolve.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace lama::svc
