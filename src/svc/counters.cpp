#include "svc/counters.hpp"

#include <cstdio>

namespace lama::svc {

namespace {

std::uint64_t load(const std::atomic<std::uint64_t>& a) {
  return a.load(std::memory_order_relaxed);
}

}  // namespace

std::string Counters::stats_line() const {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu completed=%llu errors=%llu hits=%llu misses=%llu "
      "coalesced=%llu evictions=%llu uncached=%llu cached=%llu shed=%llu "
      "deadlined=%llu integrity_failures=%llu degraded=%llu "
      "invalidations=%llu remaps=%llu batched=%llu batch_jobs=%llu "
      "parallel_maps=%llu map_p50_us=%llu "
      "map_p99_us=%llu parallel_map_p99_us=%llu build_p99_us=%llu "
      "total_p99_us=%llu lookup_p50_us=%llu lookup_p99_us=%llu "
      "plan_hits=%llu plan_misses=%llu plan_compile_p99_us=%llu "
      "compiled_map_p50_us=%llu compiled_map_p99_us=%llu "
      "opt_requests=%llu opt_hits=%llu opt_misses=%llu opt_candidates=%llu "
      "opt_swaps=%llu opt_p99_us=%llu",
      static_cast<unsigned long long>(load(requests)),
      static_cast<unsigned long long>(load(completed)),
      static_cast<unsigned long long>(load(errors)),
      static_cast<unsigned long long>(load(cache_hits)),
      static_cast<unsigned long long>(load(cache_misses)),
      static_cast<unsigned long long>(load(coalesced)),
      static_cast<unsigned long long>(load(evictions)),
      static_cast<unsigned long long>(load(uncached)),
      static_cast<unsigned long long>(load(cached)),
      static_cast<unsigned long long>(load(shed)),
      static_cast<unsigned long long>(load(deadlined)),
      static_cast<unsigned long long>(load(integrity_failures)),
      static_cast<unsigned long long>(load(degraded)),
      static_cast<unsigned long long>(load(invalidations)),
      static_cast<unsigned long long>(load(remaps)),
      static_cast<unsigned long long>(load(batched)),
      static_cast<unsigned long long>(load(batch_jobs)),
      static_cast<unsigned long long>(load(parallel_maps)),
      static_cast<unsigned long long>(map_ns.percentile_ns(50) / 1000),
      static_cast<unsigned long long>(map_ns.percentile_ns(99) / 1000),
      static_cast<unsigned long long>(parallel_map_ns.percentile_ns(99) /
                                      1000),
      static_cast<unsigned long long>(build_ns.percentile_ns(99) / 1000),
      static_cast<unsigned long long>(total_ns.percentile_ns(99) / 1000),
      static_cast<unsigned long long>(lookup_ns.percentile_ns(50) / 1000),
      static_cast<unsigned long long>(lookup_ns.percentile_ns(99) / 1000),
      static_cast<unsigned long long>(load(plan_hits)),
      static_cast<unsigned long long>(load(plan_misses)),
      static_cast<unsigned long long>(plan_compile_ns.percentile_ns(99) /
                                      1000),
      static_cast<unsigned long long>(compiled_map_ns.percentile_ns(50) /
                                      1000),
      static_cast<unsigned long long>(compiled_map_ns.percentile_ns(99) /
                                      1000),
      static_cast<unsigned long long>(load(opt_requests)),
      static_cast<unsigned long long>(load(opt_hits)),
      static_cast<unsigned long long>(load(opt_misses)),
      static_cast<unsigned long long>(load(opt_candidates)),
      static_cast<unsigned long long>(load(opt_swaps)),
      static_cast<unsigned long long>(opt_ns.percentile_ns(99) / 1000));
  return buf;
}

std::string Counters::render() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "requests  %llu (completed %llu, errors %llu)\n",
                static_cast<unsigned long long>(load(requests)),
                static_cast<unsigned long long>(load(completed)),
                static_cast<unsigned long long>(load(errors)));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "tree cache  cached %llu (hits %llu, misses %llu, coalesced "
                "%llu), evictions %llu, uncached %llu\n",
                static_cast<unsigned long long>(load(cached)),
                static_cast<unsigned long long>(load(cache_hits)),
                static_cast<unsigned long long>(load(cache_misses)),
                static_cast<unsigned long long>(load(coalesced)),
                static_cast<unsigned long long>(load(evictions)),
                static_cast<unsigned long long>(load(uncached)));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "resilience  shed %llu, deadlined %llu, integrity %llu, "
                "degraded %llu, invalidations %llu, remaps %llu\n",
                static_cast<unsigned long long>(load(shed)),
                static_cast<unsigned long long>(load(deadlined)),
                static_cast<unsigned long long>(load(integrity_failures)),
                static_cast<unsigned long long>(load(degraded)),
                static_cast<unsigned long long>(load(invalidations)),
                static_cast<unsigned long long>(load(remaps)));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "batch  batched %llu, jobs %llu, parallel maps %llu\n",
                static_cast<unsigned long long>(load(batched)),
                static_cast<unsigned long long>(load(batch_jobs)),
                static_cast<unsigned long long>(load(parallel_maps)));
  out += buf;
  {
    const std::uint64_t hits = load(plan_hits);
    const std::uint64_t misses = load(plan_misses);
    const std::uint64_t consulted = hits + misses;
    std::snprintf(buf, sizeof(buf),
                  "plan cache  hits %llu, misses %llu, hit ratio %.1f%%\n",
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(misses),
                  consulted == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(hits) /
                            static_cast<double>(consulted));
    out += buf;
  }
  {
    const std::uint64_t hits = load(opt_hits);
    const std::uint64_t misses = load(opt_misses);
    const std::uint64_t total = hits + misses;
    std::snprintf(buf, sizeof(buf),
                  "optimize  requests %llu (hits %llu, misses %llu, hit ratio "
                  "%.1f%%), candidates %llu, swaps %llu\n",
                  static_cast<unsigned long long>(load(opt_requests)),
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(misses),
                  total == 0 ? 0.0
                             : 100.0 * static_cast<double>(hits) /
                                   static_cast<double>(total),
                  static_cast<unsigned long long>(load(opt_candidates)),
                  static_cast<unsigned long long>(load(opt_swaps)));
    out += buf;
  }
  out += "lookup  " + lookup_ns.summary() + "\n";
  out += "build   " + build_ns.summary() + "\n";
  out += "map     " + map_ns.summary() + "\n";
  out += "pmap    " + parallel_map_ns.summary() + "\n";
  out += "compile " + plan_compile_ns.summary() + "\n";
  out += "cmap    " + compiled_map_ns.summary() + "\n";
  out += "opt     " + opt_ns.summary() + "\n";
  out += "total   " + total_ns.summary() + "\n";
  return out;
}

std::uint64_t NetCounters::active() const {
  const std::uint64_t opened = load(accepted);
  const std::uint64_t done = load(closed);
  return opened >= done ? opened - done : 0;
}

void NetStats::add(const NetCounters& shard) {
  accepted += load(shard.accepted);
  closed += load(shard.closed);
  rejected += load(shard.rejected);
  text_requests += load(shard.text_requests);
  binary_requests += load(shard.binary_requests);
  responses += load(shard.responses);
  shed_backpressure += load(shard.shed_backpressure);
  frame_errors += load(shard.frame_errors);
  midstream_disconnects += load(shard.midstream_disconnects);
  bytes_in += load(shard.bytes_in);
  bytes_out += load(shard.bytes_out);
  read_ns.merge(shard.read_ns.snapshot());
  dispatch_ns.merge(shard.dispatch_ns.snapshot());
  write_ns.merge(shard.write_ns.snapshot());
}

std::string NetStats::stats_line() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "net_accepted=%llu net_closed=%llu net_active=%llu net_rejected=%llu "
      "net_text_requests=%llu net_binary_requests=%llu net_responses=%llu "
      "net_shed=%llu net_frame_errors=%llu net_disconnects=%llu "
      "net_bytes_in=%llu net_bytes_out=%llu net_dispatch_p99_us=%llu",
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(closed),
      static_cast<unsigned long long>(active()),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(text_requests),
      static_cast<unsigned long long>(binary_requests),
      static_cast<unsigned long long>(responses),
      static_cast<unsigned long long>(shed_backpressure),
      static_cast<unsigned long long>(frame_errors),
      static_cast<unsigned long long>(midstream_disconnects),
      static_cast<unsigned long long>(bytes_in),
      static_cast<unsigned long long>(bytes_out),
      static_cast<unsigned long long>(dispatch_ns.percentile_ns(99) / 1000));
  return buf;
}

std::string NetStats::render() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "net  connections %llu accepted (%llu closed, %llu active, "
                "%llu rejected), disconnects %llu\n",
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(closed),
                static_cast<unsigned long long>(active()),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(midstream_disconnects));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "net  requests %llu text + %llu binary -> %llu responses, "
                "shed %llu, frame errors %llu\n",
                static_cast<unsigned long long>(text_requests),
                static_cast<unsigned long long>(binary_requests),
                static_cast<unsigned long long>(responses),
                static_cast<unsigned long long>(shed_backpressure),
                static_cast<unsigned long long>(frame_errors));
  out += buf;
  std::snprintf(buf, sizeof(buf), "net  bytes in %llu, out %llu\n",
                static_cast<unsigned long long>(bytes_in),
                static_cast<unsigned long long>(bytes_out));
  out += buf;
  out += "net read     " + read_ns.summary() + "\n";
  out += "net dispatch " + dispatch_ns.summary() + "\n";
  out += "net write    " + write_ns.summary() + "\n";
  return out;
}

std::string NetCounters::stats_line() const {
  NetStats stats;
  stats.add(*this);
  return stats.stats_line();
}

std::string NetCounters::render() const {
  NetStats stats;
  stats.add(*this);
  return stats.render();
}

}  // namespace lama::svc
