#include "svc/wire.hpp"

#include <cstring>

#include "support/crc32.hpp"
#include "support/error.hpp"

namespace lama::svc {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xffu));
  out.push_back(static_cast<char>((v >> 8) & 0xffu));
  out.push_back(static_cast<char>((v >> 16) & 0xffu));
  out.push_back(static_cast<char>((v >> 24) & 0xffu));
}

std::uint32_t get_u32(const char* p) {
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

// The seal covers the verb byte and the payload together.
std::uint32_t frame_crc(std::uint8_t verb, std::string_view payload) {
  const char verb_byte = static_cast<char>(verb);
  return crc32c(payload, crc32c(std::string_view(&verb_byte, 1)));
}

}  // namespace

const char* wire_verb_keyword(WireVerb verb) {
  switch (verb) {
    case WireVerb::kNode: return "NODE";
    case WireVerb::kMap: return "MAP";
    case WireVerb::kBatch: return "BATCH";
    case WireVerb::kMapBatch: return "MAPBATCH";
    case WireVerb::kOffline: return "OFFLINE";
    case WireVerb::kOnline: return "ONLINE";
    case WireVerb::kRemap: return "REMAP";
    case WireVerb::kOptimize: return "OPTIMIZE";
    case WireVerb::kStats: return "STATS";
    case WireVerb::kMetrics: return "METRICS";
    case WireVerb::kTrace: return "TRACE";
    case WireVerb::kHealth: return "HEALTH";
    case WireVerb::kQuit: return "QUIT";
    case WireVerb::kWatch: return "WATCH";
    case WireVerb::kOk: return "OK";
    case WireVerb::kErr: return "ERR";
  }
  return "?";
}

std::optional<WireVerb> wire_verb_for_keyword(std::string_view keyword) {
  for (const WireVerb verb :
       {WireVerb::kNode, WireVerb::kMap, WireVerb::kBatch, WireVerb::kMapBatch,
        WireVerb::kOffline, WireVerb::kOnline, WireVerb::kRemap,
        WireVerb::kOptimize, WireVerb::kStats, WireVerb::kMetrics,
        WireVerb::kTrace, WireVerb::kHealth, WireVerb::kQuit,
        WireVerb::kWatch}) {
    if (keyword == wire_verb_keyword(verb)) return verb;
  }
  return std::nullopt;
}

bool wire_request_verb(std::uint8_t verb) {
  return verb >= static_cast<std::uint8_t>(WireVerb::kNode) &&
         verb <= static_cast<std::uint8_t>(WireVerb::kWatch);
}

std::string encode_frame(WireVerb verb, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw ParseError("wire frame payload of " +
                     std::to_string(payload.size()) + " bytes exceeds the " +
                     std::to_string(kMaxFramePayload) + " byte bound");
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kWireMagic));
  out.push_back(static_cast<char>(verb));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, frame_crc(static_cast<std::uint8_t>(verb), payload));
  out.append(payload);
  return out;
}

FrameStatus decode_frame(std::string_view buffer, WireFrame& out,
                         std::size_t& consumed, std::string& error) {
  consumed = 0;
  if (buffer.empty()) return FrameStatus::kNeedMore;
  if (static_cast<unsigned char>(buffer[0]) != kWireMagic) {
    error = "bad frame magic";
    return FrameStatus::kBad;
  }
  if (buffer.size() < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  const std::uint8_t verb = static_cast<unsigned char>(buffer[1]);
  const std::uint32_t len = get_u32(buffer.data() + 2);
  if (len > kMaxFramePayload) {
    error = "oversized frame: " + std::to_string(len) + " bytes exceeds the " +
            std::to_string(kMaxFramePayload) + " byte bound";
    return FrameStatus::kBad;
  }
  if (buffer.size() < kFrameHeaderBytes + len) return FrameStatus::kNeedMore;
  const std::uint32_t sealed = get_u32(buffer.data() + 6);
  const std::string_view payload = buffer.substr(kFrameHeaderBytes, len);
  if (frame_crc(verb, payload) != sealed) {
    error = "frame CRC mismatch";
    return FrameStatus::kBad;
  }
  out.verb = static_cast<WireVerb>(verb);
  out.payload = payload;
  consumed = kFrameHeaderBytes + len;
  return FrameStatus::kFrame;
}

WireCommand split_wire_payload(std::string_view payload) {
  const auto nl = payload.find('\n');
  if (nl == std::string_view::npos) return {payload, {}};
  return {payload.substr(0, nl), payload.substr(nl + 1)};
}

WireVerb classify_response(std::string_view response) {
  return response.substr(0, 3) == "ERR" ? WireVerb::kErr : WireVerb::kOk;
}

}  // namespace lama::svc
