// The sharded, thread-safe LRU cache of maximal/pruned trees. The expensive
// per-query work of the LAMA — pruning every node's topology against the
// layout and assembling the maximal iteration space (§IV-B) — depends only
// on (allocation, layout), not on np or mapping options, so repeated queries
// against the same cluster can skip straight to the iteration walk. Keys
// combine the canonical allocation fingerprint with the canonical layout
// string; values own a private copy of the allocation (the pruned trees hold
// pointers into its topology objects) plus the tree built over it, shared
// immutably via shared_ptr so evicted trees stay alive for requests still
// mapping from them.
//
// Concurrency: keys hash-partition across independent shards, each a mutex +
// LruMap + in-flight table. A miss publishes a shared_future before building
// so duplicate concurrent misses coalesce onto the one build instead of
// duplicating it; build failures propagate to every coalesced waiter and are
// not cached.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "lama/layout.hpp"
#include "lama/maximal_tree.hpp"
#include "support/lru.hpp"
#include "support/numa.hpp"
#include "svc/counters.hpp"

namespace lama::svc {

struct TreeKey {
  std::uint64_t alloc_fp = 0;  // allocation_fingerprint()
  std::string layout;          // canonical ProcessLayout::to_string() form

  bool operator==(const TreeKey&) const = default;
};

struct TreeKeyHash {
  std::size_t operator()(const TreeKey& key) const;
};

// An immutable (allocation, layout, maximal tree) triple. The allocation is
// a deep copy made at build time: the tree's pruned objects point into these
// topologies, so tying their lifetimes together is what makes the cached
// value safe to share after the requesting client's allocation is gone.
//
// Every tree carries an integrity checksum sealed at build time — the hash
// of the fingerprint/layout pair it was built for. verify() re-derives the
// expectation from the lookup key, so a tree that somehow ends up under the
// wrong key (or whose seal was corrupted) is detected on the hit path and
// the service degrades to a fresh uncached build instead of mapping onto
// the wrong hardware.
class CachedTree {
 public:
  CachedTree(const Allocation& alloc, ProcessLayout layout);

  CachedTree(const CachedTree&) = delete;
  CachedTree& operator=(const CachedTree&) = delete;

  [[nodiscard]] const Allocation& alloc() const { return alloc_; }
  [[nodiscard]] const ProcessLayout& layout() const { return layout_; }
  [[nodiscard]] const MaximalTree& tree() const { return tree_; }

  // True when the sealed checksum matches what `key` demands.
  [[nodiscard]] bool verify(const TreeKey& key) const;

  // The current seal value. The plan cache memoizes seal_for(key) at
  // compile time and compares against this on every hit, so hit-path
  // integrity checks stay allocation-free (seal_for concatenates strings).
  [[nodiscard]] std::uint64_t seal() const {
    return seal_.load(std::memory_order_relaxed);
  }

  // Fault injection: scrambles the seal so the next verify() fails. Atomic,
  // so injectors may fire while requests are mapping from this tree.
  void corrupt_for_testing() const;

  // The checksum a tree built for `key` must carry.
  static std::uint64_t seal_for(const TreeKey& key);

 private:
  Allocation alloc_;
  ProcessLayout layout_;
  MaximalTree tree_;  // built over alloc_; must be declared after it
  mutable std::atomic<std::uint64_t> seal_;
};

class ShardedTreeCache {
 public:
  // `capacity_per_shard` of 0 disables caching: every lookup builds.
  // `arena`/`numa` (both optional, must outlive the cache when set) place
  // each shard's control block on a NUMA node round-robin, so on a
  // multi-socket host the mutex + LRU a shard thread hammers live on its
  // own memory; null degrades to plain operator new.
  ShardedTreeCache(std::size_t num_shards, std::size_t capacity_per_shard,
                   Counters& counters,
                   support::NumaAllocator* arena = nullptr,
                   const support::NumaTopology* numa = nullptr);

  struct Lookup {
    std::shared_ptr<const CachedTree> tree;
    bool hit = false;        // served from the LRU
    bool coalesced = false;  // waited on another request's build
  };

  // Returns the tree for `key`, building it from (alloc, layout) on a miss.
  // Exactly one of hit/coalesced/neither (a miss that built) holds, and the
  // matching counter is incremented. Build exceptions propagate to the
  // caller and to every coalesced waiter.
  Lookup get_or_build(const TreeKey& key, const Allocation& alloc,
                      const ProcessLayout& layout);

  // Drops one entry (e.g. a tree that failed integrity re-validation).
  // Returns true when it was present.
  bool erase(const TreeKey& key);

  // Drops every cached tree built over the allocation with this fingerprint
  // — the epoch-bump invalidation hook of OFFLINE/ONLINE. Returns the number
  // of entries removed. In-flight builds are left to finish; their results
  // enter the cache under the (now stale) fingerprint and simply never match
  // a future request's key.
  std::size_t invalidate_alloc(std::uint64_t alloc_fp);

  // Fault injection: corrupts the integrity seal of every cached tree under
  // `alloc_fp` (all trees when 0). Returns how many were corrupted.
  std::size_t corrupt_for_testing(std::uint64_t alloc_fp = 0);

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  // Cached trees across all shards (racy under concurrency; for tests).
  [[nodiscard]] std::size_t size() const;

 private:
  using TreePtr = std::shared_ptr<const CachedTree>;

  struct Shard {
    explicit Shard(std::size_t capacity) : lru(capacity) {}
    std::mutex mu;
    LruMap<TreeKey, TreePtr, TreeKeyHash> lru;
    std::unordered_map<TreeKey, std::shared_future<TreePtr>, TreeKeyHash>
        inflight;
  };

  Shard& shard_for(const TreeKey& key);

  std::vector<support::NumaUniquePtr<Shard>> shards_;
  Counters& counters_;
};

}  // namespace lama::svc
