// The sharded epoll server core (ROADMAP item 3): N independent event
// loops, each with its own epoll instance, listener, NetCounters, and
// ProtocolSession, all bound to the same TCP port via SO_REUSEPORT so the
// kernel hash-partitions incoming connections. A connection lands on one
// shard at accept time and stays there for life — its session state, its
// write buffer, and its counters never cross a thread boundary, so the per
// shard hot path keeps the single-threaded server's lock-free discipline.
// Cross-shard coordination is exactly two objects: the shared
// ConnectionLimiter (global --max-connections), and the MappingService
// underneath, whose tree/plan/opt caches were already sharded and
// thread-safe.
//
// Self-mapping: the server is itself a parallel process, so it places its
// own shard threads with LAMA. compute_shard_affinity() wraps the
// discovered machine in a one-node Cluster, runs lama_map over it with a
// locality-preserving layout, and hands each shard the OS cpus of its
// rank's target PUs — discovery keeps platform os indices exactly so this
// works (topo/sysfs_topology.hpp).
//
// What does NOT shard: durability. ProtocolSession and dur::StateStore are
// single-writer by design, and N sessions journaling into one store would
// interleave un-serializably — the CLI refuses --state-dir with --shards
// greater than one rather than corrupt a journal.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svc/event_loop.hpp"
#include "topo/node_topology.hpp"

namespace lama::svc {

class MappingService;
class ProtocolSession;

struct ShardServerConfig {
  // Event-loop shards (>= 1). One shard degenerates to the plain
  // EventLoopServer behaviour — same wire output, same counters.
  std::size_t shards = 1;
  // Per-shard loop configuration. `max_connections` is the GLOBAL cap
  // across every shard (enforced through one shared ConnectionLimiter, 0 =
  // unlimited); `limiter`, `reuse_port` and `affinity_cpus` are owned by
  // the sharded server and overwritten per shard.
  NetConfig net;
  // OS cpus to pin each shard's loop thread to; entry i applies to shard i,
  // missing/empty entries leave that shard unpinned. Produced by
  // compute_shard_affinity() — or left empty (--no-affinity).
  std::vector<std::vector<int>> affinity;
};

// LAMA maps its own server: places `shards` ranks onto `machine` (a
// one-node cluster of it) with the given rmaps layout and returns, per
// shard, the OS indices of its target PUs — ready for
// pthread_setaffinity_np via NetConfig::affinity_cpus. Returns an empty
// vector when the machine cannot host the mapping (no online PU).
std::vector<std::vector<int>> compute_shard_affinity(
    const NodeTopology& machine, std::size_t shards,
    const std::string& layout = "scbnh");

class ShardedServer {
 public:
  // `service` is caller-owned and must outlive the server. Each shard gets
  // its own ProtocolSession over it (constructed here), so control-plane
  // mutations (INTERN, EPOCH, ...) are per-shard state exactly like they
  // are per-process state across lamactl instances today.
  ShardedServer(MappingService& service, ShardServerConfig config);
  ~ShardedServer();

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  // Binds every shard. TCP only for shards > 1 (SO_REUSEPORT has no unix
  // equivalent worth the pretence) — throws MappingError otherwise. Pass
  // port 0 and shard 0 resolves it; siblings bind the resolved port.
  void listen(const std::string& address);
  void listen(const ListenAddress& address);

  [[nodiscard]] const ListenAddress& bound_address() const;

  // Serves until `stop` returns true or stop() is called. Shard 0 runs on
  // the calling thread (it evaluates `stop`, preserving the single-shard
  // contract that the predicate is polled from the serving thread); shards
  // 1..N-1 run on internal threads and stop when shard 0 does. Returns the
  // total number of requests dispatched across every shard.
  std::size_t run(const std::function<bool()>& stop = nullptr);

  // Background-thread convenience: start() runs run() on an internal
  // thread, stop() signals every shard and joins.
  void start();
  void stop();

  [[nodiscard]] std::size_t shards() const { return servers_.size(); }
  [[nodiscard]] const NetCounters& shard_counters(std::size_t i) const {
    return servers_[i]->net_counters();
  }
  [[nodiscard]] std::size_t dispatched() const;
  [[nodiscard]] const ConnectionLimiter& limiter() const { return limiter_; }

 private:
  MappingService& service_;
  ShardServerConfig config_;
  ConnectionLimiter limiter_;
  std::vector<std::unique_ptr<ProtocolSession>> sessions_;
  std::vector<std::unique_ptr<EventLoopServer>> servers_;
  std::vector<std::thread> threads_;  // shards 1..N-1 during run()
  std::atomic<bool> stop_all_{false};
  std::thread controller_;  // start()/stop() wrapper around run()
};

}  // namespace lama::svc
