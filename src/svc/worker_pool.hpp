// Fixed-size thread pool executing the service's mapping requests. Requests
// are independent of each other, so a plain FIFO queue + condition variable
// is the whole scheduler; results travel back through std::future so batch
// callers preserve request order regardless of completion order. A pool of
// zero threads degenerates to running tasks inline on the submitting thread,
// which keeps single-threaded tests and benchmarks deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace lama::svc {

class WorkerPool {
 public:
  explicit WorkerPool(std::size_t num_threads);
  ~WorkerPool();  // drains the queue, then joins

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return threads_.size(); }

  // Enqueues `fn` and returns a future for its result; exceptions propagate
  // through the future. With zero threads, runs `fn` before returning.
  template <typename F>
  std::future<std::invoke_result_t<F>> async(F fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    submit([task] { (*task)(); });
    return result;
  }

  // Enqueues fire-and-forget work (inline when the pool has no threads).
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace lama::svc
