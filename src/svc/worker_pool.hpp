// Fixed-size thread pool executing the service's mapping requests. Requests
// are independent of each other, so a plain FIFO queue + condition variable
// is the whole scheduler; results travel back through std::future so batch
// callers preserve request order regardless of completion order. A pool of
// zero threads degenerates to running tasks inline on the submitting thread,
// which keeps single-threaded tests and benchmarks deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace lama::svc {

class WorkerPool {
 public:
  // `max_queue` bounds the number of tasks waiting for a worker (0 =
  // unbounded). When the bound is hit, try_submit refuses instead of
  // enqueueing — the service's backpressure valve (ERR busy). Tasks already
  // running do not count against the bound.
  explicit WorkerPool(std::size_t num_threads, std::size_t max_queue = 0);
  ~WorkerPool();  // drains the queue, then joins

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return threads_.size(); }
  [[nodiscard]] std::size_t max_queue() const { return max_queue_; }
  // Tasks currently waiting (racy under concurrency; for observability).
  [[nodiscard]] std::size_t queue_depth() const;

  // Enqueues `fn` and returns a future for its result; exceptions propagate
  // through the future. With zero threads, runs `fn` before returning.
  template <typename F>
  std::future<std::invoke_result_t<F>> async(F fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    submit([task] { (*task)(); });
    return result;
  }

  // async() that honors the queue bound: returns an empty optional instead
  // of enqueueing when the queue is full (never refuses with zero threads —
  // inline execution has no queue to overflow).
  template <typename F>
  std::optional<std::future<std::invoke_result_t<F>>> try_async(F fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    if (!try_submit([task] { (*task)(); })) return std::nullopt;
    return result;
  }

  // Enqueues fire-and-forget work (inline when the pool has no threads).
  // Ignores the queue bound — shutdown-critical work must never be shed.
  void submit(std::function<void()> task);

  // submit() that refuses (returns false) when the queue is at max_queue.
  bool try_submit(std::function<void()> task);

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t max_queue_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace lama::svc
