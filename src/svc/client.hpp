// The client side of the wire protocol with resilience built in: a
// QueryClient sends protocol lines through a pluggable transport and retries
// load-shed responses ("ERR busy retry-after=<ms>") with capped exponential
// backoff and deterministic jitter. The server's retry-after hint is the
// floor of every delay; jitter (SplitMix64, seeded from RetryPolicy) spreads
// synchronized clients apart without sacrificing reproducibility. Sleeping
// is injectable so tests assert the exact backoff schedule without waiting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "support/rng.hpp"
#include "svc/wire.hpp"

namespace lama::svc {

struct RetryPolicy {
  // Total tries per request, including the first (1 = never retry).
  std::size_t max_attempts = 5;
  // First backoff; doubles every retry.
  std::uint32_t base_ms = 10;
  // Backoff ceiling (pre-jitter).
  std::uint32_t max_ms = 1000;
  // Seed of the jitter stream — fix it and the schedule is reproducible.
  std::uint64_t seed = 0x6c616d61ULL;
};

struct QueryResult {
  std::string response;              // final response line (OK/ERR/empty)
  std::size_t attempts = 0;          // sends of the retried line
  std::uint64_t total_backoff_ms = 0;
  bool gave_up_busy = false;         // still busy after max_attempts

  [[nodiscard]] bool ok() const;
};

// One job of a MAPBATCH request. Options are the MAP key=value pairs
// ("threads=4", "bind=core", ...), one per element — format_mapbatch joins
// them with the job's '/' separator.
struct BatchJob {
  std::string alloc_id;
  std::size_t np = 1;
  std::string spec = "lama";
  std::vector<std::string> options;
};

struct BatchResult {
  // Per-job response lines ("OK hit=..." / "ERR ..."), in submit order,
  // with the "JOB <i>" framing stripped. Empty when the whole batch failed
  // before producing job responses (see `trailer`).
  std::vector<std::string> responses;
  // The batch trailer ("OK mapbatch jobs=... ok=... err=...") or, when the
  // MAPBATCH line itself was rejected, the server's ERR line.
  std::string trailer;
  std::size_t attempts = 0;          // MAPBATCH sends, including retries
  std::uint64_t total_backoff_ms = 0;
  bool gave_up_busy = false;         // some job still busy after max_attempts

  [[nodiscard]] bool ok() const;
};

class QueryClient {
 public:
  // Sends one request line (no trailing newline) and returns the response
  // line. The stream_transport below adapts an ostream/istream pair.
  using Transport = std::function<std::string(const std::string& line)>;
  // Sends one request line and returns every response line it produced — a
  // MAPBATCH answers its JOB lines plus the trailer. MAPBATCH responses are
  // self-delimiting (read until the first line that does not start with
  // "JOB "), which is exactly what stream_multi_transport does.
  using MultiTransport =
      std::function<std::vector<std::string>(const std::string& line)>;
  using Sleeper = std::function<void(std::uint32_t ms)>;

  explicit QueryClient(Transport transport, RetryPolicy policy = {});

  // Replaces the real sleep (std::this_thread::sleep_for) — tests install a
  // recorder here.
  void set_sleeper(Sleeper sleeper);

  // Sends one line; busy responses are retried per the policy, anything
  // else (OK or a real error) returns immediately.
  QueryResult send(const std::string& line);

  // Full query: NODE lines defining `alloc`, then the MAP line (the part
  // that can be shed, so the part that retries).
  QueryResult query(const Allocation& alloc, const std::string& alloc_id,
                    std::size_t np, const std::string& spec,
                    const std::string& options = "");

  // Sends the jobs as one MAPBATCH over `transport` and retries only the
  // busy subset: jobs the server shed are re-sent as a smaller MAPBATCH
  // (after the usual backoff, floored at the largest retry-after hint)
  // while settled jobs keep their responses. Requires a MultiTransport.
  BatchResult map_batch(const std::vector<BatchJob>& jobs,
                        const MultiTransport& transport);

  // The delay before retry number `attempt` (1-based): jittered exponential
  // backoff, never below the server's hint. Exposed so tests can pin the
  // schedule.
  std::uint32_t backoff_ms(std::size_t attempt, std::uint32_t server_hint_ms);

 private:
  Transport transport_;
  RetryPolicy policy_;
  Sleeper sleeper_;
  SplitMix64 jitter_;
};

// Parses "ERR busy retry-after=<ms>"; returns true and fills `retry_after_ms`
// only for well-formed busy responses.
bool parse_busy_response(const std::string& response,
                         std::uint32_t& retry_after_ms);

// A transport over a stream pair: writes the line + '\n', flushes, reads one
// response line. Suitable for pipes to a serve() loop.
QueryClient::Transport stream_transport(std::ostream& out, std::istream& in);

// The MAPBATCH wire line for a set of jobs:
//   "MAPBATCH <n> <id>/<np>/<spec>[/opt]... ..."
std::string format_mapbatch(const std::vector<BatchJob>& jobs);

// A multi-line transport over a stream pair: writes the line, then reads
// JOB lines until the first non-JOB line (the trailer or an ERR), which is
// returned last.
QueryClient::MultiTransport stream_multi_transport(std::ostream& out,
                                                   std::istream& in);

// ---- Socket client ---------------------------------------------------------

// Framing over a raw byte stream with the failure modes real sockets have:
// EINTR, short reads, short writes. The I/O functions follow POSIX read/
// write semantics (bytes moved, 0 = EOF on read, -1 with errno on error) and
// are injectable so the reassembly logic is unit-testable without a socket
// (tests/svc/net_client_test.cpp drip-feeds bytes and interleaves EINTR).
class NetChannel {
 public:
  using ReadFn = std::function<long(char* buf, std::size_t len)>;
  using WriteFn = std::function<long(const char* buf, std::size_t len)>;

  NetChannel(ReadFn read_fn, WriteFn write_fn);

  // A channel over a connected file descriptor (not owned).
  static NetChannel over_fd(int fd);

  // Writes the whole buffer, absorbing EINTR and short writes. False on a
  // hard error.
  bool write_all(std::string_view data);

  // Reads one '\n'-terminated line (terminator and any '\r' stripped),
  // reassembling across short reads. False on EOF or error before the
  // newline arrives.
  bool read_line(std::string& line);

  // One binary frame out / in (svc/wire.hpp). read_frame returns false on
  // EOF, I/O error, or framing damage — `error` says which.
  bool write_frame(WireVerb verb, std::string_view payload);
  bool read_frame(WireVerb& verb, std::string& payload, std::string& error);

  // Bytes buffered but not yet consumed (tests assert reassembly state).
  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  bool fill_some(std::string& error);  // one read into the buffer

  ReadFn read_fn_;
  WriteFn write_fn_;
  std::string buf_;  // inbound bytes not yet returned
};

// A resilient client connection to `lamactl serve --listen`: text or binary
// framing, reconnect with capped exponential backoff, and one retry of the
// in-flight request on a connection that died mid-exchange. Single-threaded.
struct ConnectConfig {
  std::string address;        // "tcp:host:port", ":port", "unix:/path"
  bool binary = false;        // frame requests with the binary wire protocol
  std::size_t max_attempts = 5;       // tries per request, including first
  std::uint32_t backoff_base_ms = 10;  // doubles per retry
  std::uint32_t backoff_max_ms = 1000;
};

class SocketClient {
 public:
  explicit SocketClient(ConnectConfig config);
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  // Sends one command (continuation lines, if any, joined after '\n') and
  // returns its response lines. Response framing is command-aware: one line
  // for most verbs, JOB lines + trailer for MAPBATCH, n lines for BATCH n,
  // through "# EOF" for METRICS. A request that still fails after
  // max_attempts returns one "ERR connect: ..." line.
  std::vector<std::string> request(const std::string& command);

  // Streaming WATCH: subscribes with `command` (e.g. "WATCH 500 metrics")
  // and invokes `on_unit` for every pushed unit — one text line, or one
  // whole binary frame payload (which may carry several lines). Return
  // false from on_unit to unsubscribe and close. Returns true when on_unit
  // ended the stream; false with `error` set when the subscription was
  // refused or the connection died. Never reconnects mid-stream (a resumed
  // subscription would silently skip events).
  bool watch(const std::string& command,
             const std::function<bool(const std::string&)>& on_unit,
             std::string& error);

  // Adapters for QueryClient.
  QueryClient::Transport transport();
  QueryClient::MultiTransport multi_transport();

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] std::size_t reconnects() const { return reconnects_; }
  void close();

 private:
  bool ensure_connected(std::string& error);
  bool exchange(const std::string& command, std::vector<std::string>& lines,
                std::string& error);

  ConnectConfig config_;
  int fd_ = -1;
  std::size_t reconnects_ = 0;  // successful connects after the first
  bool ever_connected_ = false;
};

}  // namespace lama::svc
