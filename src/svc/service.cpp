#include "svc/service.hpp"

#include <chrono>

#include "cluster/alloc_serialize.hpp"
#include "support/error.hpp"

namespace lama::svc {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

MappingService::MappingService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_shards, config.shard_capacity, counters_),
      pool_(config.workers) {}

InternedAlloc MappingService::intern(const Allocation& alloc) {
  alloc.validate();
  auto copy = std::make_shared<const Allocation>(alloc);
  return InternedAlloc{copy, allocation_fingerprint(*copy)};
}

InternedAlloc MappingService::intern_serialized(const std::string& text) {
  return intern(parse_allocation(text));
}

MapResponse MappingService::map(const MapRequest& request) {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  MapResponse response;
  try {
    response = map_uncaught(request);
  } catch (const Error& e) {
    response.error = e.what();
  }
  if (!response.ok()) {
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  counters_.total_ns.record_ns(elapsed_ns(start));
  return response;
}

MapResponse MappingService::map_uncaught(const MapRequest& request) {
  if (!request.alloc.valid()) {
    throw MappingError("request carries no interned allocation");
  }
  const Allocation& client_alloc = *request.alloc.alloc;
  const auto [name, args] = split_rmaps_spec(request.spec);

  MapResponse response;
  // The allocation the mapping ran against: the cached tree's private copy
  // on the cached path (its pruned trees point into that copy), otherwise
  // the client's interned allocation. Binding must use the same one.
  const Allocation* mapped_alloc = &client_alloc;
  std::shared_ptr<const CachedTree> cached;  // keeps the tree alive

  if (name == "lama") {
    // Cached fast path: resolve the spec to a canonical layout exactly as
    // the registry's lama component would, then reuse the shared tree.
    const ProcessLayout layout =
        ProcessLayout::parse(args.empty() ? kLamaDefaultLayout : args);
    ShardedTreeCache::Lookup lookup = cache_.get_or_build(
        TreeKey{request.alloc.fingerprint, layout.to_string()}, client_alloc,
        layout);
    cached = std::move(lookup.tree);
    response.cache_hit = lookup.hit;
    response.coalesced = lookup.coalesced;
    mapped_alloc = &cached->alloc();

    const auto map_start = std::chrono::steady_clock::now();
    response.mapping =
        lama_map(cached->alloc(), cached->layout(), request.opts,
                 cached->tree());
    counters_.map_ns.record_ns(elapsed_ns(map_start));
  } else {
    counters_.uncached.fetch_add(1, std::memory_order_relaxed);
    const auto map_start = std::chrono::steady_clock::now();
    response.mapping = registry_.map(request.spec, client_alloc, request.opts);
    counters_.map_ns.record_ns(elapsed_ns(map_start));
  }

  if (request.binding.has_value()) {
    response.binding =
        bind_processes(*mapped_alloc, response.mapping, *request.binding);
  }
  return response;
}

std::vector<MapResponse> MappingService::map_batch(
    const std::vector<MapRequest>& requests) {
  std::vector<MapResponse> responses(requests.size());
  if (pool_.num_threads() == 0) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      responses[i] = map(requests[i]);
    }
    return responses;
  }
  std::vector<std::future<MapResponse>> pending;
  pending.reserve(requests.size());
  for (const MapRequest& request : requests) {
    pending.push_back(pool_.async([this, &request] { return map(request); }));
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    responses[i] = pending[i].get();
  }
  return responses;
}

}  // namespace lama::svc
