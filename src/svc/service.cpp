#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>

#include "cluster/alloc_serialize.hpp"
#include "dur/state_store.hpp"
#include "lama/parallel_mapper.hpp"
#include "obs/clock.hpp"
#include "support/error.hpp"

namespace lama::svc {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void throw_if_past(std::uint64_t deadline_ns, const char* stage) {
  if (deadline_ns != 0 && now_ns() >= deadline_ns) {
    throw CancelledError(std::string("request deadline exceeded before ") +
                         stage);
  }
}

}  // namespace

MappingService::MappingService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_shards, config.shard_capacity, counters_,
             config.shard_arena, config.numa_topology),
      plan_cache_(config.cache_shards,
                  config.compile_plans ? config.shard_capacity : 0,
                  config.plan_space_limit, counters_, config.shard_arena,
                  config.numa_topology),
      opt_cache_(config.cache_shards, config.shard_capacity,
                 config.shard_arena, config.numa_topology),
      pool_(config.workers, config.max_queue),
      slo_(config.slo),
      start_ns_(obs::monotonic_ns()) {
  if (config_.flight_recorder > 0) {
    obs::TracerConfig tc;
    tc.flight_capacity = config_.flight_recorder;
    tc.sample_every = config_.trace_sample;
    tc.seed = config_.trace_seed;
    tc.tail_capture = config_.trace_tail;
    tc.tail_floor_ns = config_.trace_tail_floor_ns;
    tracer_ = std::make_unique<obs::Tracer>(tc);
  }
}

InternedAlloc MappingService::intern(const Allocation& alloc,
                                     std::uint64_t epoch) {
  alloc.validate();
  auto copy = std::make_shared<const Allocation>(alloc);
  return InternedAlloc{copy, allocation_fingerprint(*copy), epoch};
}

InternedAlloc MappingService::intern_serialized(const std::string& text,
                                                std::uint64_t epoch) {
  return intern(parse_allocation(text), epoch);
}

void MappingService::set_fault_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(fault_hook_mu_);
  fault_hook_ = std::move(hook);
  has_fault_hook_.store(fault_hook_ != nullptr, std::memory_order_release);
}

void MappingService::run_fault_hook() {
  if (!has_fault_hook_.load(std::memory_order_acquire)) return;
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(fault_hook_mu_);
    hook = fault_hook_;
  }
  if (hook) hook();
}

std::size_t MappingService::invalidate(std::uint64_t fingerprint) {
  // Plans embed (and co-own) trees built over the stale epoch; they must
  // leave with them, or a plan hit would keep mapping onto retired hardware.
  plan_cache_.invalidate_alloc(fingerprint);
  // Optimization results place onto the stale epoch's PUs; same rule.
  opt_cache_.invalidate_alloc(fingerprint);
  return cache_.invalidate_alloc(fingerprint);
}

std::size_t MappingService::corrupt_cached_trees_for_testing(
    std::uint64_t fingerprint) {
  return cache_.corrupt_for_testing(fingerprint);
}

MapResponse MappingService::shed_response() {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  counters_.shed.fetch_add(1, std::memory_order_relaxed);
  counters_.errors.fetch_add(1, std::memory_order_relaxed);
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  MapResponse response;
  response.busy = true;
  response.retry_after_ms = config_.retry_after_ms;
  response.error = "busy";
  response.outcome = obs::Outcome::kShed;
  return response;
}

// Shared request wrapper: admission control, deadline resolution, the
// exactly-once error/completed accounting, and end-to-end timing. `fn` runs
// the actual work and receives the resolved deadline.
MapResponse MappingService::run_counted(
    const char* verb, std::uint32_t timeout_ms,
    const std::function<MapResponse(std::uint64_t)>& fn) {
  // Begins a trace only when none is active on this thread: the protocol
  // layer's TraceScope (which also covers parse/reply) wins when present.
  obs::TraceScope trace_scope(tracer_.get());
  // A draining service sheds every new arrival with the retry hint: clients
  // back off and find the restarted process, in-flight work still finishes.
  if (draining()) {
    trace_scope.set_outcome(obs::Outcome::kShed);
    slo_.record(verb, 0, false);
    return shed_response();
  }
  if (config_.max_inflight > 0) {
    const std::size_t prev =
        inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (prev >= config_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      trace_scope.set_outcome(obs::Outcome::kShed);
      slo_.record(verb, 0, false);
      return shed_response();
    }
  } else {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
  }

  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  const std::uint32_t effective_ms =
      timeout_ms != 0 ? timeout_ms : config_.default_timeout_ms;
  const std::uint64_t deadline_ns =
      effective_ms != 0
          ? now_ns() + static_cast<std::uint64_t>(effective_ms) * 1'000'000
          : 0;

  MapResponse response;
  obs::Outcome outcome = obs::Outcome::kOk;
  try {
    run_fault_hook();
    response = fn(deadline_ns);
    if (response.degraded) outcome = obs::Outcome::kDegraded;
  } catch (const CancelledError& e) {
    counters_.deadlined.fetch_add(1, std::memory_order_relaxed);
    response.error = e.what();
    outcome = obs::Outcome::kDeadlined;
  } catch (const Error& e) {
    response.error = e.what();
    outcome = obs::Outcome::kError;
  } catch (const std::exception& e) {
    // Never let an unexpected exception skip the accounting (or tear down a
    // worker thread): a failed request is a failed request.
    response.error = std::string("unexpected error: ") + e.what();
    outcome = obs::Outcome::kError;
  }
  if (!response.ok()) {
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    if (outcome == obs::Outcome::kOk) outcome = obs::Outcome::kError;
  }
  response.outcome = outcome;
  trace_scope.set_outcome(outcome);
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t took = elapsed_ns(start);
  counters_.total_ns.record_ns(took);
  slo_.record(verb, took, response.ok());
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  return response;
}

MapResponse MappingService::map(const MapRequest& request) {
  return run_counted("query", request.timeout_ms,
                     [&](std::uint64_t deadline_ns) {
                       return map_uncaught(request, deadline_ns);
                     });
}

MappingResult MappingService::run_lama_walk(const Allocation& alloc,
                                            const ProcessLayout& layout,
                                            const MapOptions& opts,
                                            const MaximalTree* tree,
                                            std::size_t threads) {
  const obs::SpanScope map_span(obs::Stage::kMap,
                                static_cast<std::uint32_t>(threads));
  const auto start = std::chrono::steady_clock::now();
  MappingResult mapping;
  if (threads > 0) {
    counters_.parallel_maps.fetch_add(1, std::memory_order_relaxed);
    mapping = tree != nullptr
                  ? lama_map_parallel(alloc, layout, opts, *tree, threads)
                  : lama_map_parallel(alloc, layout, opts, threads);
    counters_.parallel_map_ns.record_ns(elapsed_ns(start));
  } else {
    mapping = tree != nullptr ? lama_map(alloc, layout, opts, *tree)
                              : lama_map(alloc, layout, opts);
  }
  // map_ns covers every lama walk, sequential or parallel;
  // parallel_map_ns above isolates the parallel ones.
  counters_.map_ns.record_ns(elapsed_ns(start));
  return mapping;
}

MappingResult MappingService::run_compiled_walk(const Allocation& alloc,
                                                const MapOptions& opts,
                                                const MapPlan& plan,
                                                std::size_t threads) {
  const obs::SpanScope map_span(obs::Stage::kMap,
                                static_cast<std::uint32_t>(threads));
  const auto start = std::chrono::steady_clock::now();
  MappingResult mapping;
  {
    const obs::SpanScope exec_span(obs::Stage::kPlanExec);
    if (threads > 0) {
      counters_.parallel_maps.fetch_add(1, std::memory_order_relaxed);
      mapping = lama_map_parallel(alloc, opts, plan, threads);
      counters_.parallel_map_ns.record_ns(elapsed_ns(start));
    } else {
      // One executor per worker thread: its dense arenas stay sized for the
      // plans that thread replays, so steady-state walks allocate nothing
      // inside the executor.
      thread_local PlanExecutor executor;
      lama_map_compiled(alloc, opts, plan, executor, mapping);
    }
  }
  const std::uint64_t took = elapsed_ns(start);
  counters_.compiled_map_ns.record_ns(took);
  // map_ns covers every lama walk — reference, parallel, or compiled.
  counters_.map_ns.record_ns(took);
  return mapping;
}

MapResponse MappingService::map_uncaught(const MapRequest& request,
                                         std::uint64_t deadline_ns) {
  if (!request.alloc.valid()) {
    throw MappingError("request carries no interned allocation");
  }
  const Allocation& client_alloc = *request.alloc.alloc;
  const auto [name, args] = split_rmaps_spec(request.spec);

  {
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(request.alloc.fingerprint));
    alloc_series_.increment(fp);
  }

  MapOptions opts = request.opts;
  if (opts.deadline_ns == 0) opts.deadline_ns = deadline_ns;
  throw_if_past(opts.deadline_ns, "mapping started");

  MapResponse response;
  // The allocation the mapping ran against: the cached tree's private copy
  // on the cached path (its pruned trees point into that copy), otherwise
  // the client's interned allocation. Binding must use the same one.
  const Allocation* mapped_alloc = &client_alloc;
  std::shared_ptr<const CachedTree> cached;  // keeps the tree alive

  if (name == "lama") {
    // Cached fast path: resolve the spec to a canonical layout exactly as
    // the registry's lama component would, then reuse the shared tree.
    const ProcessLayout layout =
        ProcessLayout::parse(args.empty() ? kLamaDefaultLayout : args);
    const TreeKey key{request.alloc.fingerprint, layout.to_string()};
    layout_series_.increment(key.layout);
    counters_.cached.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t lookup_span = obs::span_begin();
    ShardedTreeCache::Lookup lookup =
        cache_.get_or_build(key, client_alloc, layout);
    obs::span_end(obs::Stage::kLookup, lookup.hit ? 1 : 0, lookup_span);
    cached = std::move(lookup.tree);
    response.cache_hit = lookup.hit;
    response.coalesced = lookup.coalesced;

    if (config_.verify_trees && lookup.hit && !cached->verify(key)) {
      // Integrity re-validation failed: never map from a tree whose seal
      // does not match its key. Drop it and degrade to the uncached path —
      // a fresh tree built from the client's own allocation.
      counters_.integrity_failures.fetch_add(1, std::memory_order_relaxed);
      counters_.degraded.fetch_add(1, std::memory_order_relaxed);
      cache_.erase(key);
      // Any compiled plan shares the rejected tree (or an equally stale
      // sibling under this key) — drop it with the tree, never execute it.
      plan_cache_.erase(key);
      cached.reset();
      response.cache_hit = false;
      response.degraded = true;
      response.mapping = run_lama_walk(client_alloc, layout, opts, nullptr,
                                       request.map_threads);
    } else {
      mapped_alloc = &cached->alloc();
      throw_if_past(opts.deadline_ns, "the mapping walk");
      // Compiled fast path: serve default-policy requests from a cached
      // MapPlan. The plan embeds (and co-owns) the tree it was compiled
      // from; mapping and binding must run against that tree's allocation —
      // a deep copy content-identical to `cached`'s under the same key.
      std::shared_ptr<const CachedPlan> plan;
      if (config_.compile_plans && config_.shard_capacity > 0 &&
          opts.iteration.is_default()) {
        plan = plan_cache_
                   .get_or_compile(key, cached, config_.verify_trees)
                   .plan;
      }
      if (plan != nullptr) {
        mapped_alloc = &plan->tree()->alloc();
        response.mapping = run_compiled_walk(plan->tree()->alloc(), opts,
                                             plan->plan(),
                                             request.map_threads);
      } else {
        response.mapping =
            run_lama_walk(cached->alloc(), cached->layout(), opts,
                          &cached->tree(), request.map_threads);
      }
    }
  } else {
    layout_series_.increment(name);
    counters_.uncached.fetch_add(1, std::memory_order_relaxed);
    const obs::SpanScope map_span(obs::Stage::kMap, 0);
    const auto map_start = std::chrono::steady_clock::now();
    response.mapping = registry_.map(request.spec, client_alloc, opts);
    counters_.map_ns.record_ns(elapsed_ns(map_start));
  }

  if (request.binding.has_value()) {
    throw_if_past(opts.deadline_ns, "the binding step");
    const obs::SpanScope bind_span(obs::Stage::kBind);
    response.binding =
        bind_processes(*mapped_alloc, response.mapping, *request.binding);
  }
  return response;
}

MapResponse MappingService::remap(const RemapRequest& request) {
  return run_counted("remap", request.timeout_ms,
                     [&](std::uint64_t deadline_ns) {
    if (!request.alloc.valid()) {
      throw MappingError("remap carries no interned allocation");
    }
    if (request.previous == nullptr) {
      throw MappingError("remap carries no previous mapping");
    }
    counters_.remaps.fetch_add(1, std::memory_order_relaxed);
    MapOptions opts = request.opts;
    if (opts.deadline_ns == 0) opts.deadline_ns = deadline_ns;
    throw_if_past(opts.deadline_ns, "remap started");

    const obs::SpanScope map_span(obs::Stage::kMap);
    const auto map_start = std::chrono::steady_clock::now();
    RemapResult remapped = lama_remap(*request.alloc.alloc, request.layout,
                                      opts, *request.previous);
    counters_.map_ns.record_ns(elapsed_ns(map_start));

    MapResponse response;
    response.mapping = std::move(remapped.mapping);
    response.displaced = std::move(remapped.displaced);
    response.surviving = remapped.surviving;
    response.degraded = remapped.degraded_shared;
    return response;
  });
}

OptimizeResponse MappingService::optimize(const OptimizeRequest& request) {
  OptimizeResponse out;
  // run_counted supplies the shared admission/deadline/accounting wrapper;
  // the optimize-specific payload travels through `out`, captured alongside.
  const MapResponse counted =
      run_counted("optimize", request.timeout_ms,
                  [&](std::uint64_t deadline_ns) {
        if (!request.alloc.valid()) {
          throw MappingError("optimize carries no interned allocation");
        }
        if (request.matrix == nullptr) {
          throw MappingError("optimize carries no communication matrix");
        }
        counters_.opt_requests.fetch_add(1, std::memory_order_relaxed);
        const OptKey key{request.alloc.fingerprint, request.matrix->digest(),
                         request.budget.key()};
        if (auto cached = opt_cache_.get(key)) {
          counters_.opt_hits.fetch_add(1, std::memory_order_relaxed);
          out.result = std::move(cached);
          out.cache_hit = true;
          return MapResponse{};
        }
        counters_.opt_misses.fetch_add(1, std::memory_order_relaxed);

        opt::OptBudget budget = request.budget;
        if (budget.deadline_ns == 0) budget.deadline_ns = deadline_ns;
        throw_if_past(budget.deadline_ns, "the placement search");

        // Candidate pricing runs on the worker pool when asked (and the
        // pool exists); per-index result slots keep the winner independent
        // of scheduling, so thread count never changes the placement. The
        // request's trace context is handed to the workers so their
        // opt_candidate spans land in this request's trace.
        opt::Parallel parallel;
        if (request.threads > 0 && pool_.num_threads() > 0) {
          parallel = [this](std::size_t count,
                            const std::function<void(std::size_t)>& fn) {
            const obs::TraceHandle trace_ctx = obs::current_trace();
            std::vector<std::future<void>> pending;
            pending.reserve(count);
            for (std::size_t i = 0; i < count; ++i) {
              pending.push_back(pool_.async([&fn, trace_ctx, i] {
                const obs::ScopedTrace scoped(trace_ctx);
                const obs::SpanScope span(obs::Stage::kOptCandidate,
                                          static_cast<std::uint32_t>(i));
                fn(i);
              }));
            }
            for (auto& f : pending) f.get();
          };
        }

        const obs::SpanScope opt_span(obs::Stage::kOptimize);
        const auto start = std::chrono::steady_clock::now();
        static const DistanceModel kModel = DistanceModel::commodity();
        opt::OptimizeResult result = optimize_placement(
            *request.alloc.alloc, *request.matrix, budget, kModel, parallel);
        counters_.opt_ns.record_ns(elapsed_ns(start));
        counters_.opt_candidates.fetch_add(result.candidates_evaluated,
                                           std::memory_order_relaxed);
        counters_.opt_swaps.fetch_add(result.refine_swaps,
                                      std::memory_order_relaxed);

        auto shared =
            std::make_shared<const opt::OptimizeResult>(std::move(result));
        opt_cache_.put(key, shared);
        out.result = std::move(shared);
        return MapResponse{};
      });
  out.busy = counted.busy;
  out.retry_after_ms = counted.retry_after_ms;
  out.error = counted.error;
  out.outcome = counted.outcome;
  return out;
}

std::vector<MapResponse> MappingService::map_batch(
    const std::vector<MapRequest>& requests) {
  // The batch itself is traced (stage `batch`); every job runs under its own
  // trace carrying the batch's id as parent. The scope begins only when the
  // protocol layer did not already begin a trace for this MAPBATCH line.
  obs::TraceScope batch_scope(tracer_.get());
  const std::uint64_t batch_id = obs::current_trace_id();
  const obs::SpanScope batch_span(obs::Stage::kBatch,
                                  static_cast<std::uint32_t>(requests.size()));
  const auto batch_start = std::chrono::steady_clock::now();
  counters_.batched.fetch_add(1, std::memory_order_relaxed);
  counters_.batch_jobs.fetch_add(requests.size(), std::memory_order_relaxed);
  std::vector<MapResponse> responses(requests.size());
  if (pool_.num_threads() == 0) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      // Suspend the batch trace so each inline job begins one of its own
      // (parented to the batch), exactly like the pool path below.
      const obs::ScopedTrace suspend{obs::TraceHandle{}};
      const obs::ScopedParent parent(batch_id);
      responses[i] = map(requests[i]);
    }
  } else {
    // Deadlines are resolved at admission, not at execution: a request whose
    // budget expires while queued is cancelled by the first deadline poll.
    std::vector<std::optional<std::future<MapResponse>>> pending;
    pending.reserve(requests.size());
    for (const MapRequest& request : requests) {
      MapRequest admitted = request;
      const std::uint32_t effective_ms = admitted.timeout_ms != 0
                                             ? admitted.timeout_ms
                                             : config_.default_timeout_ms;
      if (admitted.opts.deadline_ns == 0 && effective_ms != 0) {
        admitted.opts.deadline_ns =
            now_ns() + static_cast<std::uint64_t>(effective_ms) * 1'000'000;
      }
      pending.push_back(
          pool_.try_async([this, batch_id, admitted = std::move(admitted)] {
            const obs::ScopedParent parent(batch_id);
            return map(admitted);
          }));
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      // A refused slot (bounded queue full) sheds with the busy response —
      // traced like any other shed so the failure is never invisible.
      if (pending[i].has_value()) {
        responses[i] = pending[i]->get();
      } else {
        if (tracer_ != nullptr) {
          const obs::ScopedTrace suspend{obs::TraceHandle{}};
          const obs::ScopedParent parent(batch_id);
          const std::uint64_t id = tracer_->begin();
          tracer_->end(id, obs::Outcome::kShed);
        }
        responses[i] = shed_response();
      }
    }
  }
  bool any_failed = false;
  for (const MapResponse& response : responses) {
    if (!response.ok()) any_failed = true;
  }
  // The batch counts as one SLO event: good only when every job succeeded
  // and the whole batch landed inside the mapbatch objective.
  slo_.record("mapbatch", elapsed_ns(batch_start), !any_failed);
  batch_scope.set_outcome(any_failed ? obs::Outcome::kError
                                     : obs::Outcome::kOk);
  return responses;
}

double MappingService::uptime_s() const {
  return static_cast<double>(obs::monotonic_ns() - start_ns_) / 1e9;
}

namespace {

void add_summary(obs::MetricsSnapshot& snap, const std::string& name,
                 const std::string& help,
                 const LatencyHistogram::Snapshot& s) {
  obs::MetricFamily& family = snap.add(name, help, "summary");
  for (const double q : {0.5, 0.9, 0.99}) {
    char quantile[16];
    std::snprintf(quantile, sizeof(quantile), "%g", q);
    family.samples.push_back(
        {"", {{"quantile", quantile}},
         static_cast<double>(s.percentile_ns(q * 100.0))});
  }
  family.samples.push_back({"_sum", {}, static_cast<double>(s.sum_ns)});
  family.samples.push_back({"_count", {}, static_cast<double>(s.count)});
}

void add_summary(obs::MetricsSnapshot& snap, const std::string& name,
                 const std::string& help, const LatencyHistogram& hist) {
  // One snapshot per family: quantiles, sum, and count are mutually
  // consistent even while writers keep recording.
  add_summary(snap, name, help, hist.snapshot());
}

// Renders the per-stage histograms as one real Prometheus histogram family
// labeled by stage: cumulative `le` buckets (each bucket's inclusive upper
// bound in ns) with OpenMetrics exemplars carrying the trace id of the
// slowest recent sample in that bucket, plus _sum/_count. Stages that never
// recorded are omitted to keep the exposition lean.
void add_stage_histograms(obs::MetricsSnapshot& snap,
                          const obs::StageStats& stats) {
  obs::MetricFamily& family =
      snap.add("lama_stage_latency_ns", "Per-stage span latency (ns)",
               "histogram");
  for (std::size_t s = 0; s < obs::kStageCount; ++s) {
    const auto stage = static_cast<obs::Stage>(s);
    const LatencyHistogram::Snapshot snapshot =
        stats.histogram(stage).snapshot();
    if (snapshot.count == 0) continue;
    const std::string name = obs::stage_name(stage);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      if (snapshot.buckets[i] == 0) continue;
      cumulative += snapshot.buckets[i];
      obs::MetricSample sample{
          "_bucket",
          {{"stage", name},
           {"le", std::to_string(
                      LatencyHistogram::Snapshot::bucket_bound_ns(i))}},
          static_cast<double>(cumulative)};
      const obs::StageStats::Exemplar ex = stats.exemplar(stage, i);
      if (ex.trace_id != 0) {
        char trace[32];
        std::snprintf(trace, sizeof(trace), "%016llx",
                      static_cast<unsigned long long>(ex.trace_id));
        sample.exemplar_trace = trace;
        sample.exemplar_value = static_cast<double>(ex.ns);
      }
      family.samples.push_back(std::move(sample));
    }
    family.samples.push_back({"_bucket",
                              {{"stage", name}, {"le", "+Inf"}},
                              static_cast<double>(snapshot.count)});
    family.samples.push_back(
        {"_sum", {{"stage", name}}, static_cast<double>(snapshot.sum_ns)});
    family.samples.push_back(
        {"_count", {{"stage", name}}, static_cast<double>(snapshot.count)});
  }
}

}  // namespace

obs::MetricsSnapshot MappingService::metrics_snapshot() const {
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return static_cast<double>(a.load(std::memory_order_relaxed));
  };
  obs::MetricsSnapshot snap;

  // Request counters, names matching the STATS keys with a lama_ prefix.
  const Counters& c = counters_;
  snap.add_scalar("lama_requests_total", "Requests accepted", "counter",
                  load(c.requests));
  snap.add_scalar("lama_completed_total", "Requests finished (ok or error)",
                  "counter", load(c.completed));
  snap.add_scalar("lama_errors_total", "Requests finished with an error",
                  "counter", load(c.errors));
  snap.add_scalar("lama_cached_total", "Requests that consulted the tree cache",
                  "counter", load(c.cached));
  snap.add_scalar("lama_cache_hits_total", "Trees served from the LRU",
                  "counter", load(c.cache_hits));
  snap.add_scalar("lama_cache_misses_total", "Trees built by the request",
                  "counter", load(c.cache_misses));
  snap.add_scalar("lama_coalesced_total", "Requests that joined an in-flight build",
                  "counter", load(c.coalesced));
  snap.add_scalar("lama_evictions_total", "Trees dropped by LRU policy",
                  "counter", load(c.evictions));
  snap.add_scalar("lama_uncached_total", "Requests that skipped the cache",
                  "counter", load(c.uncached));
  snap.add_scalar("lama_shed_total", "Requests rejected by admission control",
                  "counter", load(c.shed));
  snap.add_scalar("lama_deadlined_total", "Requests cancelled past deadline",
                  "counter", load(c.deadlined));
  snap.add_scalar("lama_integrity_failures_total",
                  "Cached trees rejected by integrity verification", "counter",
                  load(c.integrity_failures));
  snap.add_scalar("lama_degraded_total",
                  "Requests that fell back to the uncached path", "counter",
                  load(c.degraded));
  snap.add_scalar("lama_invalidations_total", "Trees dropped by epoch bumps",
                  "counter", load(c.invalidations));
  snap.add_scalar("lama_remaps_total", "Remap requests accepted", "counter",
                  load(c.remaps));
  snap.add_scalar("lama_batched_total", "Batch requests accepted", "counter",
                  load(c.batched));
  snap.add_scalar("lama_batch_jobs_total", "Jobs carried by batches", "counter",
                  load(c.batch_jobs));
  snap.add_scalar("lama_parallel_maps_total",
                  "Mapping walks run by the parallel mapper", "counter",
                  load(c.parallel_maps));
  snap.add_scalar("lama_plan_cache_hits_total",
                  "Compiled plans served from the LRU", "counter",
                  load(c.plan_hits));
  snap.add_scalar("lama_plan_cache_misses_total",
                  "Compiled plans built by the request", "counter",
                  load(c.plan_misses));
  snap.add_scalar("lama_opt_requests_total", "OPTIMIZE requests accepted",
                  "counter", load(c.opt_requests));
  snap.add_scalar("lama_opt_hits_total",
                  "OPTIMIZE requests served from the opt cache", "counter",
                  load(c.opt_hits));
  snap.add_scalar("lama_opt_misses_total",
                  "OPTIMIZE requests that ran the placement search", "counter",
                  load(c.opt_misses));
  snap.add_scalar("lama_opt_candidates_total",
                  "Seed placements priced by OPTIMIZE misses", "counter",
                  load(c.opt_candidates));
  snap.add_scalar("lama_opt_swaps_total",
                  "Refinement swaps applied by OPTIMIZE misses", "counter",
                  load(c.opt_swaps));

  // Service gauges.
  snap.add_scalar("lama_uptime_seconds", "Seconds since service construction",
                  "gauge", uptime_s());
  snap.add_scalar("lama_cache_trees", "Trees currently cached", "gauge",
                  static_cast<double>(cache_.size()));
  snap.add_scalar("lama_cache_plans", "Compiled plans currently cached",
                  "gauge", static_cast<double>(plan_cache_.size()));
  snap.add_scalar("lama_cache_opts", "Optimization results currently cached",
                  "gauge", static_cast<double>(opt_cache_.size()));
  snap.add_scalar("lama_inflight_requests", "Requests currently in flight",
                  "gauge",
                  static_cast<double>(
                      inflight_.load(std::memory_order_relaxed)));

  // Per-stage latency summaries.
  add_summary(snap, "lama_lookup_ns", "Cache probe latency (ns)", c.lookup_ns);
  add_summary(snap, "lama_build_ns", "Maximal-tree build latency (ns)",
              c.build_ns);
  add_summary(snap, "lama_map_ns", "Mapping walk latency (ns)", c.map_ns);
  add_summary(snap, "lama_parallel_map_ns",
              "Parallel mapping walk latency (ns)", c.parallel_map_ns);
  add_summary(snap, "lama_plan_compile_ns", "Plan compilation latency (ns)",
              c.plan_compile_ns);
  add_summary(snap, "lama_compiled_map_ns",
              "Compiled-kernel mapping walk latency (ns)", c.compiled_map_ns);
  add_summary(snap, "lama_opt_ns", "Placement search latency (ns)", c.opt_ns);
  add_summary(snap, "lama_total_ns", "End-to-end request latency (ns)",
              c.total_ns);

  // Labeled request series (bounded; overflow folds into "_other").
  {
    obs::MetricFamily& family =
        snap.add("lama_requests_by_layout_total",
                 "Requests per canonical layout (or baseline spec)", "counter");
    for (const auto& [layout, count] : layout_series_.snapshot()) {
      family.samples.push_back(
          {"", {{"layout", layout}}, static_cast<double>(count)});
    }
    obs::MetricFamily& alloc_family =
        snap.add("lama_requests_by_alloc_total",
                 "Requests per allocation fingerprint", "counter");
    for (const auto& [fp, count] : alloc_series_.snapshot()) {
      alloc_family.samples.push_back(
          {"", {{"alloc", fp}}, static_cast<double>(count)});
    }
  }

  // Durability (all absent when no state store is attached; the lone
  // lama_draining gauge is always exported so dashboards can alert on a
  // drain that never finishes).
  snap.add_scalar("lama_draining", "1 while the service is draining", "gauge",
                  draining() ? 1.0 : 0.0);
  if (durability_ != nullptr) {
    const dur::StoreStats d = durability_->stats();
    snap.add_scalar("lama_dur_journal_records_total",
                    "Mutation records appended to the write-ahead journal",
                    "counter", static_cast<double>(d.journal.appended));
    snap.add_scalar("lama_dur_journal_bytes_total",
                    "Bytes appended to the write-ahead journal", "counter",
                    static_cast<double>(d.journal.bytes));
    snap.add_scalar("lama_dur_journal_fsyncs_total",
                    "Journal fsync calls issued", "counter",
                    static_cast<double>(d.journal.fsyncs));
    snap.add_scalar("lama_dur_journal_errors_total",
                    "Journal records lost to write or fsync failures",
                    "counter",
                    static_cast<double>(d.journal.write_errors +
                                        d.journal.fsync_errors));
    snap.add_scalar("lama_dur_snapshots_total",
                    "Compacting snapshots written", "counter",
                    static_cast<double>(d.snapshots));
    snap.add_scalar("lama_dur_snapshot_errors_total",
                    "Snapshot rotations that failed", "counter",
                    static_cast<double>(d.snapshot_errors));
    snap.add_scalar("lama_dur_recovered_records_total",
                    "Journal records replayed at startup", "counter",
                    static_cast<double>(d.recovered_records));
    snap.add_scalar("lama_dur_torn_tails_total",
                    "Journal tails truncated at recovery", "counter",
                    static_cast<double>(d.torn_tails));
    snap.add_scalar("lama_dur_journal_lag",
                    "Records appended but not yet fsynced", "gauge",
                    static_cast<double>(durability_->journal_lag()));
    snap.add_scalar("lama_dur_snapshot_seq",
                    "Current snapshot/journal generation", "gauge",
                    static_cast<double>(durability_->snapshot_seq()));
  }

  // Transport (absent when no event-loop server is attached). The
  // aggregate series sum every attached shard; with more than one shard a
  // shard-labeled split follows so imbalance in the kernel's SO_REUSEPORT
  // hashing is visible without changing the aggregate names.
  const std::vector<const NetCounters*> shards = [this] {
    const std::lock_guard<std::mutex> lock(net_mu_);
    return net_;
  }();
  if (!shards.empty()) {
    NetStats n;
    for (const NetCounters* shard : shards) n.add(*shard);
    snap.add_scalar("lama_net_accepted_total", "Connections accepted",
                    "counter", static_cast<double>(n.accepted));
    snap.add_scalar("lama_net_closed_total", "Connections closed", "counter",
                    static_cast<double>(n.closed));
    snap.add_scalar("lama_net_rejected_total",
                    "Accepts refused at the connection cap", "counter",
                    static_cast<double>(n.rejected));
    snap.add_scalar("lama_net_text_requests_total",
                    "Text-framed requests dispatched", "counter",
                    static_cast<double>(n.text_requests));
    snap.add_scalar("lama_net_binary_requests_total",
                    "Binary-framed requests dispatched", "counter",
                    static_cast<double>(n.binary_requests));
    snap.add_scalar("lama_net_responses_total",
                    "Responses enqueued for write", "counter",
                    static_cast<double>(n.responses));
    snap.add_scalar("lama_net_shed_total",
                    "Requests shed by write-buffer backpressure", "counter",
                    static_cast<double>(n.shed_backpressure));
    snap.add_scalar("lama_net_frame_errors_total",
                    "Malformed frames and overlong lines", "counter",
                    static_cast<double>(n.frame_errors));
    snap.add_scalar("lama_net_disconnects_total",
                    "Connections lost with a partial request buffered",
                    "counter", static_cast<double>(n.midstream_disconnects));
    snap.add_scalar("lama_net_bytes_in_total", "Bytes read from peers",
                    "counter", static_cast<double>(n.bytes_in));
    snap.add_scalar("lama_net_bytes_out_total", "Bytes written to peers",
                    "counter", static_cast<double>(n.bytes_out));
    snap.add_scalar("lama_net_active_connections",
                    "Connections currently open", "gauge",
                    static_cast<double>(n.active()));
    snap.add_scalar("lama_net_shards", "Attached event-loop shards", "gauge",
                    static_cast<double>(shards.size()));
    add_summary(snap, "lama_net_read_ns", "Socket drain latency (ns)",
                n.read_ns);
    add_summary(snap, "lama_net_dispatch_ns",
                "Per-request dispatch latency (ns)", n.dispatch_ns);
    add_summary(snap, "lama_net_write_ns", "Write-buffer flush latency (ns)",
                n.write_ns);
    if (shards.size() > 1) {
      obs::MetricFamily& reqs =
          snap.add("lama_net_shard_requests_total",
                   "Requests dispatched per event-loop shard", "counter");
      obs::MetricFamily& resp =
          snap.add("lama_net_shard_responses_total",
                   "Responses enqueued per event-loop shard", "counter");
      obs::MetricFamily& conns =
          snap.add("lama_net_shard_active_connections",
                   "Connections currently open per event-loop shard",
                   "gauge");
      for (std::size_t i = 0; i < shards.size(); ++i) {
        const std::string label = std::to_string(i);
        const NetCounters& s = *shards[i];
        reqs.samples.push_back(
            {"", {{"shard", label}},
             static_cast<double>(load(s.text_requests) +
                                 load(s.binary_requests))});
        resp.samples.push_back(
            {"", {{"shard", label}}, static_cast<double>(load(s.responses))});
        conns.samples.push_back(
            {"", {{"shard", label}}, static_cast<double>(s.active())});
      }
    }
  }

  // Tracer activity (all zero when tracing is disabled).
  snap.add_scalar("lama_traces_started_total", "Traces begun", "counter",
                  tracer_ ? static_cast<double>(tracer_->started()) : 0.0);
  snap.add_scalar("lama_traces_assembled_total",
                  "Traces assembled into the flight recorder", "counter",
                  tracer_ ? static_cast<double>(tracer_->assembled()) : 0.0);
  snap.add_scalar("lama_traces_tail_total",
                  "Traces captured by the adaptive tail gate", "counter",
                  tracer_ ? static_cast<double>(tracer_->tail_captured())
                          : 0.0);
  snap.add_scalar("lama_tail_threshold_ns",
                  "Current tail-gate latency estimate (ns)", "gauge",
                  tracer_ ? static_cast<double>(tracer_->tail_threshold_ns())
                          : 0.0);
  snap.add_scalar("lama_trace_dumps_total",
                  "Failure traces recorded for dumping", "counter",
                  tracer_ ? static_cast<double>(tracer_->recorder().dumps())
                          : 0.0);
  snap.add_scalar("lama_flight_recorder_traces",
                  "Complete traces currently retained", "gauge",
                  tracer_ ? static_cast<double>(tracer_->recorder().size())
                          : 0.0);

  // Per-stage latency histograms with trace-id exemplars (tracing on only).
  if (tracer_ != nullptr) add_stage_histograms(snap, tracer_->stage_stats());

  // SLO accounting (absent unless objectives were configured). One family
  // is filled completely before the next snap.add — add may reallocate the
  // family vector, so references must not be held across it.
  if (slo_.enabled()) {
    const std::vector<SloTracker::VerbSnapshot> verbs = slo_.snapshot();
    obs::MetricFamily& objective =
        snap.add("lama_slo_objective_ns", "Per-verb latency objective (ns)",
                 "gauge");
    for (const SloTracker::VerbSnapshot& v : verbs) {
      objective.samples.push_back(
          {"", {{"verb", v.verb}}, static_cast<double>(v.threshold_ns)});
    }
    obs::MetricFamily& good = snap.add(
        "lama_slo_good_total", "Requests inside their verb's objective",
        "counter");
    for (const SloTracker::VerbSnapshot& v : verbs) {
      good.samples.push_back(
          {"", {{"verb", v.verb}}, static_cast<double>(v.good)});
    }
    obs::MetricFamily& bad = snap.add(
        "lama_slo_bad_total",
        "Requests that failed or overran their verb's objective", "counter");
    for (const SloTracker::VerbSnapshot& v : verbs) {
      bad.samples.push_back(
          {"", {{"verb", v.verb}}, static_cast<double>(v.bad)});
    }
    obs::MetricFamily& burn = snap.add(
        "lama_slo_burn_rate",
        "Error-budget burn rate (1.0 = exactly consuming the budget)",
        "gauge");
    for (const SloTracker::VerbSnapshot& v : verbs) {
      burn.samples.push_back(
          {"", {{"verb", v.verb}, {"window", "fast"}}, v.fast_burn});
      burn.samples.push_back(
          {"", {{"verb", v.verb}, {"window", "slow"}}, v.slow_burn});
    }
  }
  return snap;
}

std::string MappingService::stats_line() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      " uptime_s=%.3f cache_trees=%llu cache_plans=%llu cache_opts=%llu "
      "traces_started=%llu traces_assembled=%llu trace_dumps=%llu "
      "traces_tail=%llu",
      uptime_s(), static_cast<unsigned long long>(cache_.size()),
      static_cast<unsigned long long>(plan_cache_.size()),
      static_cast<unsigned long long>(opt_cache_.size()),
      static_cast<unsigned long long>(tracer_ ? tracer_->started() : 0),
      static_cast<unsigned long long>(tracer_ ? tracer_->assembled() : 0),
      static_cast<unsigned long long>(tracer_ ? tracer_->recorder().dumps()
                                              : 0),
      static_cast<unsigned long long>(tracer_ ? tracer_->tail_captured()
                                              : 0));
  std::string line = counters_.stats_line() + buf;
  // STATS is append-only: consumers parse by prefix, so the dur keys join
  // at the end and only when persistence is on.
  if (durability_ != nullptr) {
    const dur::StoreStats d = durability_->stats();
    char dur_buf[256];
    std::snprintf(
        dur_buf, sizeof(dur_buf),
        " dur_records=%llu dur_lag=%llu dur_fsyncs=%llu dur_errors=%llu "
        "dur_snapshots=%llu dur_recovered=%llu dur_torn=%llu dur_seq=%llu",
        static_cast<unsigned long long>(d.journal.appended),
        static_cast<unsigned long long>(durability_->journal_lag()),
        static_cast<unsigned long long>(d.journal.fsyncs),
        static_cast<unsigned long long>(d.journal.write_errors +
                                        d.journal.fsync_errors),
        static_cast<unsigned long long>(d.snapshots),
        static_cast<unsigned long long>(d.recovered_records),
        static_cast<unsigned long long>(d.torn_tails),
        static_cast<unsigned long long>(durability_->snapshot_seq()));
    line += dur_buf;
  }
  // The net keys append last, and only when the event-loop server is on.
  // With several shards attached the aggregate keys keep their single-shard
  // format and two csv keys expose the per-shard split.
  {
    const std::vector<const NetCounters*> shards = [this] {
      const std::lock_guard<std::mutex> lock(net_mu_);
      return net_;
    }();
    if (!shards.empty()) {
      NetStats agg;
      for (const NetCounters* shard : shards) agg.add(*shard);
      line += " " + agg.stats_line();
      if (shards.size() > 1) {
        line += " net_shards=" + std::to_string(shards.size());
        std::string reqs;
        std::string conns;
        for (const NetCounters* shard : shards) {
          if (!reqs.empty()) {
            reqs += ',';
            conns += ',';
          }
          const std::uint64_t r =
              shard->text_requests.load(std::memory_order_relaxed) +
              shard->binary_requests.load(std::memory_order_relaxed);
          reqs += std::to_string(r);
          conns += std::to_string(shard->active());
        }
        line += " net_shard_requests=" + reqs;
        line += " net_shard_conns=" + conns;
      }
    }
  }
  // SLO keys (per configured verb) append after everything else.
  if (slo_.enabled()) {
    for (const SloTracker::VerbSnapshot& v : slo_.snapshot()) {
      char slo_buf[192];
      std::snprintf(slo_buf, sizeof(slo_buf),
                    " slo_%s_good=%llu slo_%s_bad=%llu "
                    "slo_%s_fast_burn=%.3f slo_%s_slow_burn=%.3f",
                    v.verb.c_str(),
                    static_cast<unsigned long long>(v.good), v.verb.c_str(),
                    static_cast<unsigned long long>(v.bad), v.verb.c_str(),
                    v.fast_burn, v.verb.c_str(), v.slow_burn);
      line += slo_buf;
    }
  }
  return line;
}

std::string MappingService::render_stats() const {
  std::string out = counters_.render();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "service  uptime %.3fs, cached trees %llu, cached plans "
                "%llu, cached opts %llu, inflight %llu\n",
                uptime_s(),
                static_cast<unsigned long long>(cache_.size()),
                static_cast<unsigned long long>(plan_cache_.size()),
                static_cast<unsigned long long>(opt_cache_.size()),
                static_cast<unsigned long long>(
                    inflight_.load(std::memory_order_relaxed)));
  out += buf;
  if (tracer_ != nullptr) {
    std::snprintf(
        buf, sizeof(buf),
        "tracing  started %llu, assembled %llu, tail-captured %llu, dumps "
        "%llu, retained %llu (sample 1/%u)\n",
        static_cast<unsigned long long>(tracer_->started()),
        static_cast<unsigned long long>(tracer_->assembled()),
        static_cast<unsigned long long>(tracer_->tail_captured()),
        static_cast<unsigned long long>(tracer_->recorder().dumps()),
        static_cast<unsigned long long>(tracer_->recorder().size()),
        tracer_->config().sample_every);
    out += buf;
  }
  if (slo_.enabled()) {
    for (const SloTracker::VerbSnapshot& v : slo_.snapshot()) {
      std::snprintf(
          buf, sizeof(buf),
          "slo      %-9s %llu good / %llu bad (objective %llu ns @ %.4g), "
          "burn fast %.2f slow %.2f\n",
          v.verb.c_str(), static_cast<unsigned long long>(v.good),
          static_cast<unsigned long long>(v.bad),
          static_cast<unsigned long long>(v.threshold_ns), v.target * 100.0,
          v.fast_burn, v.slow_burn);
      out += buf;
    }
  }
  if (durability_ != nullptr) {
    const dur::StoreStats d = durability_->stats();
    std::snprintf(
        buf, sizeof(buf),
        "durable  journal %llu records (%llu lost), lag %llu, fsyncs %llu, "
        "snapshots %llu (seq %llu), recovered %llu, torn tails %llu\n",
        static_cast<unsigned long long>(d.journal.appended),
        static_cast<unsigned long long>(d.journal.write_errors +
                                        d.journal.fsync_errors),
        static_cast<unsigned long long>(durability_->journal_lag()),
        static_cast<unsigned long long>(d.journal.fsyncs),
        static_cast<unsigned long long>(d.snapshots),
        static_cast<unsigned long long>(durability_->snapshot_seq()),
        static_cast<unsigned long long>(d.recovered_records),
        static_cast<unsigned long long>(d.torn_tails));
    out += buf;
  }
  {
    const std::vector<const NetCounters*> shards = [this] {
      const std::lock_guard<std::mutex> lock(net_mu_);
      return net_;
    }();
    if (!shards.empty()) {
      NetStats agg;
      for (const NetCounters* shard : shards) agg.add(*shard);
      out += agg.render();
      if (shards.size() > 1) {
        for (std::size_t i = 0; i < shards.size(); ++i) {
          const NetCounters& s = *shards[i];
          std::snprintf(
              buf, sizeof(buf),
              "shard %-2zu requests %llu, conns %llu, bytes %llu in / %llu "
              "out\n",
              i,
              static_cast<unsigned long long>(
                  s.text_requests.load(std::memory_order_relaxed) +
                  s.binary_requests.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(s.active()),
              static_cast<unsigned long long>(
                  s.bytes_in.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  s.bytes_out.load(std::memory_order_relaxed)));
          out += buf;
        }
      }
    }
  }
  return out;
}

void MappingService::attach_net(const NetCounters* net) {
  const std::lock_guard<std::mutex> lock(net_mu_);
  if (net == nullptr) {
    net_.clear();
    return;
  }
  net_.push_back(net);
}

void MappingService::detach_net(const NetCounters* net) {
  const std::lock_guard<std::mutex> lock(net_mu_);
  net_.erase(std::remove(net_.begin(), net_.end(), net), net_.end());
}

const NetCounters* MappingService::net() const {
  const std::lock_guard<std::mutex> lock(net_mu_);
  return net_.empty() ? nullptr : net_.front();
}

std::size_t MappingService::net_shards() const {
  const std::lock_guard<std::mutex> lock(net_mu_);
  return net_.size();
}

}  // namespace lama::svc
