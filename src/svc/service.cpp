#include "svc/service.hpp"

#include <chrono>
#include <exception>

#include "cluster/alloc_serialize.hpp"
#include "lama/parallel_mapper.hpp"
#include "support/error.hpp"

namespace lama::svc {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void throw_if_past(std::uint64_t deadline_ns, const char* stage) {
  if (deadline_ns != 0 && now_ns() >= deadline_ns) {
    throw CancelledError(std::string("request deadline exceeded before ") +
                         stage);
  }
}

}  // namespace

MappingService::MappingService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_shards, config.shard_capacity, counters_),
      pool_(config.workers, config.max_queue) {}

InternedAlloc MappingService::intern(const Allocation& alloc,
                                     std::uint64_t epoch) {
  alloc.validate();
  auto copy = std::make_shared<const Allocation>(alloc);
  return InternedAlloc{copy, allocation_fingerprint(*copy), epoch};
}

InternedAlloc MappingService::intern_serialized(const std::string& text,
                                                std::uint64_t epoch) {
  return intern(parse_allocation(text), epoch);
}

void MappingService::set_fault_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(fault_hook_mu_);
  fault_hook_ = std::move(hook);
  has_fault_hook_.store(fault_hook_ != nullptr, std::memory_order_release);
}

void MappingService::run_fault_hook() {
  if (!has_fault_hook_.load(std::memory_order_acquire)) return;
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(fault_hook_mu_);
    hook = fault_hook_;
  }
  if (hook) hook();
}

std::size_t MappingService::invalidate(std::uint64_t fingerprint) {
  return cache_.invalidate_alloc(fingerprint);
}

std::size_t MappingService::corrupt_cached_trees_for_testing(
    std::uint64_t fingerprint) {
  return cache_.corrupt_for_testing(fingerprint);
}

MapResponse MappingService::shed_response() {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  counters_.shed.fetch_add(1, std::memory_order_relaxed);
  counters_.errors.fetch_add(1, std::memory_order_relaxed);
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  MapResponse response;
  response.busy = true;
  response.retry_after_ms = config_.retry_after_ms;
  response.error = "busy";
  return response;
}

// Shared request wrapper: admission control, deadline resolution, the
// exactly-once error/completed accounting, and end-to-end timing. `fn` runs
// the actual work and receives the resolved deadline.
MapResponse MappingService::run_counted(
    std::uint32_t timeout_ms,
    const std::function<MapResponse(std::uint64_t)>& fn) {
  if (config_.max_inflight > 0) {
    const std::size_t prev =
        inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (prev >= config_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      return shed_response();
    }
  } else {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
  }

  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  const std::uint32_t effective_ms =
      timeout_ms != 0 ? timeout_ms : config_.default_timeout_ms;
  const std::uint64_t deadline_ns =
      effective_ms != 0
          ? now_ns() + static_cast<std::uint64_t>(effective_ms) * 1'000'000
          : 0;

  MapResponse response;
  try {
    run_fault_hook();
    response = fn(deadline_ns);
  } catch (const CancelledError& e) {
    counters_.deadlined.fetch_add(1, std::memory_order_relaxed);
    response.error = e.what();
  } catch (const Error& e) {
    response.error = e.what();
  } catch (const std::exception& e) {
    // Never let an unexpected exception skip the accounting (or tear down a
    // worker thread): a failed request is a failed request.
    response.error = std::string("unexpected error: ") + e.what();
  }
  if (!response.ok()) {
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
  }
  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  counters_.total_ns.record_ns(elapsed_ns(start));
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  return response;
}

MapResponse MappingService::map(const MapRequest& request) {
  return run_counted(request.timeout_ms, [&](std::uint64_t deadline_ns) {
    return map_uncaught(request, deadline_ns);
  });
}

MappingResult MappingService::run_lama_walk(const Allocation& alloc,
                                            const ProcessLayout& layout,
                                            const MapOptions& opts,
                                            const MaximalTree* tree,
                                            std::size_t threads) {
  const auto start = std::chrono::steady_clock::now();
  MappingResult mapping;
  if (threads > 0) {
    counters_.parallel_maps.fetch_add(1, std::memory_order_relaxed);
    mapping = tree != nullptr
                  ? lama_map_parallel(alloc, layout, opts, *tree, threads)
                  : lama_map_parallel(alloc, layout, opts, threads);
    counters_.parallel_map_ns.record_ns(elapsed_ns(start));
  } else {
    mapping = tree != nullptr ? lama_map(alloc, layout, opts, *tree)
                              : lama_map(alloc, layout, opts);
  }
  // map_ns covers every lama walk, sequential or parallel;
  // parallel_map_ns above isolates the parallel ones.
  counters_.map_ns.record_ns(elapsed_ns(start));
  return mapping;
}

MapResponse MappingService::map_uncaught(const MapRequest& request,
                                         std::uint64_t deadline_ns) {
  if (!request.alloc.valid()) {
    throw MappingError("request carries no interned allocation");
  }
  const Allocation& client_alloc = *request.alloc.alloc;
  const auto [name, args] = split_rmaps_spec(request.spec);

  MapOptions opts = request.opts;
  if (opts.deadline_ns == 0) opts.deadline_ns = deadline_ns;
  throw_if_past(opts.deadline_ns, "mapping started");

  MapResponse response;
  // The allocation the mapping ran against: the cached tree's private copy
  // on the cached path (its pruned trees point into that copy), otherwise
  // the client's interned allocation. Binding must use the same one.
  const Allocation* mapped_alloc = &client_alloc;
  std::shared_ptr<const CachedTree> cached;  // keeps the tree alive

  if (name == "lama") {
    // Cached fast path: resolve the spec to a canonical layout exactly as
    // the registry's lama component would, then reuse the shared tree.
    const ProcessLayout layout =
        ProcessLayout::parse(args.empty() ? kLamaDefaultLayout : args);
    const TreeKey key{request.alloc.fingerprint, layout.to_string()};
    counters_.cached.fetch_add(1, std::memory_order_relaxed);
    ShardedTreeCache::Lookup lookup =
        cache_.get_or_build(key, client_alloc, layout);
    cached = std::move(lookup.tree);
    response.cache_hit = lookup.hit;
    response.coalesced = lookup.coalesced;

    if (config_.verify_trees && lookup.hit && !cached->verify(key)) {
      // Integrity re-validation failed: never map from a tree whose seal
      // does not match its key. Drop it and degrade to the uncached path —
      // a fresh tree built from the client's own allocation.
      counters_.integrity_failures.fetch_add(1, std::memory_order_relaxed);
      counters_.degraded.fetch_add(1, std::memory_order_relaxed);
      cache_.erase(key);
      cached.reset();
      response.cache_hit = false;
      response.degraded = true;
      response.mapping = run_lama_walk(client_alloc, layout, opts, nullptr,
                                       request.map_threads);
    } else {
      mapped_alloc = &cached->alloc();
      throw_if_past(opts.deadline_ns, "the mapping walk");
      response.mapping =
          run_lama_walk(cached->alloc(), cached->layout(), opts,
                        &cached->tree(), request.map_threads);
    }
  } else {
    counters_.uncached.fetch_add(1, std::memory_order_relaxed);
    const auto map_start = std::chrono::steady_clock::now();
    response.mapping = registry_.map(request.spec, client_alloc, opts);
    counters_.map_ns.record_ns(elapsed_ns(map_start));
  }

  if (request.binding.has_value()) {
    throw_if_past(opts.deadline_ns, "the binding step");
    response.binding =
        bind_processes(*mapped_alloc, response.mapping, *request.binding);
  }
  return response;
}

MapResponse MappingService::remap(const RemapRequest& request) {
  return run_counted(request.timeout_ms, [&](std::uint64_t deadline_ns) {
    if (!request.alloc.valid()) {
      throw MappingError("remap carries no interned allocation");
    }
    if (request.previous == nullptr) {
      throw MappingError("remap carries no previous mapping");
    }
    counters_.remaps.fetch_add(1, std::memory_order_relaxed);
    MapOptions opts = request.opts;
    if (opts.deadline_ns == 0) opts.deadline_ns = deadline_ns;
    throw_if_past(opts.deadline_ns, "remap started");

    const auto map_start = std::chrono::steady_clock::now();
    RemapResult remapped = lama_remap(*request.alloc.alloc, request.layout,
                                      opts, *request.previous);
    counters_.map_ns.record_ns(elapsed_ns(map_start));

    MapResponse response;
    response.mapping = std::move(remapped.mapping);
    response.displaced = std::move(remapped.displaced);
    response.surviving = remapped.surviving;
    response.degraded = remapped.degraded_shared;
    return response;
  });
}

std::vector<MapResponse> MappingService::map_batch(
    const std::vector<MapRequest>& requests) {
  counters_.batched.fetch_add(1, std::memory_order_relaxed);
  counters_.batch_jobs.fetch_add(requests.size(), std::memory_order_relaxed);
  std::vector<MapResponse> responses(requests.size());
  if (pool_.num_threads() == 0) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      responses[i] = map(requests[i]);
    }
    return responses;
  }
  // Deadlines are resolved at admission, not at execution: a request whose
  // budget expires while queued is cancelled by the first deadline poll.
  std::vector<std::optional<std::future<MapResponse>>> pending;
  pending.reserve(requests.size());
  for (const MapRequest& request : requests) {
    MapRequest admitted = request;
    const std::uint32_t effective_ms = admitted.timeout_ms != 0
                                           ? admitted.timeout_ms
                                           : config_.default_timeout_ms;
    if (admitted.opts.deadline_ns == 0 && effective_ms != 0) {
      admitted.opts.deadline_ns =
          now_ns() + static_cast<std::uint64_t>(effective_ms) * 1'000'000;
    }
    pending.push_back(pool_.try_async(
        [this, admitted = std::move(admitted)] { return map(admitted); }));
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    // A refused slot (bounded queue full) sheds with the busy response.
    responses[i] = pending[i].has_value() ? pending[i]->get()
                                          : shed_response();
  }
  return responses;
}

}  // namespace lama::svc
