// lama::opt — communication-aware placement optimization (docs/optimize.md).
// Given an allocation and a communication matrix, searches the placement
// space for a mapping that minimizes modeled communication cost: a seed set
// of diverse candidates (candidates.hpp — canonical layouts, hierarchical
// multisection, capped packings) is evaluated in parallel, the winner is
// refined by greedy pairwise rank exchange (tmatch/reorder.hpp), and the
// result is compared against the best *canonical layout* — the placement a
// caller could have obtained without a matrix — so every response carries
// its own baseline.
//
// The objective J is not the evaluator's total cost alone: uniform traffic
// (all-to-all) is invariant under rank permutation, so total cost cannot
// separate distribution shapes. J adds a congestion term — the serialized
// drain time of the hottest NIC — which makes the node-count axis of the
// capped-pack family meaningful (few nodes: cheap intra-node traffic but a
// saturated NIC; many nodes: cool NICs but everything crosses the network).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "cluster/cluster.hpp"
#include "lama/mapping.hpp"
#include "sim/distance_model.hpp"
#include "tmatch/comm_matrix.hpp"

namespace lama::opt {

// Search budget. Part of the service's cache key (key()), so deadline —
// a wall-clock property of one request, not of the answer — is excluded.
struct OptBudget {
  // Seed candidates to evaluate. Truncates the candidate list tail, never
  // below the canonical head — the static baseline is always priced.
  std::size_t max_candidates = 16;
  // Pairwise-exchange refinement passes over the winning seed (0 = none).
  std::size_t refine_passes = 8;
  // Cooperative deadline in steady-clock nanoseconds since epoch (0 = none);
  // checked between phases and per candidate, throws CancelledError.
  std::uint64_t deadline_ns = 0;

  // Content hash of the budget knobs that shape the answer.
  [[nodiscard]] std::uint64_t key() const;
};

struct OptimizeResult {
  MappingResult mapping;     // the optimized placement
  std::string source;        // winning seed ("layout:...", "multisection",
                             // "pack:<k>"), "+refined" appended when
                             // refinement improved it
  double cost_ns = 0.0;      // J of the final placement
  double seed_cost_ns = 0.0;  // J of the winning seed before refinement

  // The static baseline: best canonical layout under the same objective.
  double best_layout_cost_ns = 0.0;
  std::string best_layout;

  std::size_t candidates_evaluated = 0;  // feasible seeds priced
  std::size_t refine_swaps = 0;
  std::size_t refine_passes = 0;

  // Fraction of the static baseline's cost eliminated (0 when not beaten).
  [[nodiscard]] double improvement() const {
    return best_layout_cost_ns <= 0.0
               ? 0.0
               : (best_layout_cost_ns - cost_ns) / best_layout_cost_ns;
  }
};

// Runs `count` index-tagged tasks, possibly concurrently; must invoke
// fn(0..count-1) exactly once each and return only when all are done. The
// service backs this with its worker pool; null means run inline.
using Parallel =
    std::function<void(std::size_t count,
                       const std::function<void(std::size_t)>& fn)>;

// The objective J: evaluator total cost plus the hottest NIC's serialized
// drain time under the model's network bandwidth. Exposed so benches and
// tests price baselines with the exact objective the optimizer minimizes.
double placement_cost_ns(const Allocation& alloc, const MappingResult& mapping,
                         const CommMatrix& matrix, const DistanceModel& model);

// Optimizes the placement of matrix.np() processes on `alloc`. Deterministic
// for fixed inputs and budget regardless of how `parallel` schedules the
// candidate evaluations (results land in per-index slots; the winner is the
// lowest cost at the lowest index). Throws MappingError when no seed is
// feasible and CancelledError past the deadline.
OptimizeResult optimize_placement(const Allocation& alloc,
                                  const CommMatrix& matrix,
                                  const OptBudget& budget,
                                  const DistanceModel& model,
                                  const Parallel& parallel = nullptr);

}  // namespace lama::opt
