// Seed candidates for the placement optimizer (optimizer.hpp). The search
// space of §IV's layouts is 9! orderings; exhausting it per request is the
// autotuner's offline job, not a service verb's. Instead the optimizer
// evaluates a small, diverse seed set and refines the winner:
//   * canonical layouts — a curated spread from full scatter to full pack,
//     the static placements a caller could have asked for by name. The best
//     of these is also the baseline an optimized placement must beat;
//   * hierarchical multisection — the communication matrix partitioned down
//     the hardware tree (tmatch/treematch.hpp, after Schulz & Traeff's
//     multisection formulation);
//   * capped packings — the pack layout under an npernode cap for each
//     feasible node count, sweeping the shape axis (few hot nodes with
//     cheap intra-node traffic vs many cool NICs) that no single canonical
//     layout covers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "lama/mapper.hpp"
#include "tmatch/comm_matrix.hpp"

namespace lama::opt {

// One seed of the search: how to produce a mapping for np processes.
struct CandidateSpec {
  // "layout:<string>", "multisection", or "pack:<k>" — stable names that
  // appear in OPTIMIZE responses, traces, and bench output.
  std::string source;
  // True for the canonical-layout seeds that define the static baseline.
  bool canonical = false;

  enum class Kind { kLayout, kMultisection, kCappedPack } kind = Kind::kLayout;
  std::string layout;        // kLayout / kCappedPack
  std::size_t npernode = 0;  // kCappedPack
};

// The canonical layout strings the optimizer seeds from (and the baseline
// set benches compare against): the paper's default scbnh, full pack and
// full scatter, and a spread of intermediate permutations.
const std::vector<std::string>& canonical_layouts();

// Builds the seed list for `np` processes on `alloc`, in deterministic
// order: canonical layouts, multisection, then the capped-pack family (at
// most `max_pack_shapes` node counts, spread evenly across the feasible
// range). `max_candidates` truncates the tail, never the canonical head.
std::vector<CandidateSpec> make_candidates(const Allocation& alloc,
                                           std::size_t np,
                                           std::size_t max_candidates,
                                           std::size_t max_pack_shapes = 8);

// Materializes one candidate: runs the lama walk / multisection partitioner
// for `spec`. Throws on infeasible candidates (e.g. multisection beyond
// capacity) — callers treat that as "seed not available", not an error.
MappingResult realize_candidate(const Allocation& alloc, const CommMatrix& matrix,
                                std::size_t np, const CandidateSpec& spec);

}  // namespace lama::opt
