#include "opt/optimizer.hpp"

#include <chrono>
#include <exception>
#include <limits>
#include <vector>

#include "obs/tracer.hpp"
#include "opt/candidates.hpp"
#include "sim/evaluator.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "tmatch/reorder.hpp"

namespace lama::opt {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void check_deadline(std::uint64_t deadline_ns) {
  if (deadline_ns != 0 && steady_now_ns() >= deadline_ns) {
    throw CancelledError("optimize budget expired");
  }
}

// The evaluator prices TrafficPatterns; rebuild one from the accumulated
// matrix (one message per communicating pair — the matrix already folded
// direction and multiplicity, so total volume is preserved).
TrafficPattern pattern_from_matrix(const CommMatrix& matrix) {
  TrafficPattern p{"matrix", matrix.np(), {}};
  for (int a = 0; a < matrix.np(); ++a) {
    for (int b = a + 1; b < matrix.np(); ++b) {
      const double bytes = matrix.at(a, b);
      if (bytes <= 0.0) continue;
      p.messages.push_back({a, b, static_cast<std::size_t>(bytes)});
    }
  }
  return p;
}

struct Priced {
  bool feasible = false;
  double cost_ns = std::numeric_limits<double>::infinity();
  MappingResult mapping;
};

}  // namespace

std::uint64_t OptBudget::key() const {
  std::uint64_t h = fnv1a64("opt-budget");
  h = hash_combine(h, static_cast<std::uint64_t>(max_candidates));
  h = hash_combine(h, static_cast<std::uint64_t>(refine_passes));
  return h;
}

double placement_cost_ns(const Allocation& alloc, const MappingResult& mapping,
                         const CommMatrix& matrix, const DistanceModel& model) {
  const TrafficPattern pattern = pattern_from_matrix(matrix);
  const CostReport report = evaluate_mapping(alloc, mapping, pattern, model);
  // Congestion term: the hottest NIC drains its bytes serially at network
  // bandwidth, weighted by the fan-in a commodity node aims at one
  // interface. Without this term, rank-permutation-invariant traffic
  // (uniform all-to-all) cannot distinguish distribution shapes — the
  // evaluator's total is minimized by the most skewed packing, which
  // saturates one NIC. The weight is a calibration constant in the spirit
  // of the distance model's link costs: its magnitude (not its exact
  // value) is what makes NIC pressure comparable to per-message cost.
  constexpr double kCongestionWeight = 8.0;
  const double drain_ns = static_cast<double>(report.max_nic_bytes) /
                          model.network_cost().bandwidth_gb_s;
  return report.total_ns + kCongestionWeight * drain_ns;
}

OptimizeResult optimize_placement(const Allocation& alloc,
                                  const CommMatrix& matrix,
                                  const OptBudget& budget,
                                  const DistanceModel& model,
                                  const Parallel& parallel) {
  const std::size_t np = static_cast<std::size_t>(matrix.np());
  const std::vector<CandidateSpec> specs =
      make_candidates(alloc, np, budget.max_candidates);
  if (specs.empty()) throw MappingError("no placement candidates for np");
  check_deadline(budget.deadline_ns);

  // Phase 1: price every seed. Each task writes only its own slot, so any
  // execution order yields the same vector; infeasible seeds (multisection
  // beyond capacity, a cap too tight for np) stay infinite-cost. Deadline
  // expiry inside a task must not be mistaken for infeasibility — it is
  // re-checked (and throws) on the coordinating thread after the join.
  std::vector<Priced> priced(specs.size());
  auto eval_one = [&](std::size_t i) {
    try {
      MappingResult m = realize_candidate(alloc, matrix, np, specs[i]);
      const double cost = placement_cost_ns(alloc, m, matrix, model);
      priced[i].mapping = std::move(m);
      priced[i].cost_ns = cost;
      priced[i].feasible = true;
    } catch (const Error&) {
      // Seed unavailable on this allocation; leave the slot infeasible.
    }
    check_deadline(budget.deadline_ns);
  };
  if (parallel) {
    parallel(specs.size(), [&](std::size_t i) {
      try {
        eval_one(i);
      } catch (const CancelledError&) {
        // Swallowed here so one expired task cannot tear down the pool;
        // rethrown below once every slot has settled.
      }
    });
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const obs::SpanScope span(obs::Stage::kOptCandidate,
                                static_cast<std::uint32_t>(i));
      eval_one(i);
    }
  }
  check_deadline(budget.deadline_ns);

  // Phase 2: deterministic winner — lowest cost, earliest index on ties.
  std::size_t best = specs.size();
  std::size_t best_canonical = specs.size();
  std::size_t evaluated = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!priced[i].feasible) continue;
    ++evaluated;
    if (best == specs.size() || priced[i].cost_ns < priced[best].cost_ns) {
      best = i;
    }
    if (specs[i].canonical &&
        (best_canonical == specs.size() ||
         priced[i].cost_ns < priced[best_canonical].cost_ns)) {
      best_canonical = i;
    }
  }
  if (best == specs.size()) {
    throw MappingError("no feasible placement candidate");
  }

  OptimizeResult result;
  result.source = specs[best].source;
  result.seed_cost_ns = priced[best].cost_ns;
  result.cost_ns = priced[best].cost_ns;
  result.candidates_evaluated = evaluated;
  if (best_canonical != specs.size()) {
    result.best_layout = specs[best_canonical].layout;
    result.best_layout_cost_ns = priced[best_canonical].cost_ns;
  }
  result.mapping = std::move(priced[best].mapping);

  // Phase 3: refine the winner by pairwise rank exchange. The reorderer
  // minimizes evaluator cost, not J; accept its permutation only if J —
  // the objective the caller sees — actually improved.
  if (budget.refine_passes > 0 && np > 1) {
    check_deadline(budget.deadline_ns);
    const obs::SpanScope refine_span(obs::Stage::kOptRefine);
    const ReorderResult refined = reorder_ranks(alloc, result.mapping, matrix,
                                                model, budget.refine_passes);
    result.refine_passes = refined.passes;
    if (refined.swaps_applied > 0) {
      const double refined_cost =
          placement_cost_ns(alloc, refined.mapping, matrix, model);
      if (refined_cost < result.cost_ns) {
        result.cost_ns = refined_cost;
        result.refine_swaps = refined.swaps_applied;
        result.mapping = refined.mapping;
        result.source += "+refined";
      }
    }
  }
  check_deadline(budget.deadline_ns);
  return result;
}

}  // namespace lama::opt
