#include "opt/candidates.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "tmatch/treematch.hpp"

namespace lama::opt {

const std::vector<std::string>& canonical_layouts() {
  // Innermost letter varies fastest: "scbnh" is the paper's default scatter,
  // "hcsbn" the within-node pack, "nbsch" the by-node scatter. The full
  // 9-letter pack/scatter close the extremes; the rest sample the middle.
  static const std::vector<std::string> kLayouts = {
      "scbnh",                                // paper default (Figure 2)
      "hcsbn",                                // pack threads first, nodes last
      "nbsch",                                // scatter across nodes first
      "cbsnh",                                // cores fastest, threads last
      "schbn",                                // sockets fastest
      "bnsch",                                // boards then nodes fastest
      ProcessLayout::full_pack().to_string(),     // classic by-slot
      ProcessLayout::full_scatter().to_string(),  // classic by-node
  };
  return kLayouts;
}

std::vector<CandidateSpec> make_candidates(const Allocation& alloc,
                                           std::size_t np,
                                           std::size_t max_candidates,
                                           std::size_t max_pack_shapes) {
  std::vector<CandidateSpec> specs;
  for (const std::string& layout : canonical_layouts()) {
    CandidateSpec spec;
    spec.source = "layout:" + layout;
    spec.canonical = true;
    spec.kind = CandidateSpec::Kind::kLayout;
    spec.layout = layout;
    specs.push_back(std::move(spec));
  }

  {
    CandidateSpec spec;
    spec.source = "multisection";
    spec.kind = CandidateSpec::Kind::kMultisection;
    specs.push_back(std::move(spec));
  }

  // The shape family: pack onto exactly k nodes (balanced by an npernode
  // cap), k swept from the fewest nodes that can host np up to all of them.
  // Canonical layouts only ever produce the two extremes of this axis.
  const std::size_t nodes = alloc.num_nodes();
  if (nodes > 1 && np > 0) {
    std::size_t per_node_pus = 0;
    for (std::size_t n = 0; n < nodes; ++n) {
      per_node_pus = std::max(per_node_pus,
                              alloc.node(n).topo.online_pus().count());
    }
    const std::size_t min_nodes =
        per_node_pus == 0 ? nodes : (np + per_node_pus - 1) / per_node_pus;
    const std::size_t lo = std::max<std::size_t>(1, min_nodes);
    if (lo <= nodes) {
      const std::size_t span = nodes - lo + 1;
      const std::size_t shapes = std::min(span, max_pack_shapes);
      for (std::size_t i = 0; i < shapes; ++i) {
        // Spread k evenly across [lo, nodes]; first and last always in.
        const std::size_t k =
            shapes == 1 ? lo : lo + (span - 1) * i / (shapes - 1);
        CandidateSpec spec;
        spec.source = "pack:" + std::to_string(k);
        spec.kind = CandidateSpec::Kind::kCappedPack;
        spec.layout = "hcsbn";
        spec.npernode = (np + k - 1) / k;
        specs.push_back(std::move(spec));
      }
    }
  }

  // Truncate the tail only: the canonical head always survives, so every
  // optimization — however small its budget — prices the full static
  // baseline it must beat.
  const std::size_t floor = canonical_layouts().size();
  if (max_candidates > 0 && specs.size() > std::max(max_candidates, floor)) {
    specs.resize(std::max(max_candidates, floor));
  }
  return specs;
}

MappingResult realize_candidate(const Allocation& alloc,
                                const CommMatrix& matrix, std::size_t np,
                                const CandidateSpec& spec) {
  MapOptions opts;
  opts.np = np;
  opts.allow_oversubscribe = true;
  switch (spec.kind) {
    case CandidateSpec::Kind::kLayout:
      return lama_map(alloc, spec.layout, opts);
    case CandidateSpec::Kind::kMultisection: {
      // The partitioner does not wrap around; beyond capacity the seed is
      // simply unavailable (OversubscribeError propagates to the caller).
      MapOptions ms_opts;
      ms_opts.np = np;
      ms_opts.allow_oversubscribe = false;
      return map_treematch(alloc, matrix, ms_opts);
    }
    case CandidateSpec::Kind::kCappedPack: {
      opts.set_cap(ResourceType::kNode, spec.npernode);
      return lama_map(alloc, spec.layout, opts);
    }
  }
  throw MappingError("unknown candidate kind");
}

}  // namespace lama::opt
