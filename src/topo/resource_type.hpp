// Registry of hardware resource levels — the paper's Table I. The enum order
// is the canonical containment chain used by every tree in this library:
// Node contains Board contains Socket ... contains HwThread. Process-layout
// strings are permutations of these levels' abbreviations; iteration order is
// independent of containment order.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

namespace lama {

enum class ResourceType : int {
  kNode = 0,   // server node (abbrev "n")
  kBoard,      // motherboard ("b")
  kSocket,     // processor socket ("s")
  kNuma,       // NUMA memory locality ("N")
  kL3,         // L3 cache ("L3")
  kL2,         // L2 cache ("L2")
  kL1,         // L1 cache ("L1")
  kCore,       // processor core ("c")
  kHwThread,   // hardware thread ("h")
};

inline constexpr int kNumResourceTypes = 9;

// All types in canonical containment order, outermost first.
const std::array<ResourceType, kNumResourceTypes>& all_resource_types();

// Depth in the canonical chain: kNode -> 0 ... kHwThread -> 8.
constexpr int canonical_depth(ResourceType t) { return static_cast<int>(t); }

ResourceType resource_from_depth(int depth);

// Process-layout abbreviation from Table I ("n", "b", "s", "N", "L3", ...).
std::string_view resource_abbrev(ResourceType t);

// Human-readable name ("Node", "Processor Socket", ...).
std::string_view resource_name(ResourceType t);

// Reverse lookup; abbreviations are case-sensitive ('n' is Node, 'N' NUMA).
std::optional<ResourceType> resource_from_abbrev(std::string_view abbrev);

// Synthetic-description keyword ("node", "board", "socket", "numa", "l3",
// "l2", "l1", "core", "pu"); reverse lookup accepts aliases
// ("hwthread"/"thread" for pu).
std::string_view resource_keyword(ResourceType t);
std::optional<ResourceType> resource_from_keyword(std::string_view keyword);

}  // namespace lama
