#include "topo/random.hpp"

#include <functional>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace lama {

NodeTopology random_topology(const RandomTopologyOptions& options,
                             std::string name) {
  LAMA_ASSERT(options.max_fanout >= 1);
  SplitMix64 rng(options.seed);

  // Decide which levels this node has, in canonical order.
  std::vector<ResourceType> levels;
  for (ResourceType t :
       {ResourceType::kBoard, ResourceType::kSocket, ResourceType::kNuma,
        ResourceType::kL3, ResourceType::kL2, ResourceType::kL1}) {
    const bool optional = t != ResourceType::kSocket;  // always have sockets
    if (!optional || rng.next_bool(options.level_presence)) {
      levels.push_back(t);
    }
  }
  levels.push_back(ResourceType::kCore);
  if (options.smt) levels.push_back(ResourceType::kHwThread);

  NodeTopology::Builder builder(std::move(name));
  std::function<void(std::size_t)> grow = [&](std::size_t depth) {
    if (depth == levels.size()) return;
    // Mid levels (not core/pu) may be skipped under this parent.
    const bool is_leaf_chain = depth + 2 > levels.size();
    if (!is_leaf_chain && rng.next_bool(options.subtree_skip)) {
      grow(depth + 1);
      return;
    }
    const int fanout = 1 + static_cast<int>(rng.next_below(
                               static_cast<std::uint64_t>(options.max_fanout)));
    for (int i = 0; i < fanout; ++i) {
      builder.begin(levels[depth]);
      if (options.disable_fraction > 0.0 &&
          rng.next_bool(options.disable_fraction)) {
        builder.disable();
      }
      grow(depth + 1);
      builder.end();
    }
  };
  grow(0);

  NodeTopology topo = builder.build();
  // A draw that off-lined everything degrades to an unrestricted node,
  // keeping the at-least-one-online-PU guarantee.
  if (topo.online_pus().empty()) topo.clear_restrictions();
  return topo;
}

}  // namespace lama
