#include "topo/object.hpp"

#include "support/error.hpp"

namespace lama {

const TopoObject* TopoObject::ancestor(ResourceType t) const {
  const TopoObject* obj = this;
  while (obj != nullptr) {
    if (obj->type() == t) return obj;
    obj = obj->parent_;
  }
  return nullptr;
}

TopoObject& TopoObject::add_child(std::unique_ptr<TopoObject> child) {
  LAMA_ASSERT(child != nullptr);
  LAMA_ASSERT(canonical_depth(child->type()) > canonical_depth(type_));
  child->parent_ = this;
  child->sibling_index_ = static_cast<int>(children_.size());
  children_.push_back(std::move(child));
  return *children_.back();
}

}  // namespace lama
