// Canned node topologies used by examples, tests, and benchmarks. Shapes are
// modeled on real machines of the paper's era and on the paper's Figure 2.
#pragma once

#include "topo/node_topology.hpp"

namespace lama::presets {

// The Figure 2 node: 2 sockets x 4 cores x 2 hardware threads (16 PUs).
NodeTopology figure2_node(std::string name = "node");

// Commodity dual-socket NUMA server: 2 sockets, 2 NUMA domains per socket,
// shared L3 per NUMA domain, 4 cores per L3, private L2/L1, 2 threads/core
// (32 PUs).
NodeTopology dual_socket_numa(std::string name = "node");

// Large SMP-style box: 4 boards x 2 sockets x 8 cores, no SMT (64 PUs).
NodeTopology quad_board_smp(std::string name = "node");

// Small node without hardware threads: 2 sockets x 4 cores (8 PUs), the
// "hardware threads disabled" case from the paper.
NodeTopology no_smt_node(std::string name = "node");

// Irregular node: socket 0 has 6 cores, socket 1 has 2 cores (heterogeneity
// inside one node).
NodeTopology lopsided_node(std::string name = "node");

}  // namespace lama::presets
