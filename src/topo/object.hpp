// A single vertex in a hardware-topology tree: one socket, one cache, one
// core, ... Owned exclusively by its parent (the NodeTopology owns the root).
#pragma once

#include <memory>
#include <vector>

#include "support/bitmap.hpp"
#include "topo/resource_type.hpp"

namespace lama {

class TopoObject {
 public:
  TopoObject(ResourceType type, int os_index)
      : type_(type), os_index_(os_index) {}

  TopoObject(const TopoObject&) = delete;
  TopoObject& operator=(const TopoObject&) = delete;

  [[nodiscard]] ResourceType type() const { return type_; }

  // Index among siblings under the same parent (0-based, logical).
  [[nodiscard]] int sibling_index() const { return sibling_index_; }

  // Index among all objects of this type within the node (0-based, logical).
  [[nodiscard]] int level_index() const { return level_index_; }

  // Platform-assigned identifier; may be non-contiguous across the node.
  [[nodiscard]] int os_index() const { return os_index_; }

  // Set of leaf processing units (node-local indices) spanned by this object,
  // ignoring availability restrictions.
  [[nodiscard]] const Bitmap& cpuset() const { return cpuset_; }

  // True when the scheduler/OS has off-lined this object specifically.
  // Availability of a PU additionally requires every ancestor to be enabled.
  [[nodiscard]] bool disabled() const { return disabled_; }

  [[nodiscard]] const TopoObject* parent() const { return parent_; }
  [[nodiscard]] std::size_t num_children() const { return children_.size(); }
  [[nodiscard]] const TopoObject& child(std::size_t i) const {
    return *children_[i];
  }
  [[nodiscard]] bool is_leaf() const { return children_.empty(); }

  // Nearest ancestor (possibly this object) of the given type, or nullptr.
  [[nodiscard]] const TopoObject* ancestor(ResourceType t) const;

  // --- mutation (used by builders and NodeTopology only) ---
  TopoObject& add_child(std::unique_ptr<TopoObject> child);
  void set_disabled(bool disabled) { disabled_ = disabled; }
  void set_sibling_index(int i) { sibling_index_ = i; }
  void set_level_index(int i) { level_index_ = i; }
  void set_cpuset(Bitmap b) { cpuset_ = std::move(b); }
  [[nodiscard]] TopoObject& mutable_child(std::size_t i) {
    return *children_[i];
  }

 private:
  ResourceType type_;
  int sibling_index_ = 0;
  int level_index_ = 0;
  int os_index_ = 0;
  Bitmap cpuset_;
  bool disabled_ = false;
  TopoObject* parent_ = nullptr;
  std::vector<std::unique_ptr<TopoObject>> children_;
};

}  // namespace lama
