#include "topo/resource_type.hpp"

#include "support/error.hpp"

namespace lama {

const std::array<ResourceType, kNumResourceTypes>& all_resource_types() {
  static const std::array<ResourceType, kNumResourceTypes> kAll = {
      ResourceType::kNode, ResourceType::kBoard,  ResourceType::kSocket,
      ResourceType::kNuma, ResourceType::kL3,     ResourceType::kL2,
      ResourceType::kL1,   ResourceType::kCore,   ResourceType::kHwThread,
  };
  return kAll;
}

ResourceType resource_from_depth(int depth) {
  LAMA_ASSERT(depth >= 0 && depth < kNumResourceTypes);
  return static_cast<ResourceType>(depth);
}

std::string_view resource_abbrev(ResourceType t) {
  switch (t) {
    case ResourceType::kNode: return "n";
    case ResourceType::kBoard: return "b";
    case ResourceType::kSocket: return "s";
    case ResourceType::kNuma: return "N";
    case ResourceType::kL3: return "L3";
    case ResourceType::kL2: return "L2";
    case ResourceType::kL1: return "L1";
    case ResourceType::kCore: return "c";
    case ResourceType::kHwThread: return "h";
  }
  throw InternalError("unknown resource type");
}

std::string_view resource_name(ResourceType t) {
  switch (t) {
    case ResourceType::kNode: return "Node";
    case ResourceType::kBoard: return "Board";
    case ResourceType::kSocket: return "Processor Socket";
    case ResourceType::kNuma: return "NUMA Node";
    case ResourceType::kL3: return "L3 Cache";
    case ResourceType::kL2: return "L2 Cache";
    case ResourceType::kL1: return "L1 Cache";
    case ResourceType::kCore: return "Processor Core";
    case ResourceType::kHwThread: return "Hardware Thread";
  }
  throw InternalError("unknown resource type");
}

std::optional<ResourceType> resource_from_abbrev(std::string_view abbrev) {
  for (ResourceType t : all_resource_types()) {
    if (resource_abbrev(t) == abbrev) return t;
  }
  return std::nullopt;
}

std::string_view resource_keyword(ResourceType t) {
  switch (t) {
    case ResourceType::kNode: return "node";
    case ResourceType::kBoard: return "board";
    case ResourceType::kSocket: return "socket";
    case ResourceType::kNuma: return "numa";
    case ResourceType::kL3: return "l3";
    case ResourceType::kL2: return "l2";
    case ResourceType::kL1: return "l1";
    case ResourceType::kCore: return "core";
    case ResourceType::kHwThread: return "pu";
  }
  throw InternalError("unknown resource type");
}

std::optional<ResourceType> resource_from_keyword(std::string_view keyword) {
  for (ResourceType t : all_resource_types()) {
    if (resource_keyword(t) == keyword) return t;
  }
  if (keyword == "hwthread" || keyword == "thread" || keyword == "ht") {
    return ResourceType::kHwThread;
  }
  if (keyword == "machine") return ResourceType::kNode;
  return std::nullopt;
}

}  // namespace lama
