#include "topo/node_topology.hpp"

#include <functional>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace lama {

namespace {

// Deep copy preserving structure, os indices, and disabled flags.
std::unique_ptr<TopoObject> clone_subtree(const TopoObject& src) {
  auto copy = std::make_unique<TopoObject>(src.type(), src.os_index());
  copy->set_disabled(src.disabled());
  for (std::size_t i = 0; i < src.num_children(); ++i) {
    copy->add_child(clone_subtree(src.child(i)));
  }
  return copy;
}

}  // namespace

NodeTopology& NodeTopology::operator=(const NodeTopology& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  root_ = clone_subtree(*other.root_);
  finalize();
  return *this;
}

NodeTopology NodeTopology::synthetic(const std::string& description,
                                     std::string name) {
  // Parse `level:count` tokens, validating canonical order.
  std::vector<std::pair<ResourceType, std::size_t>> spec;
  int last_depth = canonical_depth(ResourceType::kNode);
  for (const std::string& token : split_ws(description)) {
    const auto colon = token.find(':');
    if (colon == std::string::npos) {
      throw ParseError("synthetic token missing ':': '" + token + "'");
    }
    const std::string keyword = to_lower(token.substr(0, colon));
    const auto type = resource_from_keyword(keyword);
    if (!type) {
      throw ParseError("unknown synthetic level: '" + keyword + "'");
    }
    if (*type == ResourceType::kNode) {
      throw ParseError("synthetic description must not include 'node'");
    }
    const std::size_t count =
        parse_size(token.substr(colon + 1), "synthetic level count");
    if (count == 0) {
      throw ParseError("synthetic level count must be positive: '" + token +
                       "'");
    }
    if (canonical_depth(*type) <= last_depth) {
      throw ParseError(
          "synthetic levels must follow canonical containment order "
          "(board > socket > numa > l3 > l2 > l1 > core > pu): '" +
          token + "'");
    }
    last_depth = canonical_depth(*type);
    spec.emplace_back(*type, count);
  }
  if (spec.empty()) {
    throw ParseError("empty synthetic description");
  }
  const ResourceType leaf = spec.back().first;
  if (leaf != ResourceType::kCore && leaf != ResourceType::kHwThread) {
    throw ParseError(
        "synthetic description must end with a processing level (core or "
        "pu)");
  }

  NodeTopology topo;
  topo.name_ = std::move(name);
  topo.root_ = std::make_unique<TopoObject>(ResourceType::kNode, 0);

  // Expand the uniform tree; os indices count objects per level.
  std::vector<int> next_os(spec.size(), 0);
  std::function<void(TopoObject&, std::size_t)> expand =
      [&](TopoObject& parent, std::size_t depth) {
        if (depth == spec.size()) return;
        for (std::size_t i = 0; i < spec[depth].second; ++i) {
          TopoObject& child = parent.add_child(std::make_unique<TopoObject>(
              spec[depth].first, next_os[depth]++));
          expand(child, depth + 1);
        }
      };
  expand(*topo.root_, 0);
  topo.finalize();
  return topo;
}

void NodeTopology::finalize() {
  LAMA_ASSERT(root_ != nullptr);
  levels_.clear();
  leaves_.clear();

  // Collect present levels (set of types) and leaves in DFS order.
  bool present[kNumResourceTypes] = {};
  std::vector<int> next_level_index(kNumResourceTypes, 0);
  std::function<void(TopoObject&)> walk = [&](TopoObject& obj) {
    present[canonical_depth(obj.type())] = true;
    obj.set_level_index(next_level_index[canonical_depth(obj.type())]++);
    if (obj.is_leaf()) {
      const std::size_t pu_index = leaves_.size();
      leaves_.push_back(&obj);
      obj.set_cpuset(Bitmap::single(pu_index));
      return;
    }
    Bitmap span;
    for (std::size_t i = 0; i < obj.num_children(); ++i) {
      walk(obj.mutable_child(i));
      span |= obj.child(i).cpuset();
    }
    obj.set_cpuset(std::move(span));
  };
  walk(*root_);

  for (ResourceType t : all_resource_types()) {
    if (present[canonical_depth(t)]) levels_.push_back(t);
  }
  LAMA_ASSERT(!leaves_.empty());
  // All leaves must share one type (the smallest processing unit).
  for (const TopoObject* leaf : leaves_) {
    if (leaf->type() != leaves_.front()->type()) {
      throw ParseError("topology leaves must all be the same resource type");
    }
  }
  if (levels_.back() != leaves_.front()->type()) {
    throw ParseError("leaf type must be the deepest level in the tree");
  }
}

bool NodeTopology::has_level(ResourceType t) const {
  for (ResourceType level : levels_) {
    if (level == t) return true;
  }
  return false;
}

std::vector<const TopoObject*> NodeTopology::objects_at(ResourceType t) const {
  std::vector<const TopoObject*> out;
  std::function<void(const TopoObject&)> walk = [&](const TopoObject& obj) {
    if (obj.type() == t) {
      out.push_back(&obj);
      return;  // a type never nests inside itself
    }
    for (std::size_t i = 0; i < obj.num_children(); ++i) walk(obj.child(i));
  };
  walk(*root_);
  return out;
}

std::size_t NodeTopology::count(ResourceType t) const {
  return objects_at(t).size();
}

std::size_t NodeTopology::pu_count() const { return leaves_.size(); }

Bitmap NodeTopology::online_pus() const {
  Bitmap online;
  std::function<void(const TopoObject&)> walk = [&](const TopoObject& obj) {
    if (obj.disabled()) return;
    if (obj.is_leaf()) {
      online |= obj.cpuset();
      return;
    }
    for (std::size_t i = 0; i < obj.num_children(); ++i) walk(obj.child(i));
  };
  walk(*root_);
  return online;
}

const TopoObject& NodeTopology::pu(std::size_t index) const {
  LAMA_ASSERT(index < leaves_.size());
  return *leaves_[index];
}

const TopoObject* NodeTopology::ancestor_of_pu(std::size_t pu_index,
                                               ResourceType t) const {
  return pu(pu_index).ancestor(t);
}

void NodeTopology::set_object_disabled(ResourceType t, std::size_t level_index,
                                       bool disabled) {
  std::function<TopoObject*(TopoObject&)> find = [&](TopoObject& obj)
      -> TopoObject* {
    if (obj.type() == t) {
      return obj.level_index() == static_cast<int>(level_index) ? &obj
                                                                : nullptr;
    }
    for (std::size_t i = 0; i < obj.num_children(); ++i) {
      if (TopoObject* hit = find(obj.mutable_child(i))) return hit;
    }
    return nullptr;
  };
  TopoObject* obj = find(*root_);
  if (obj == nullptr) {
    throw MappingError("no " + std::string(resource_name(t)) + " with index " +
                       std::to_string(level_index) + " on " + name_);
  }
  obj->set_disabled(disabled);
}

void NodeTopology::restrict_pus(const Bitmap& allowed) {
  for (std::size_t i = 0; i < leaves_.size(); ++i) {
    if (!allowed.test(i)) leaves_[i]->set_disabled(true);
  }
}

void NodeTopology::clear_restrictions() {
  std::function<void(TopoObject&)> walk = [&](TopoObject& obj) {
    obj.set_disabled(false);
    for (std::size_t i = 0; i < obj.num_children(); ++i) {
      walk(obj.mutable_child(i));
    }
  };
  walk(*root_);
}

std::string NodeTopology::shape_string() const {
  std::string out = name_ + "(";
  bool first = true;
  for (ResourceType t : levels_) {
    if (t == ResourceType::kNode) continue;
    if (!first) out += " x ";
    first = false;
    out += std::to_string(count(t)) + " " + std::string(resource_keyword(t));
  }
  return out + ")";
}

std::string NodeTopology::render() const {
  std::string out;
  std::function<void(const TopoObject&, int)> walk = [&](const TopoObject& obj,
                                                         int indent) {
    out.append(static_cast<std::size_t>(indent) * 2, ' ');
    if (obj.type() == ResourceType::kNode) {
      out += name_;
    } else {
      out += resource_name(obj.type());
      out += " L#" + std::to_string(obj.level_index());
    }
    out += " (pus " + obj.cpuset().to_string() + ")";
    if (obj.disabled()) out += " [offline]";
    out += "\n";
    for (std::size_t i = 0; i < obj.num_children(); ++i) {
      walk(obj.child(i), indent + 1);
    }
  };
  walk(*root_, 0);
  return out;
}

NodeTopology::Builder::Builder(std::string name) : name_(std::move(name)) {
  root_ = std::make_unique<TopoObject>(ResourceType::kNode, 0);
  stack_.push_back(root_.get());
}

NodeTopology::Builder& NodeTopology::Builder::begin(ResourceType t,
                                                    int os_index) {
  LAMA_ASSERT(!stack_.empty());
  TopoObject* parent = stack_.back();
  if (canonical_depth(t) <= canonical_depth(parent->type())) {
    throw ParseError("builder level " + std::string(resource_name(t)) +
                     " does not nest inside " +
                     std::string(resource_name(parent->type())));
  }
  const int os = os_index >= 0 ? os_index
                               : static_cast<int>(parent->num_children());
  TopoObject& child = parent->add_child(std::make_unique<TopoObject>(t, os));
  stack_.push_back(&child);
  return *this;
}

NodeTopology::Builder& NodeTopology::Builder::end() {
  LAMA_ASSERT(stack_.size() > 1);
  stack_.pop_back();
  return *this;
}

NodeTopology::Builder& NodeTopology::Builder::leaf(ResourceType t,
                                                   int os_index) {
  return begin(t, os_index).end();
}

NodeTopology::Builder& NodeTopology::Builder::disable() {
  LAMA_ASSERT(!stack_.empty());
  stack_.back()->set_disabled(true);
  return *this;
}

NodeTopology NodeTopology::Builder::build() {
  LAMA_ASSERT(stack_.size() == 1);
  NodeTopology topo;
  topo.name_ = std::move(name_);
  topo.root_ = std::move(root_);
  topo.finalize();
  return topo;
}

}  // namespace lama
