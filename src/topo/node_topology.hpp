// The hardware topology of one server node, playing the role hwloc plays in
// the paper's implementation: a tree of resources from the node root down to
// the smallest processing unit (PU), with per-object availability bits that
// model scheduler/OS restrictions (off-lined sockets, cores, threads).
//
// Leaves are the node's smallest processing units — hardware threads when the
// tree models them, otherwise cores (matching the paper: "the LAMA will map
// the process to the smallest processing unit available"). PU indices are
// node-local and index the leaves left-to-right.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/bitmap.hpp"
#include "topo/object.hpp"
#include "topo/resource_type.hpp"

namespace lama {

class NodeTopology {
 public:
  // Builds a uniform tree from a synthetic description: whitespace-separated
  // `level:count` tokens in canonical containment order, e.g.
  //   "board:1 socket:2 numa:1 l2:4 core:4 pu:2"
  // Levels may be omitted (the tree simply lacks them); at least one of
  // core/pu must be present. Throws ParseError on malformed descriptions.
  static NodeTopology synthetic(const std::string& description,
                                std::string name = "node");

  NodeTopology(NodeTopology&&) noexcept = default;
  NodeTopology& operator=(NodeTopology&&) noexcept = default;
  NodeTopology(const NodeTopology& other) { *this = other; }
  NodeTopology& operator=(const NodeTopology& other);

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const TopoObject& root() const { return *root_; }

  // Resource levels present in this tree, outermost first (always starts
  // with kNode and ends with the leaf type).
  [[nodiscard]] const std::vector<ResourceType>& levels() const {
    return levels_;
  }
  [[nodiscard]] bool has_level(ResourceType t) const;

  // The smallest processing unit type (kHwThread or kCore).
  [[nodiscard]] ResourceType leaf_type() const { return levels_.back(); }

  // All objects of a type in logical (level-index) order; empty when the
  // level is absent.
  [[nodiscard]] std::vector<const TopoObject*> objects_at(
      ResourceType t) const;
  [[nodiscard]] std::size_t count(ResourceType t) const;

  // Total PUs (leaves), ignoring restrictions.
  [[nodiscard]] std::size_t pu_count() const;

  // PUs that are currently usable: neither they nor any ancestor disabled.
  [[nodiscard]] Bitmap online_pus() const;

  // Leaf object for a PU index.
  [[nodiscard]] const TopoObject& pu(std::size_t index) const;

  // Nearest ancestor of a PU at the given type, or nullptr when the level is
  // absent from this tree.
  [[nodiscard]] const TopoObject* ancestor_of_pu(std::size_t pu_index,
                                                 ResourceType t) const;

  // --- restrictions (scheduler / OS) ---
  // Disable (or re-enable) the level_index-th object of a type.
  void set_object_disabled(ResourceType t, std::size_t level_index,
                           bool disabled);
  // Disable every PU outside `allowed` (allocation masks).
  void restrict_pus(const Bitmap& allowed);
  // Re-enable everything.
  void clear_restrictions();

  // One-line shape summary, e.g. "node(2 sockets x 4 cores x 2 pus)".
  [[nodiscard]] std::string shape_string() const;

  // Multi-line ASCII rendering of the tree (for examples / debugging).
  [[nodiscard]] std::string render() const;

  // --- incremental construction of irregular trees ---
  class Builder {
   public:
    explicit Builder(std::string name = "node");
    // Opens a child of the current object; must respect canonical containment
    // order (each begin goes strictly deeper than its parent).
    Builder& begin(ResourceType t, int os_index = -1);
    Builder& end();
    // Shorthand: begin+end a leaf.
    Builder& leaf(ResourceType t, int os_index = -1);
    // Marks the currently open object disabled (scheduler/OS restriction).
    Builder& disable();
    [[nodiscard]] NodeTopology build();

   private:
    std::unique_ptr<TopoObject> root_;
    std::vector<TopoObject*> stack_;
    std::string name_;
  };

 private:
  NodeTopology() = default;
  // Recomputes cpusets, indices, and the level list; called after building.
  void finalize();

  std::string name_;
  std::unique_ptr<TopoObject> root_;
  std::vector<ResourceType> levels_;
  std::vector<TopoObject*> leaves_;  // PU index -> leaf
};

}  // namespace lama
