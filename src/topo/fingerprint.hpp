// Canonical topology hashing. The mapping service caches maximal/pruned
// trees across requests, so it needs a stable identity for "the same
// hardware": a 64-bit hash over the canonical serialized form
// (topo/serialize.hpp), which already captures the full tree shape, OS
// indices, and disabled markers while ignoring cosmetic state such as the
// node name. serialize → parse → fingerprint is a fixed point, so a topology
// that travelled over the wire hashes identically to the original.
#pragma once

#include <cstdint>

#include "topo/node_topology.hpp"

namespace lama {

std::uint64_t topology_fingerprint(const NodeTopology& topo);

}  // namespace lama
