// Topology serialization. The paper's runtime assembles "the hardware
// topologies from all allocated nodes" by probing each node and shipping the
// result to the mapping agent; that requires a wire format. This is a
// compact s-expression form that round-trips arbitrary (irregular) trees,
// OS indices, and offline markers:
//
//   (node (socket@0 (core@0 (pu@0) (pu@1)) (core@1! (pu@2) (pu@3))))
//
// `@N` is the OS index; a trailing `!` marks the object disabled
// (scheduler/OS restriction).
#pragma once

#include <string>

#include "topo/node_topology.hpp"

namespace lama {

// Serializes the full tree, including disabled flags and OS indices.
std::string serialize_topology(const NodeTopology& topo);

// Parses the s-expression form. Throws ParseError on malformed input.
NodeTopology parse_topology(const std::string& text,
                            std::string name = "node");

}  // namespace lama
