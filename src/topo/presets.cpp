#include "topo/presets.hpp"

namespace lama::presets {

NodeTopology figure2_node(std::string name) {
  return NodeTopology::synthetic("socket:2 core:4 pu:2", std::move(name));
}

NodeTopology dual_socket_numa(std::string name) {
  return NodeTopology::synthetic(
      "socket:2 numa:2 l3:1 l2:4 l1:1 core:1 pu:2", std::move(name));
}

NodeTopology quad_board_smp(std::string name) {
  return NodeTopology::synthetic("board:4 socket:2 core:8", std::move(name));
}

NodeTopology no_smt_node(std::string name) {
  return NodeTopology::synthetic("socket:2 core:4", std::move(name));
}

NodeTopology lopsided_node(std::string name) {
  NodeTopology::Builder b(std::move(name));
  b.begin(ResourceType::kSocket);
  for (int i = 0; i < 6; ++i) b.leaf(ResourceType::kCore);
  b.end();
  b.begin(ResourceType::kSocket);
  for (int i = 0; i < 2; ++i) b.leaf(ResourceType::kCore);
  b.end();
  return b.build();
}

}  // namespace lama::presets
