// Real-hardware topology discovery (ROADMAP item 3). The paper's runtime
// asks hwloc for the machine; this backend asks Linux directly, parsing
// /sys/devices/system/cpu (per-CPU package/core ids, online/present masks)
// and /sys/devices/system/node (NUMA cpulists) into the same NodeTopology
// the synthetic presets build — so everything downstream (maximal trees,
// the compiled kernel, the service caches, the sharded server's
// self-mapping) runs unchanged on discovered hardware.
//
// The roots are parameters so the committed fixture snapshots under
// tests/golden/sysfs/ exercise every discovery path without real hardware:
// single socket, dual-socket NUMA, SMT, offline-CPU holes, and the missing
// node-directory fallback.
//
// Parity contract: a uniform discovered machine reports its
// `synthetic_equivalent` description, and canonical_fingerprint() of the
// discovered tree equals canonical_fingerprint() of
// NodeTopology::synthetic(equivalent). Canonicalization renumbers each
// level's OS indices in depth-first order — discovery keeps the *platform*
// ids (PU os_index is the OS cpu number, which affinity pinning needs),
// while synthetic trees count per level, so raw fingerprints would differ
// on any machine whose core ids restart per socket.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/node_topology.hpp"

namespace lama {

struct SysfsPaths {
  std::string cpu_root = "/sys/devices/system/cpu";
  std::string node_root = "/sys/devices/system/node";
};

struct TopologyDiscovery {
  explicit TopologyDiscovery(NodeTopology topo) : topology(std::move(topo)) {}

  NodeTopology topology;

  std::size_t sockets = 0;
  std::size_t numa_nodes = 0;  // 0 when the numa level is absent
  std::size_t cores = 0;
  std::size_t pus = 0;          // leaves, offline included
  std::size_t offline_pus = 0;  // present but not online (marked disabled)
  bool smt = false;             // some core carries more than one thread
  bool numa_level = false;      // /sys/devices/system/node was usable

  // Non-fatal oddities: fallbacks taken, offline CPUs without topology
  // directories (omitted from the tree), CPUs missing from every node's
  // cpulist, ...
  std::vector<std::string> warnings;

  // The `level:count` description of an equivalent synthetic tree, empty
  // when the machine is irregular (uneven counts or offline holes).
  std::string synthetic_equivalent;
};

// Discovers the machine under `paths`. Throws MappingError when no CPU at
// all can be found (an unusable cpu_root); every lesser problem degrades
// with a warning.
TopologyDiscovery discover_topology(const SysfsPaths& paths = {});

// The tree with every level's OS indices renumbered 0..n-1 in depth-first
// order — the numbering NodeTopology::synthetic uses. Shape, levels, and
// disabled flags are preserved.
NodeTopology canonical_relabel(const NodeTopology& topo);

// topology_fingerprint() of the canonically relabeled tree: equal for any
// two trees of identical shape/levels/disabled state regardless of how the
// platform numbered the objects.
std::uint64_t canonical_fingerprint(const NodeTopology& topo);

}  // namespace lama
