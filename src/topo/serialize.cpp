#include "topo/serialize.hpp"

#include <cctype>
#include <functional>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace lama {

namespace {

void write_object(const TopoObject& obj, std::string& out) {
  out += '(';
  out += resource_keyword(obj.type());
  out += '@';
  out += std::to_string(obj.os_index());
  if (obj.disabled()) out += '!';
  for (std::size_t i = 0; i < obj.num_children(); ++i) {
    out += ' ';
    write_object(obj.child(i), out);
  }
  out += ')';
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  char peek() {
    skip_ws();
    if (pos >= text.size()) {
      throw ParseError("unexpected end of topology expression");
    }
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) {
      throw ParseError(std::string("expected '") + c + "' at offset " +
                       std::to_string(pos) + " in topology expression");
    }
    ++pos;
  }

  // keyword[@os][!]
  struct Atom {
    ResourceType type;
    int os_index = -1;
    bool disabled = false;
  };

  Atom parse_atom() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])))) {
      ++pos;
    }
    const std::string keyword = text.substr(start, pos - start);
    const auto type = resource_from_keyword(to_lower(keyword));
    if (!type) {
      throw ParseError("unknown topology keyword: '" + keyword + "'");
    }
    Atom atom{*type, -1, false};
    if (pos < text.size() && text[pos] == '@') {
      ++pos;
      start = pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      atom.os_index = static_cast<int>(
          parse_size(text.substr(start, pos - start), "topology OS index"));
    }
    if (pos < text.size() && text[pos] == '!') {
      ++pos;
      atom.disabled = true;
    }
    return atom;
  }
};

}  // namespace

std::string serialize_topology(const NodeTopology& topo) {
  std::string out;
  write_object(topo.root(), out);
  return out;
}

NodeTopology parse_topology(const std::string& text, std::string name) {
  Parser parser{text};
  NodeTopology::Builder builder(std::move(name));

  // The outermost expression must be the node; its children recurse.
  parser.expect('(');
  const Parser::Atom root = parser.parse_atom();
  if (root.type != ResourceType::kNode) {
    throw ParseError("topology expression must start with (node ...)");
  }
  if (root.disabled) builder.disable();  // the whole node is off-lined

  std::function<void()> parse_children = [&]() {
    while (parser.peek() == '(') {
      parser.expect('(');
      const Parser::Atom atom = parser.parse_atom();
      if (atom.type == ResourceType::kNode) {
        throw ParseError("nested 'node' in topology expression");
      }
      builder.begin(atom.type, atom.os_index);
      if (atom.disabled) builder.disable();
      parse_children();
      builder.end();
      parser.expect(')');
    }
  };
  parse_children();
  parser.expect(')');
  parser.skip_ws();
  if (parser.pos != text.size()) {
    throw ParseError("trailing characters after topology expression");
  }

  return builder.build();
}

}  // namespace lama
