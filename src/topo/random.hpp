// Deterministic random topology generation, for property tests and for
// stress-testing mapping tools against hardware shapes nobody owns: uneven
// fan-outs, missing mid-levels on some subtrees (exactly the heterogeneity
// §IV-B's pruning/bridging machinery must absorb), and random off-lining.
#pragma once

#include <cstdint>

#include "topo/node_topology.hpp"

namespace lama {

struct RandomTopologyOptions {
  std::uint64_t seed = 1;
  // Child count at each level is uniform in [1, max_fanout].
  int max_fanout = 4;
  // Probability that each optional mid level (board, numa, l3, l2, l1)
  // exists in this node at all.
  double level_presence = 0.5;
  // Probability that a present mid level is skipped under one particular
  // parent (creating the bridged-stray shape).
  double subtree_skip = 0.2;
  // Whether leaves are hardware threads (else cores).
  bool smt = true;
  // Probability that any individual object is off-lined. The generator
  // guarantees at least one PU stays online.
  double disable_fraction = 0.0;
};

NodeTopology random_topology(const RandomTopologyOptions& options,
                             std::string name = "random");

}  // namespace lama
