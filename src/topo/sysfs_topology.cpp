#include "topo/sysfs_topology.hpp"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <fstream>
#include <map>
#include <optional>
#include <set>

#include "support/error.hpp"
#include "support/numa.hpp"
#include "support/strings.hpp"
#include "topo/fingerprint.hpp"

namespace lama {

namespace {

namespace fs = std::filesystem;

std::optional<std::string> read_first_line(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  std::getline(in, line);
  return line;
}

std::optional<int> read_int(const fs::path& path) {
  const auto line = read_first_line(path);
  if (!line) return std::nullopt;
  try {
    return static_cast<int>(
        parse_size_bounded(trim(*line), "sysfs id", 1 << 20));
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

std::optional<std::vector<int>> read_cpu_list(const fs::path& path) {
  const auto line = read_first_line(path);
  if (!line) return std::nullopt;
  try {
    return support::parse_cpu_list(*line);
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

// Scans cpu_root for cpu<N> directories — the fallback when neither the
// `online` nor the `present` mask file exists.
std::vector<int> scan_cpu_dirs(const fs::path& cpu_root) {
  std::vector<int> cpus;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cpu_root, ec)) {
    const std::string name = entry.path().filename().string();
    if (!starts_with(name, "cpu") || name.size() <= 3) continue;
    try {
      cpus.push_back(static_cast<int>(
          parse_size_bounded(name.substr(3), "cpu id", 1 << 20)));
    } catch (const ParseError&) {
      continue;  // cpufreq, cpuidle, ...
    }
  }
  std::sort(cpus.begin(), cpus.end());
  return cpus;
}

struct CpuInfo {
  int cpu = 0;
  int package = 0;
  int numa = 0;
  int core = 0;
  bool online = true;
};

}  // namespace

TopologyDiscovery discover_topology(const SysfsPaths& paths) {
  const fs::path cpu_root(paths.cpu_root);
  std::vector<std::string> warnings;

  // 1. Which CPUs exist, and which of them run. `online` is authoritative;
  //    `present` adds the off-lined holes; a tree with neither degrades to
  //    the cpu<N> directory scan.
  std::vector<int> online;
  if (const auto list = read_cpu_list(cpu_root / "online")) {
    online = *list;
  } else {
    warnings.push_back("no readable " + (cpu_root / "online").string() +
                       "; treating every present cpu as online");
  }
  std::vector<int> present;
  if (const auto list = read_cpu_list(cpu_root / "present")) {
    present = *list;
  }
  if (present.empty()) present = scan_cpu_dirs(cpu_root);
  if (present.empty()) present = online;
  if (online.empty()) online = present;
  if (present.empty()) {
    throw MappingError("sysfs discovery found no CPUs under " +
                       cpu_root.string());
  }
  const std::set<int> online_set(online.begin(), online.end());
  std::set<int> present_set(present.begin(), present.end());
  for (const int cpu : online) present_set.insert(cpu);

  // 2. NUMA node of each CPU, when the node directory exists.
  bool numa_level = false;
  std::map<int, int> cpu_numa;
  {
    std::error_code ec;
    std::vector<std::pair<int, std::vector<int>>> nodes;
    for (const auto& entry : fs::directory_iterator(paths.node_root, ec)) {
      const std::string name = entry.path().filename().string();
      if (!starts_with(name, "node") || name.size() <= 4) continue;
      int id = 0;
      try {
        id = static_cast<int>(
            parse_size_bounded(name.substr(4), "node id", 1 << 16));
      } catch (const ParseError&) {
        continue;
      }
      if (const auto list = read_cpu_list(entry.path() / "cpulist")) {
        nodes.emplace_back(id, *list);
      }
    }
    if (!nodes.empty()) {
      numa_level = true;
      for (const auto& [id, cpus] : nodes) {
        for (const int cpu : cpus) cpu_numa[cpu] = id;
      }
    } else {
      warnings.push_back("no NUMA nodes under " + paths.node_root +
                         "; omitting the numa level");
    }
  }

  // 3. Per-CPU placement ids. An offline CPU whose topology directory is
  //    gone (the kernel removes it) cannot be placed — it is omitted with a
  //    warning; an online CPU missing ids is placed on package 0 with its
  //    own id as core id, which keeps the machine usable and the oddity
  //    visible.
  std::vector<CpuInfo> cpus;
  std::size_t offline_pus = 0;
  for (const int cpu : present_set) {
    const fs::path topo_dir =
        cpu_root / ("cpu" + std::to_string(cpu)) / "topology";
    const auto package = read_int(topo_dir / "physical_package_id");
    const auto core = read_int(topo_dir / "core_id");
    CpuInfo info;
    info.cpu = cpu;
    info.online = online_set.count(cpu) > 0;
    if (package && core) {
      info.package = *package;
      info.core = *core;
    } else if (info.online) {
      warnings.push_back("cpu" + std::to_string(cpu) +
                         " has no topology ids; placing it on package 0");
      info.package = 0;
      info.core = cpu;
    } else {
      warnings.push_back("offline cpu" + std::to_string(cpu) +
                         " has no topology directory; omitted");
      continue;
    }
    if (numa_level) {
      const auto it = cpu_numa.find(cpu);
      if (it != cpu_numa.end()) {
        info.numa = it->second;
      } else {
        warnings.push_back("cpu" + std::to_string(cpu) +
                           " appears in no node cpulist; assuming node 0");
      }
    }
    if (!info.online) ++offline_pus;
    cpus.push_back(info);
  }
  if (cpus.empty()) {
    throw MappingError("sysfs discovery could not place any CPU under " +
                       cpu_root.string());
  }

  // 4. Group into socket -> [numa ->] core -> threads, ordered by platform
  //    id at every level so the tree is deterministic.
  using CoreMap = std::map<int, std::vector<CpuInfo>>;
  using NumaMap = std::map<int, CoreMap>;
  std::map<int, NumaMap> sockets;
  bool smt = false;
  for (const CpuInfo& info : cpus) {
    std::vector<CpuInfo>& core =
        sockets[info.package][numa_level ? info.numa : 0][info.core];
    core.push_back(info);
    if (core.size() > 1) smt = true;
  }

  // 5. Build the tree. Leaves are hardware threads when any core carries
  //    more than one (so the pu level exists machine-wide or not at all);
  //    otherwise cores are the leaves, as in the paper's non-SMT machines.
  NodeTopology::Builder builder("host");
  std::size_t total_cores = 0;
  std::size_t total_pus = 0;
  std::set<int> numa_ids;
  for (const auto& [package, numas] : sockets) {
    builder.begin(ResourceType::kSocket, package);
    for (const auto& [numa, cores] : numas) {
      if (numa_level) {
        builder.begin(ResourceType::kNuma, numa);
        numa_ids.insert(numa);
      }
      for (const auto& [core_id, threads] : cores) {
        ++total_cores;
        const bool core_offline = std::none_of(
            threads.begin(), threads.end(),
            [](const CpuInfo& t) { return t.online; });
        if (smt) {
          builder.begin(ResourceType::kCore, core_id);
          if (core_offline) builder.disable();
          for (const CpuInfo& t : threads) {
            ++total_pus;
            builder.begin(ResourceType::kHwThread, t.cpu);
            if (!t.online && !core_offline) builder.disable();
            builder.end();
          }
          builder.end();
        } else {
          ++total_pus;
          builder.begin(ResourceType::kCore, threads.front().cpu);
          if (core_offline) builder.disable();
          builder.end();
        }
      }
      if (numa_level) builder.end();
    }
    builder.end();
  }

  TopologyDiscovery result(builder.build());
  result.sockets = sockets.size();
  result.numa_nodes = numa_ids.size();
  result.cores = total_cores;
  result.pus = total_pus;
  result.offline_pus = offline_pus;
  result.smt = smt;
  result.numa_level = numa_level;
  result.warnings = std::move(warnings);

  // 6. The synthetic equivalent, when one exists: every socket must carry
  //    the same number of numas, every numa the same number of cores, every
  //    core the same number of threads, and nothing may be off-line (the
  //    synthetic grammar cannot express disabled objects).
  if (offline_pus == 0) {
    bool uniform = true;
    std::size_t numas_per_socket = 0;
    std::size_t cores_per_numa = 0;
    std::size_t threads_per_core = 0;
    bool first = true;
    for (const auto& [package, numas] : sockets) {
      if (numas_per_socket == 0) numas_per_socket = numas.size();
      uniform = uniform && numas.size() == numas_per_socket;
      for (const auto& [numa, cores] : numas) {
        if (cores_per_numa == 0) cores_per_numa = cores.size();
        uniform = uniform && cores.size() == cores_per_numa;
        for (const auto& [core_id, threads] : cores) {
          if (first) {
            threads_per_core = threads.size();
            first = false;
          }
          uniform = uniform && threads.size() == threads_per_core;
        }
      }
    }
    if (uniform) {
      std::string desc = "socket:" + std::to_string(sockets.size());
      if (numa_level) desc += " numa:" + std::to_string(numas_per_socket);
      desc += " core:" + std::to_string(cores_per_numa);
      if (smt) desc += " pu:" + std::to_string(threads_per_core);
      result.synthetic_equivalent = desc;
    }
  }
  return result;
}

NodeTopology canonical_relabel(const NodeTopology& topo) {
  NodeTopology::Builder builder(topo.name());
  int next[kNumResourceTypes] = {};
  // The builder's implicit root consumes node index 0, like synthetic().
  next[canonical_depth(ResourceType::kNode)] = 1;
  const std::function<void(const TopoObject&)> copy =
      [&](const TopoObject& obj) {
        for (std::size_t i = 0; i < obj.num_children(); ++i) {
          const TopoObject& child = obj.child(i);
          builder.begin(child.type(), next[canonical_depth(child.type())]++);
          if (child.disabled()) builder.disable();
          copy(child);
          builder.end();
        }
      };
  copy(topo.root());
  return builder.build();
}

std::uint64_t canonical_fingerprint(const NodeTopology& topo) {
  return topology_fingerprint(canonical_relabel(topo));
}

}  // namespace lama
