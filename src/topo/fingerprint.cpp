#include "topo/fingerprint.hpp"

#include "support/hash.hpp"
#include "topo/serialize.hpp"

namespace lama {

std::uint64_t topology_fingerprint(const NodeTopology& topo) {
  return mix64(fnv1a64(serialize_topology(topo)));
}

}  // namespace lama
