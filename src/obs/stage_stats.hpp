// Per-stage latency distributions for the live telemetry plane: one
// LatencyHistogram per trace stage, updated wait-free at span end, plus a
// per-(stage, bucket) exemplar slot remembering the slowest recent sample's
// trace id. The exemplars are what make the histograms actionable: a p99
// bucket in the Prometheus exposition links straight to a TRACE id the
// flight recorder can expand.
//
// Exemplar slots are a pair of relaxed atomics (trace id, ns). A racing
// writer can momentarily pair one sample's id with another's ns; both values
// are still real observations from the same bucket (a factor-of-two span),
// so the tear is benign for telemetry and invisible to TSan.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "obs/span.hpp"
#include "support/histogram.hpp"

namespace lama::obs {

class StageStats {
 public:
  static constexpr std::size_t kNumBuckets = LatencyHistogram::kNumBuckets;

  struct Exemplar {
    std::uint64_t trace_id = 0;  // 0 = no sample observed in this bucket
    std::uint64_t ns = 0;
  };

  // Record one finished span. `exemplar_trace` of 0 updates the histogram
  // only — used for samples whose trace will not be assembled, so every
  // exported exemplar id stays resolvable through the TRACE verb.
  void record(Stage stage, std::uint64_t ns, std::uint64_t exemplar_trace);

  [[nodiscard]] const LatencyHistogram& histogram(Stage stage) const {
    return stages_[static_cast<std::size_t>(stage)].hist;
  }

  [[nodiscard]] Exemplar exemplar(Stage stage, std::size_t bucket) const;

  void reset();

 private:
  struct PerStage {
    LatencyHistogram hist;
    std::array<std::atomic<std::uint64_t>, kNumBuckets> exemplar_trace{};
    std::array<std::atomic<std::uint64_t>, kNumBuckets> exemplar_ns{};
  };

  std::array<PerStage, kStageCount> stages_{};
};

}  // namespace lama::obs
