#include "obs/flight_recorder.hpp"

#include <utility>

namespace lama::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::add(Trace trace) {
  std::function<void(const Trace&)> sink;
  Trace for_sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (trace.failed()) {
      ++dumps_;
      failures_.push_back(trace);
      while (failures_.size() > capacity_) failures_.pop_front();
      if (sink_) {
        sink = sink_;
        for_sink = trace;
      }
    }
    recent_.push_back(std::move(trace));
    while (recent_.size() > capacity_) recent_.pop_front();
  }
  if (sink) sink(for_sink);
}

std::optional<Trace> FlightRecorder::by_id(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (it->id == id) return *it;
  }
  // An old failure may have aged out of `recent_` but survive here.
  for (auto it = failures_.rbegin(); it != failures_.rend(); ++it) {
    if (it->id == id) return *it;
  }
  return std::nullopt;
}

std::optional<Trace> FlightRecorder::last() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (recent_.empty()) return std::nullopt;
  return recent_.back();
}

std::optional<Trace> FlightRecorder::last_failure() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (failures_.empty()) return std::nullopt;
  return failures_.back();
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recent_.size();
}

std::uint64_t FlightRecorder::dumps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dumps_;
}

void FlightRecorder::set_dump_sink(std::function<void(const Trace&)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

}  // namespace lama::obs
