#include "obs/stage_stats.hpp"

#include <bit>

namespace lama::obs {

void StageStats::record(Stage stage, std::uint64_t ns,
                        std::uint64_t exemplar_trace) {
  PerStage& per = stages_[static_cast<std::size_t>(stage)];
  per.hist.record_ns(ns);
  if (exemplar_trace == 0) return;
  std::size_t idx = std::bit_width(ns);
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  // Keep the slowest sample seen in this bucket; ties go to the newer trace
  // so long-lived services keep pointing at traces the recorder still holds.
  if (ns >= per.exemplar_ns[idx].load(std::memory_order_relaxed)) {
    per.exemplar_ns[idx].store(ns, std::memory_order_relaxed);
    per.exemplar_trace[idx].store(exemplar_trace, std::memory_order_relaxed);
  }
}

StageStats::Exemplar StageStats::exemplar(Stage stage,
                                          std::size_t bucket) const {
  const PerStage& per = stages_[static_cast<std::size_t>(stage)];
  Exemplar ex;
  ex.trace_id = per.exemplar_trace[bucket].load(std::memory_order_relaxed);
  ex.ns = per.exemplar_ns[bucket].load(std::memory_order_relaxed);
  return ex;
}

void StageStats::reset() {
  for (PerStage& per : stages_) {
    per.hist.reset();
    for (auto& t : per.exemplar_trace) t.store(0, std::memory_order_relaxed);
    for (auto& n : per.exemplar_ns) n.store(0, std::memory_order_relaxed);
  }
}

}  // namespace lama::obs
