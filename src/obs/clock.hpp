// The observability clock: one monotonic nanosecond timestamp source shared
// by every span so traces order correctly across threads. steady_clock is
// monotonic per process; cross-process alignment is out of scope (traces are
// assembled and exported by the process that recorded them).
#pragma once

#include <chrono>
#include <cstdint>

namespace lama::obs {

inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace lama::obs
