// The flight recorder: a bounded log of the last N complete request traces,
// plus a separate bounded log of failure traces (error / shed / deadlined /
// degraded) so a burst of healthy traffic cannot age out the evidence of
// the last incident. Failure traces also fire the optional dump sink — the
// hook `lamactl serve --trace-dump` uses to write Chrome trace-event files
// as failures happen.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/span.hpp"

namespace lama::obs {

// One assembled request trace: the spans collected from every thread ring,
// sorted by start time (ties broken longest-first, so enclosing spans
// precede their children).
struct Trace {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // enclosing batch trace, 0 when none
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  Outcome outcome = Outcome::kOk;
  std::vector<Span> spans;

  [[nodiscard]] bool failed() const { return outcome != Outcome::kOk; }
  [[nodiscard]] std::uint64_t duration_ns() const { return end_ns - begin_ns; }
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  // Retains the trace (evicting the oldest past capacity). Failed traces
  // are additionally copied into the failure log and handed to the dump
  // sink, outside the lock.
  void add(Trace trace);

  [[nodiscard]] std::optional<Trace> by_id(std::uint64_t id) const;
  [[nodiscard]] std::optional<Trace> last() const;
  [[nodiscard]] std::optional<Trace> last_failure() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  // Failure traces ever recorded (monotonic, unlike the bounded log).
  [[nodiscard]] std::uint64_t dumps() const;

  // Invoked with every failed trace, after it is retained. Swap-safe.
  void set_dump_sink(std::function<void(const Trace&)> sink);

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Trace> recent_;
  std::deque<Trace> failures_;
  std::uint64_t dumps_ = 0;
  std::function<void(const Trace&)> sink_;
};

}  // namespace lama::obs
