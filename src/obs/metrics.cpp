#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace lama::obs {

namespace {

// Counters are integral and must round-trip exactly; quantiles keep a few
// significant digits. %g on an integral double prints no trailing zeros.
std::string format_value(double value) {
  char buf[64];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  return buf;
}

}  // namespace

std::string prometheus_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string json_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

MetricFamily& MetricsSnapshot::add(std::string name, std::string help,
                                   std::string type) {
  families.push_back(
      {std::move(name), std::move(help), std::move(type), {}});
  return families.back();
}

void MetricsSnapshot::add_scalar(std::string name, std::string help,
                                 std::string type, double value) {
  MetricFamily& family = add(std::move(name), std::move(help), std::move(type));
  family.samples.push_back({"", {}, value});
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream out;
  for (const MetricFamily& family : families) {
    out << "# HELP " << family.name << ' ' << family.help << '\n';
    out << "# TYPE " << family.name << ' ' << family.type << '\n';
    for (const MetricSample& sample : family.samples) {
      out << family.name << sample.suffix;
      if (!sample.labels.empty()) {
        out << '{';
        bool first = true;
        for (const auto& [key, value] : sample.labels) {
          if (!first) out << ',';
          first = false;
          out << key << "=\"" << prometheus_escape(value) << '"';
        }
        out << '}';
      }
      out << ' ' << format_value(sample.value);
      if (!sample.exemplar_trace.empty()) {
        // OpenMetrics exemplar: the trace id of the slowest recent sample
        // observed in this bucket, resolvable via the TRACE verb.
        out << " # {trace_id=\"" << prometheus_escape(sample.exemplar_trace)
            << "\"} " << format_value(sample.exemplar_value);
      }
      out << '\n';
    }
  }
  out << "# EOF\n";
  return out.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << '{';
  bool first_family = true;
  for (const MetricFamily& family : families) {
    if (!first_family) out << ',';
    first_family = false;
    out << '"' << json_escape(family.name) << "\":";
    if (family.samples.size() == 1 && family.samples[0].suffix.empty() &&
        family.samples[0].labels.empty()) {
      out << format_value(family.samples[0].value);
      continue;
    }
    out << '{';
    bool first_sample = true;
    for (const MetricSample& sample : family.samples) {
      if (!first_sample) out << ',';
      first_sample = false;
      // The key mirrors the Prometheus identity: suffix and/or label
      // values, joined — unique within a family by construction.
      std::string key = sample.suffix;
      if (!key.empty() && key.front() == '_') key.erase(0, 1);
      for (const auto& [label, value] : sample.labels) {
        if (!key.empty()) key += ',';
        key += label + "=" + value;
      }
      out << '"' << json_escape(key) << "\":" << format_value(sample.value);
    }
    out << '}';
  }
  out << '}';
  return out.str();
}

LabeledCounter::LabeledCounter(std::size_t max_keys)
    : max_keys_(max_keys == 0 ? 1 : max_keys) {}

void LabeledCounter::increment(const std::string& key, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counts_.find(key);
  if (it != counts_.end()) {
    it->second += delta;
    return;
  }
  if (counts_.size() >= max_keys_) {
    counts_["_other"] += delta;
    return;
  }
  counts_.emplace(key, delta);
}

std::vector<std::pair<std::string, std::uint64_t>> LabeledCounter::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counts_.begin(), counts_.end()};
}

}  // namespace lama::obs
