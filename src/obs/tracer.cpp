#include "obs/tracer.hpp"

#include <algorithm>

#include "obs/clock.hpp"
#include "obs/ring.hpp"
#include "support/hash.hpp"

namespace lama::obs {

namespace {

thread_local TraceHandle t_ctx;
thread_local std::uint64_t t_pending_parent = 0;

// Trace ids are process-wide so spans from concurrent services (tests run
// several) can never alias inside the shared ring registry.
std::atomic<std::uint64_t> g_next_trace_id{1};

}  // namespace

std::uint64_t current_trace_id() { return t_ctx.id; }

TraceHandle current_trace() { return t_ctx; }

ScopedTrace::ScopedTrace(const TraceHandle& handle) : saved_(t_ctx) {
  t_ctx = handle;
}

ScopedTrace::~ScopedTrace() { t_ctx = saved_; }

ScopedParent::ScopedParent(std::uint64_t parent_id)
    : saved_(t_pending_parent) {
  t_pending_parent = parent_id;
}

ScopedParent::~ScopedParent() { t_pending_parent = saved_; }

std::uint64_t span_begin() {
  return t_ctx.id == 0 || !t_ctx.record ? 0 : monotonic_ns();
}

void span_end(Stage stage, std::uint32_t detail, std::uint64_t start_ns) {
  if (start_ns == 0 || t_ctx.id == 0) return;
  Span span;
  span.trace_id = t_ctx.id;
  span.start_ns = start_ns;
  span.end_ns = monotonic_ns();
  span.detail = detail;
  span.stage = stage;
  // Stage latency histogram + exemplar, wait-free. Only sampled traces get
  // here (span_begin returned non-zero), so the exemplar's trace id always
  // belongs to a trace the tracer will assemble.
  if (t_ctx.stats != nullptr) {
    t_ctx.stats->record(stage, span.end_ns - span.start_ns, span.trace_id);
  }
  SpanRing& ring = RingRegistry::instance().local_ring(span.tid);
  ring.push(span);
}

Tracer::Tracer(const TracerConfig& config)
    : config_(config), recorder_(config.flight_capacity) {}

std::uint64_t Tracer::begin(bool transport) {
  const std::uint64_t id =
      g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
  t_ctx.id = id;
  t_ctx.parent = t_pending_parent;
  t_pending_parent = 0;  // consumed by this begin
  t_ctx.begin_ns = monotonic_ns();
  t_ctx.stats = &stage_stats_;
  t_ctx.transport = transport;
  // The head-based sampling decision: an unsampled trace skips all span
  // recording (span_begin returns 0 — no clock reads, no ring pushes), so
  // the default 1/64 rate keeps the warm path within its overhead budget.
  // A failed unsampled request still assembles at end() with its
  // synthesized root span carrying id, outcome, and duration.
  t_ctx.record = sampled(id);
  started_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool Tracer::tail_gate(std::uint64_t duration_ns) {
  if (!config_.tail_capture) return false;
  // A stochastic decayed-p99 estimate: samples above the estimate pull it
  // up by 1/8 of the gap, samples below decay it by 1/4096 — the estimate
  // settles just above the bulk of the distribution and tracks load shifts
  // within a few thousand requests. The gate itself asks for 1.25x the
  // estimate so steady traffic at the estimate does not self-capture; a
  // short warmup keeps the first requests from tripping a cold estimate.
  const std::uint64_t est = tail_threshold_ns_.load(std::memory_order_relaxed);
  std::uint64_t updated;
  if (duration_ns > est) {
    updated = est + (duration_ns - est) / 8 + 1;
  } else {
    updated = est - est / 4096;
  }
  tail_threshold_ns_.store(updated, std::memory_order_relaxed);
  constexpr std::uint64_t kWarmup = 64;
  if (tail_warmup_.load(std::memory_order_relaxed) < kWarmup) {
    tail_warmup_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (duration_ns <= config_.tail_floor_ns) return false;
  return duration_ns > est + est / 4;
}

Tracer::End Tracer::end(std::uint64_t id, Outcome outcome) {
  End result;
  result.failure = outcome != Outcome::kOk;
  const TraceHandle handle = t_ctx;
  if (handle.id == id) t_ctx = TraceHandle{};
  const std::uint64_t end_ns = monotonic_ns();
  const std::uint64_t duration =
      end_ns > handle.begin_ns ? end_ns - handle.begin_ns : 0;
  // Transport traces (socket accept, one readable event) are connection
  // plumbing: they neither feed the request-stage histogram nor the tail
  // gate's duration estimate — a flood of µs-scale readable events must
  // not drag the estimate down and spuriously capture normal requests.
  const bool request = !handle.transport || handle.id != id;
  result.slow = !result.failure && request && tail_gate(duration);
  const bool assemble = result.failure || result.slow || sampled(id);
  // The whole-request histogram sees every traced request; the exemplar
  // only assembled ones, so exported exemplar ids resolve via TRACE.
  if (request) stage_stats_.record(Stage::kRequest, duration, assemble ? id : 0);
  if (!assemble) return result;
  if (result.slow) {
    tail_captured_.fetch_add(1, std::memory_order_relaxed);
    if (outcome == Outcome::kOk) outcome = Outcome::kSlow;
  }

  Trace trace;
  trace.id = id;
  trace.parent_id = handle.parent;
  trace.begin_ns = handle.begin_ns;
  trace.end_ns = end_ns;
  trace.outcome = outcome;

  // The root request span, synthesised here: it is still open while the
  // rings are scanned, so it cannot come from a ring itself.
  Span root;
  root.trace_id = id;
  root.start_ns = trace.begin_ns;
  root.end_ns = trace.end_ns;
  root.stage = Stage::kRequest;
  RingRegistry::instance().local_ring(root.tid);
  trace.spans.push_back(root);

  RingRegistry::instance().collect(id, trace.spans);
  std::sort(trace.spans.begin(), trace.spans.end(),
            [](const Span& a, const Span& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.end_ns > b.end_ns;  // enclosing spans first
            });

  recorder_.add(std::move(trace));
  assembled_.fetch_add(1, std::memory_order_relaxed);
  result.assembled = true;
  return result;
}

bool Tracer::sampled(std::uint64_t id) const {
  const std::uint32_t n = config_.sample_every;
  if (n == 0) return false;
  if (n == 1) return true;
  const std::uint64_t h =
      mix64(id ^ mix64(config_.seed + 0x9e3779b97f4a7c15ULL));
  return h % n == 0;
}

TraceScope::TraceScope(Tracer* tracer, bool transport) : tracer_(tracer) {
  if (tracer_ != nullptr && current_trace_id() == 0) {
    id_ = tracer_->begin(transport);
  }
}

TraceScope::~TraceScope() {
  if (id_ != 0) tracer_->end(id_, outcome_);
}

}  // namespace lama::obs
