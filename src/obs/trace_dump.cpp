#include "obs/trace_dump.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string_view>
#include <system_error>
#include <vector>

#include "obs/chrome.hpp"

namespace lama::obs {

namespace {

namespace fs = std::filesystem;

// trace-<id>.json -> id; nullopt for anything else (foreign files survive).
std::optional<std::uint64_t> dump_id(const fs::path& path) {
  const std::string name = path.filename().string();
  constexpr std::string_view kPrefix = "trace-";
  constexpr std::string_view kSuffix = ".json";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return std::nullopt;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return std::nullopt;
  }
  std::uint64_t id = 0;
  for (std::size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return id;
}

}  // namespace

std::size_t gc_trace_dumps(const std::string& dir, std::size_t max_files) {
  if (max_files == 0) return 0;
  std::error_code ec;
  std::vector<std::uint64_t> ids;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (const auto id = dump_id(entry.path()); id.has_value()) {
      ids.push_back(*id);
    }
  }
  if (ids.size() <= max_files) return 0;
  // Oldest first = smallest trace id first (ids are process-monotonic).
  std::sort(ids.begin(), ids.end());
  std::size_t deleted = 0;
  for (std::size_t i = 0; i < ids.size() - max_files; ++i) {
    const fs::path victim =
        fs::path(dir) / ("trace-" + std::to_string(ids[i]) + ".json");
    deleted += fs::remove(victim, ec) ? 1 : 0;
  }
  return deleted;
}

std::function<void(const Trace&)> make_trace_dump_sink(TraceDumpConfig config) {
  return [config](const Trace& trace) {
    const std::string path =
        config.dir + "/trace-" + std::to_string(trace.id) + ".json";
    std::ofstream out(path);
    if (out) out << to_chrome_json(trace) << "\n";
    out.close();
    gc_trace_dumps(config.dir, config.max_files);
  };
}

}  // namespace lama::obs
