#include "obs/chrome.hpp"

#include <cstdio>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace lama::obs {

namespace {

std::string usec(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string to_chrome_json(const Trace& trace) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : trace.spans) {
    if (!first) out << ',';
    first = false;
    const std::uint64_t rel =
        span.start_ns >= trace.begin_ns ? span.start_ns - trace.begin_ns : 0;
    const std::uint64_t dur =
        span.end_ns >= span.start_ns ? span.end_ns - span.start_ns : 0;
    out << "{\"name\":\"" << json_escape(stage_name(span.stage))
        << "\",\"cat\":\"lama\",\"ph\":\"X\",\"ts\":" << usec(rel)
        << ",\"dur\":" << usec(dur) << ",\"pid\":1,\"tid\":" << span.tid
        << ",\"args\":{\"detail\":" << span.detail << "}}";
  }
  out << "],\"otherData\":{\"trace_id\":\"" << trace.id
      << "\",\"parent_id\":\"" << trace.parent_id << "\",\"outcome\":\""
      << json_escape(outcome_name(trace.outcome)) << "\",\"duration_ns\":\""
      << trace.duration_ns() << "\"}}";
  return out.str();
}

}  // namespace lama::obs
