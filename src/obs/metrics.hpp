// Metrics exposition. MetricsSnapshot is the single serializer both wire
// formats share: the service builds one snapshot of families and samples,
// and to_prometheus() / to_json() render the same data — the METRICS verb,
// `lamactl metrics --json`, and `lamactl stats --json` can never drift
// apart because they never re-enumerate the counters.
//
// LabeledCounter backs the per-layout and per-allocation-fingerprint series:
// a bounded labeled counter that folds overflow keys into "_other" so a
// client sending unique layouts cannot grow the exporter without bound.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lama::obs {

// One exported sample: `name<suffix>{labels...} value`. The suffix carries
// summary/histogram parts ("_sum", "_count", "_bucket"); plain counters
// leave it empty. A non-empty exemplar_trace renders an OpenMetrics-style
// exemplar after the value (` # {trace_id="<id>"} <exemplar_value>`) — used
// on histogram buckets to link the slowest recent sample to a TRACE id.
struct MetricSample {
  std::string suffix;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
  std::string exemplar_trace;
  double exemplar_value = 0.0;
};

struct MetricFamily {
  std::string name;
  std::string help;
  std::string type;  // "counter" | "gauge" | "summary" | "histogram"
  std::vector<MetricSample> samples;
};

struct MetricsSnapshot {
  std::vector<MetricFamily> families;

  MetricFamily& add(std::string name, std::string help, std::string type);
  // Convenience: a single-sample counter/gauge family.
  void add_scalar(std::string name, std::string help, std::string type,
                  double value);

  // Prometheus text format, terminated by a "# EOF" line (the line protocol
  // uses it to frame the multi-line response).
  [[nodiscard]] std::string to_prometheus() const;
  // One JSON object; single unlabeled samples flatten to numbers, labeled
  // or summary families to nested objects.
  [[nodiscard]] std::string to_json() const;
};

// Escapes for the two formats (exposed for tests).
std::string prometheus_escape(const std::string& value);
std::string json_escape(const std::string& value);

class LabeledCounter {
 public:
  // At most `max_keys` distinct labels; further keys count under "_other".
  explicit LabeledCounter(std::size_t max_keys = 256);

  void increment(const std::string& key, std::uint64_t delta = 1);
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot()
      const;

 private:
  const std::size_t max_keys_;
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace lama::obs
