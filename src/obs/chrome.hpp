// Chrome trace-event JSON export: renders an assembled Trace as the object
// form of the trace-event format ({"traceEvents": [...]}), loadable in
// chrome://tracing and Perfetto. Every span becomes a complete ("X") event
// with microsecond timestamps relative to the trace's begin, pid 1, and the
// recording ring index as tid — so the parallel-walk chunks line up as
// separate tracks under the request.
#pragma once

#include <string>

#include "obs/flight_recorder.hpp"

namespace lama::obs {

std::string to_chrome_json(const Trace& trace);

}  // namespace lama::obs
