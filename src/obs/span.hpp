// Trace spans: the unit of request observability. A span is one timed stage
// of one request — parse, cache lookup, tree build, a parallel walk chunk,
// the binding step, … — stamped with the request's trace id and the ring
// index of the recording thread. Spans are plain values small enough to
// publish through the lock-free per-thread rings (ring.hpp); assembly into
// complete traces happens only for sampled or failed requests (tracer.hpp).
#pragma once

#include <cstdint>

namespace lama::obs {

// The pipeline stages of the mapping service, following the paper's walk
// (prune -> availability skip -> place -> bind) plus the service framing
// around it. Stage values appear on the wire (TRACE responses) through
// stage_name(), never as raw numbers.
enum class Stage : std::uint8_t {
  kRequest = 0,    // the whole request, admission to reply
  kParse,          // protocol line -> MapRequest
  kLookup,         // tree-cache probe (covers build/wait on a miss)
  kBuild,          // maximal-tree construction
  kCoalesceWait,   // waited on another request's in-flight build
  kMap,            // the mapping walk (sequential or parallel)
  kChunk,          // one worker's recorded subspace in lama_map_parallel
  kAssemble,       // deterministic replay of the recorded chunks
  kSweep,          // one wraparound sweep of the placement engine
  kBind,           // the binding step (per-rank cpusets)
  kReply,          // response formatting
  kBatch,          // a MAPBATCH/BATCH request as a whole
  kPlanCompile,    // compiling a MapPlan from the cached tree
  kPlanExec,       // executing a compiled plan (inside the map_walk span)
  kOptimize,       // a whole OPTIMIZE placement search (cache miss)
  kOptCandidate,   // pricing one seed candidate (detail = candidate index)
  kOptRefine,      // pairwise-exchange refinement of the winning seed
  // Event-loop server stages (svc/event_loop.hpp). detail carries the
  // connection id so one trace's spans can be pinned to one socket.
  kAccept,         // accepting one connection
  kNetRead,        // draining one readable socket into its buffer
  kFrame,          // delimiting one request (text line or binary frame)
  kDispatch,       // one framed request through the protocol session
  kNetWrite,       // flushing one connection's write buffer
};

// Number of Stage values (kRequest .. kNetWrite, dense from 0). Keep in
// sync when appending stages: per-stage telemetry arrays size off this.
inline constexpr std::size_t kStageCount =
    static_cast<std::size_t>(Stage::kNetWrite) + 1;

constexpr const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kRequest: return "request";
    case Stage::kParse: return "parse";
    case Stage::kLookup: return "cache_lookup";
    case Stage::kBuild: return "tree_build";
    case Stage::kCoalesceWait: return "coalesce_wait";
    case Stage::kMap: return "map_walk";
    case Stage::kChunk: return "chunk";
    case Stage::kAssemble: return "assemble";
    case Stage::kSweep: return "sweep";
    case Stage::kBind: return "bind";
    case Stage::kReply: return "reply";
    case Stage::kBatch: return "batch";
    case Stage::kPlanCompile: return "plan_compile";
    case Stage::kPlanExec: return "plan_exec";
    case Stage::kOptimize: return "optimize";
    case Stage::kOptCandidate: return "opt_candidate";
    case Stage::kOptRefine: return "opt_refine";
    case Stage::kAccept: return "accept";
    case Stage::kNetRead: return "read";
    case Stage::kFrame: return "frame";
    case Stage::kDispatch: return "dispatch";
    case Stage::kNetWrite: return "write";
  }
  return "unknown";
}

// How a traced request ended. Anything but kOk marks the trace as a failure
// for the flight recorder: it is retained and dumped regardless of sampling.
enum class Outcome : std::uint8_t {
  kOk = 0,
  kError,      // failed (parse, mapping, unexpected exception)
  kShed,       // rejected by admission control (ERR busy)
  kDeadlined,  // cancelled past its deadline
  kDegraded,   // succeeded on the uncached fallback (integrity failure,
               // degraded-shared remap)
  kSlow,       // succeeded, but the tail gate flagged it: slower than the
               // decayed p99 estimate, captured regardless of head sampling
};

constexpr const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kError: return "error";
    case Outcome::kShed: return "shed";
    case Outcome::kDeadlined: return "deadlined";
    case Outcome::kDegraded: return "degraded";
    case Outcome::kSlow: return "slow";
  }
  return "unknown";
}

struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;     // recording thread's ring index
  std::uint32_t detail = 0;  // chunk index / sweep number / job slot
  Stage stage = Stage::kRequest;
};

}  // namespace lama::obs
