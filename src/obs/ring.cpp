#include "obs/ring.hpp"

namespace lama::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SpanRing::SpanRing(std::size_t capacity)
    : slots_(round_up_pow2(capacity == 0 ? 1 : capacity)) {}

void SpanRing::push(const Span& span) {
  Slot& slot = slots_[head_ & (slots_.size() - 1)];
  ++head_;
  const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);  // odd: write begins
  slot.trace_id.store(span.trace_id, std::memory_order_relaxed);
  slot.start_ns.store(span.start_ns, std::memory_order_relaxed);
  slot.end_ns.store(span.end_ns, std::memory_order_relaxed);
  slot.tid.store(span.tid, std::memory_order_relaxed);
  slot.detail.store(span.detail, std::memory_order_relaxed);
  slot.stage.store(static_cast<std::uint8_t>(span.stage),
                   std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);  // even: published
  pushed_.fetch_add(1, std::memory_order_relaxed);
}

void SpanRing::collect(std::uint64_t trace_id, std::vector<Span>& out) const {
  for (const Slot& slot : slots_) {
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq == 0 || (seq & 1) != 0) continue;  // empty or mid-write
    Span span;
    span.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    if (span.trace_id != trace_id) continue;
    span.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    span.end_ns = slot.end_ns.load(std::memory_order_relaxed);
    span.tid = slot.tid.load(std::memory_order_relaxed);
    span.detail = slot.detail.load(std::memory_order_relaxed);
    span.stage = static_cast<Stage>(slot.stage.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq) continue;  // torn
    out.push_back(span);
  }
}

RingRegistry& RingRegistry::instance() {
  static RingRegistry* registry = new RingRegistry();  // intentionally leaked
  return *registry;
}

std::uint32_t RingRegistry::lease() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    const std::uint32_t tid = free_.back();
    free_.pop_back();
    return tid;
  }
  rings_.push_back(std::make_unique<SpanRing>(kRingCapacity));
  return static_cast<std::uint32_t>(rings_.size() - 1);
}

void RingRegistry::release(std::uint32_t tid) {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(tid);
}

// One lease per thread, returned to the registry free list at thread exit.
// Named (not in the anonymous namespace) so the friend declaration in
// ring.hpp grants it access to lease()/release().
struct RingLease {
  std::uint32_t tid = 0;
  SpanRing* ring = nullptr;
  ~RingLease() {
    if (ring != nullptr) RingRegistry::instance().release(tid);
  }
};

namespace {
thread_local RingLease t_lease;
}  // namespace

SpanRing& RingRegistry::local_ring(std::uint32_t& tid) {
  if (t_lease.ring == nullptr) {
    t_lease.tid = lease();
    std::lock_guard<std::mutex> lock(mu_);
    t_lease.ring = rings_[t_lease.tid].get();
  }
  tid = t_lease.tid;
  return *t_lease.ring;
}

void RingRegistry::collect(std::uint64_t trace_id,
                           std::vector<Span>& out) const {
  // Snapshot the ring set under the lock; rings are never destroyed, so the
  // scan itself runs unlocked against the stable pointers.
  std::vector<SpanRing*> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings.reserve(rings_.size());
    for (const auto& ring : rings_) rings.push_back(ring.get());
  }
  for (const SpanRing* ring : rings) ring->collect(trace_id, out);
}

std::size_t RingRegistry::num_rings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

}  // namespace lama::obs
