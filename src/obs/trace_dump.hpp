// The --trace-dump sink: writes every failed (or tail-captured) trace to
// <dir>/trace-<id>.json as Chrome trace-event JSON, garbage-collecting the
// directory to a file cap so a long incident cannot fill the disk. Trace
// ids are process-monotonic, so "oldest first" is simply the smallest id —
// no mtime races.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/flight_recorder.hpp"

namespace lama::obs {

struct TraceDumpConfig {
  std::string dir;
  // Retained trace-<id>.json files after each write; 0 = unbounded.
  std::size_t max_files = 256;
};

// Deletes lowest-id trace-<id>.json files until at most `max_files` remain.
// Foreign files in the directory are left alone. Returns files deleted.
std::size_t gc_trace_dumps(const std::string& dir, std::size_t max_files);

// A dump sink for FlightRecorder::set_dump_sink. The directory must exist.
std::function<void(const Trace&)> make_trace_dump_sink(TraceDumpConfig config);

}  // namespace lama::obs
