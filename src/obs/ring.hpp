// Lock-free per-thread span rings. Each recording thread owns one SpanRing:
// push() is wait-free for the owner (a seqlock per slot, overwrite-oldest),
// and any other thread may collect() a consistent snapshot of the spans that
// belong to one trace. The process-wide RingRegistry leases rings to threads
// on first use and recycles them on thread exit, so the short-lived chunk
// workers of lama_map_parallel reuse a bounded pool of rings instead of
// growing the registry per mapping.
//
// Memory model: every slot field is a relaxed atomic bracketed by an
// acquire/release sequence counter (odd while the owner writes). Readers
// that race an overwrite observe a changed or odd sequence and drop the
// slot — never a torn span — and the scheme is explainable to TSan, unlike
// a classic char-buffer seqlock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/span.hpp"

namespace lama::obs {

class SpanRing {
 public:
  // Capacity is rounded up to a power of two; the ring overwrites oldest.
  explicit SpanRing(std::size_t capacity);

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  // Owner thread only.
  void push(const Span& span);

  // Any thread: appends every coherently-read span with this trace id.
  // Slots the owner is concurrently overwriting are skipped, so a
  // collection is complete for spans pushed before the call as long as
  // fewer than capacity() spans were pushed since (the tracer collects at
  // request end, immediately after the request's own spans).
  void collect(std::uint64_t trace_id, std::vector<Span>& out) const;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  // Spans ever pushed (owner-maintained; racy read for observability).
  [[nodiscard]] std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    // 0 = never written; odd = write in progress; even > 0 = generation.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> end_ns{0};
    std::atomic<std::uint32_t> tid{0};
    std::atomic<std::uint32_t> detail{0};
    std::atomic<std::uint8_t> stage{0};
  };

  std::vector<Slot> slots_;
  std::uint64_t head_ = 0;  // owner-only
  std::atomic<std::uint64_t> pushed_{0};
};

// The process-wide registry of rings. A thread's first recorded span leases
// a ring (creating one only when the free list is empty); the lease is
// returned at thread exit. Rings are never destroyed, so collect() may
// safely scan a ring whose last owner has exited — its spans stay readable
// until the ring is leased again and overwritten.
class RingRegistry {
 public:
  static constexpr std::size_t kRingCapacity = 512;

  // Never destroyed (leaked singleton): thread-exit hooks and late
  // collectors must outlive any static destruction order.
  static RingRegistry& instance();

  // The calling thread's leased ring; `tid` receives its stable index.
  SpanRing& local_ring(std::uint32_t& tid);

  // Scans every ring for spans of this trace.
  void collect(std::uint64_t trace_id, std::vector<Span>& out) const;

  [[nodiscard]] std::size_t num_rings() const;

 private:
  RingRegistry() = default;

  friend struct RingLease;
  std::uint32_t lease();
  void release(std::uint32_t tid);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SpanRing>> rings_;
  std::vector<std::uint32_t> free_;
};

}  // namespace lama::obs
