// The tracer ties the pieces together: it assigns trace ids, carries the
// active trace through thread-local context (with explicit handoff to the
// parallel-walk worker threads), decides via head-based sampling whether a
// finished request is worth assembling, and feeds assembled traces to the
// flight recorder. Failed requests are always assembled — sampling only
// thins the healthy traffic.
//
// Recording is free-function based (`span_begin` / `span_end` / SpanScope)
// so the lama mapping layers can emit spans without a tracer reference:
// when no trace is active on the thread the calls are a branch and return.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "obs/flight_recorder.hpp"
#include "obs/span.hpp"
#include "obs/stage_stats.hpp"

namespace lama::obs {

// ---- Thread-local trace context -------------------------------------------

// The identity of a trace active on some thread, for handoff: capture with
// current_trace() before spawning a worker, install in the worker with
// ScopedTrace. A default-constructed handle is "no trace" and installing it
// suspends tracing on the thread (used to detach inline batch jobs from the
// batch trace).
struct TraceHandle {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t begin_ns = 0;
  // The owning tracer's per-stage histograms, so span_end can record stage
  // latency without a tracer reference. Travels with the handoff: worker
  // threads feed the same stats as the thread that began the trace.
  StageStats* stats = nullptr;
  // Head-based sampling decision made at begin(): when false, span
  // recording is suppressed for the whole trace (span_begin returns 0).
  // An unsampled failure still assembles with just its root span.
  bool record = true;
  // A transport-level trace (socket accept, one readable event): its root
  // duration is connection plumbing, not a request, so it stays out of the
  // request-stage histogram and the tail gate's duration estimate.
  bool transport = false;
};

// Trace id active on this thread, 0 when none.
[[nodiscard]] std::uint64_t current_trace_id();
[[nodiscard]] TraceHandle current_trace();

// Installs a trace handle on this thread for the scope's lifetime and
// restores whatever was active before. Works across threads: the canonical
// use is capturing current_trace() on the spawning thread and constructing
// the ScopedTrace inside the worker.
class ScopedTrace {
 public:
  explicit ScopedTrace(const TraceHandle& handle);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceHandle saved_;
};

// Marks the next Tracer::begin() on this thread as a child of `parent_id`
// (a batch trace parenting its per-job traces). Consumed by one begin().
class ScopedParent {
 public:
  explicit ScopedParent(std::uint64_t parent_id);
  ~ScopedParent();
  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

 private:
  std::uint64_t saved_;
};

// ---- Span recording --------------------------------------------------------

// Start timestamp for a span, or 0 when no trace is active on this thread
// or the active trace is unsampled (the matching span_end with
// start_ns == 0 is a no-op, so instrumentation costs one TLS read when
// tracing is off and on un-sampled requests alike).
[[nodiscard]] std::uint64_t span_begin();
void span_end(Stage stage, std::uint32_t detail, std::uint64_t start_ns);

class SpanScope {
 public:
  explicit SpanScope(Stage stage, std::uint32_t detail = 0)
      : stage_(stage), detail_(detail), start_ns_(span_begin()) {}
  ~SpanScope() { span_end(stage_, detail_, start_ns_); }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void set_detail(std::uint32_t detail) { detail_ = detail; }

 private:
  Stage stage_;
  std::uint32_t detail_;
  std::uint64_t start_ns_;
};

// ---- The tracer ------------------------------------------------------------

struct TracerConfig {
  // Complete traces retained by the flight recorder.
  std::size_t flight_capacity = 16;
  // Head-based sampling: assemble 1-in-N healthy traces (0 = none,
  // 1 = every trace). Failures are always assembled.
  std::uint32_t sample_every = 64;
  // Perturbs which ids are sampled; fixed seed -> deterministic choice.
  std::uint64_t seed = 0;
  // Tail-triggered capture: assemble any trace noticeably slower than a
  // decayed p99 estimate of request duration, regardless of head sampling.
  // Captured traces get Outcome::kSlow and land in the flight recorder's
  // failure window (failure log + dump sink).
  bool tail_capture = true;
  // The gate never fires below this duration, so µs-scale warm-cache
  // traffic does not flood the recorder with noise "tails".
  std::uint64_t tail_floor_ns = 100 * 1000;
};

class Tracer {
 public:
  explicit Tracer(const TracerConfig& config);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Starts a trace and installs it as this thread's context. Returns the
  // id (never 0). Nesting is the caller's concern: TraceScope only begins
  // when no trace is active. `transport` marks connection-plumbing traces
  // (see TraceHandle::transport).
  std::uint64_t begin(bool transport = false);

  struct End {
    bool assembled = false;
    bool failure = false;
    // The tail gate fired: the request succeeded but ran slower than the
    // decayed p99 estimate and was captured as Outcome::kSlow.
    bool slow = false;
  };

  // Ends the trace: uninstalls the thread context and — when the outcome is
  // a failure or the id is sampled — collects its spans from every ring,
  // prepends the root request span, and hands the trace to the recorder.
  End end(std::uint64_t id, Outcome outcome);

  // The sampling decision for an id (deterministic in id and seed).
  [[nodiscard]] bool sampled(std::uint64_t id) const;

  [[nodiscard]] FlightRecorder& recorder() { return recorder_; }
  [[nodiscard]] const FlightRecorder& recorder() const { return recorder_; }
  [[nodiscard]] const TracerConfig& config() const { return config_; }

  [[nodiscard]] std::uint64_t started() const {
    return started_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t assembled() const {
    return assembled_.load(std::memory_order_relaxed);
  }
  // Traces captured by the tail gate (Outcome::kSlow).
  [[nodiscard]] std::uint64_t tail_captured() const {
    return tail_captured_.load(std::memory_order_relaxed);
  }
  // The current decayed p99 duration estimate driving the tail gate (ns).
  [[nodiscard]] std::uint64_t tail_threshold_ns() const {
    return tail_threshold_ns_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] StageStats& stage_stats() { return stage_stats_; }
  [[nodiscard]] const StageStats& stage_stats() const { return stage_stats_; }

 private:
  // Updates the decayed p99 estimate with one request duration and reports
  // whether the tail gate fires for it.
  bool tail_gate(std::uint64_t duration_ns);

  TracerConfig config_;
  FlightRecorder recorder_;
  StageStats stage_stats_;
  std::atomic<std::uint64_t> started_{0};
  std::atomic<std::uint64_t> assembled_{0};
  std::atomic<std::uint64_t> tail_captured_{0};
  std::atomic<std::uint64_t> tail_threshold_ns_{0};
  std::atomic<std::uint64_t> tail_warmup_{0};
};

// Begins a trace on construction if (a) a tracer is given and (b) no trace
// is already active on this thread — a MAPBATCH job traced by the protocol
// layer must not start a second trace inside MappingService::map. The
// outcome defaults to kError so an exception unwinding through the scope
// records a failure; success paths overwrite it via set_outcome.
class TraceScope {
 public:
  explicit TraceScope(Tracer* tracer, bool transport = false);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  void set_outcome(Outcome outcome) { outcome_ = outcome; }
  // 0 when this scope did not begin a trace.
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  Tracer* tracer_;
  std::uint64_t id_ = 0;
  Outcome outcome_ = Outcome::kError;
};

}  // namespace lama::obs
