// Topology-aware rank reordering: keep the *slots* of an existing mapping
// (which processes run where is already decided by the resource manager or
// a regular mapping) but permute which MPI rank occupies which slot so that
// heavily-communicating ranks end up close. This is the complementary
// technique to remapping in the literature the paper draws on (Jeannot &
// Mercier's line of work; MPI graph communicators): it needs no launch-time
// control, only a rank permutation the application applies.
//
// Algorithm: greedy pairwise exchange. Each pass evaluates every rank pair
// swap and applies the one with the largest cost reduction, repeating until
// no swap helps or the pass budget is exhausted. O(n^3) per pass — fine for
// node-level job sizes, deterministic.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/cluster.hpp"
#include "lama/mapping.hpp"
#include "sim/distance_model.hpp"
#include "tmatch/comm_matrix.hpp"

namespace lama {

struct ReorderResult {
  // permutation[new_rank] = slot index (the placement of the original
  // mapping that this rank now occupies).
  std::vector<int> permutation;
  double initial_cost_ns = 0.0;
  double final_cost_ns = 0.0;
  std::size_t swaps_applied = 0;
  std::size_t passes = 0;
  // The reordered mapping: placement[r] is the original slot permutation[r],
  // with rank fields rewritten.
  MappingResult mapping;

  [[nodiscard]] double improvement() const {
    return initial_cost_ns <= 0.0
               ? 0.0
               : (initial_cost_ns - final_cost_ns) / initial_cost_ns;
  }
};

// Reorders the mapping's ranks against the matrix. The mapping and matrix
// must agree on the process count. `max_passes` bounds the improvement
// loop (>= 1).
ReorderResult reorder_ranks(const Allocation& alloc,
                            const MappingResult& mapping,
                            const CommMatrix& matrix,
                            const DistanceModel& model,
                            std::size_t max_passes = 8);

}  // namespace lama
