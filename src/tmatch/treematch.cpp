#include "tmatch/treematch.hpp"

#include <algorithm>
#include <memory>

#include "lama/rmaps.hpp"
#include "support/error.hpp"

namespace lama {

namespace {

// Greedy affinity partition of `procs` into parts of the given sizes
// (sizes sum to procs.size()). Part i is seeded with the unassigned process
// of largest total communication and grown by maximum affinity to the part.
std::vector<std::vector<int>> partition(const CommMatrix& matrix,
                                        const std::vector<int>& procs,
                                        const std::vector<std::size_t>& sizes) {
  std::vector<std::vector<int>> parts(sizes.size());
  std::vector<int> remaining = procs;

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<int>& part = parts[i];
    while (part.size() < sizes[i]) {
      LAMA_ASSERT(!remaining.empty());
      std::size_t best = 0;
      double best_score = -1.0;
      for (std::size_t j = 0; j < remaining.size(); ++j) {
        // Affinity to the part under construction; for the seed, total
        // communication volume (gather the hubs first).
        const double score = part.empty()
                                 ? matrix.row_sum(remaining[j])
                                 : matrix.affinity(remaining[j], part);
        if (score > best_score) {
          best_score = score;
          best = j;
        }
      }
      part.push_back(remaining[best]);
      remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best));
    }
  }
  LAMA_ASSERT(remaining.empty());
  return parts;
}

struct TreeMatchRun {
  const Allocation& alloc;
  const CommMatrix& matrix;
  MappingResult result;

  // Recursively partitions `procs` below `obj` on node `node`. Leaves assign.
  void descend(std::size_t node, const TopoObject& obj,
               const std::vector<int>& procs, const Bitmap& online) {
    if (procs.empty()) return;
    if (obj.is_leaf()) {
      // One PU: capacity bookkeeping above guarantees exactly one process.
      for (int proc : procs) {
        Placement p;
        p.rank = proc;
        p.node = node;
        p.target_pus = obj.cpuset();
        result.placements.push_back(std::move(p));
        ++result.procs_per_node[node];
      }
      return;
    }

    // Children capacities = their online PU counts; fill in child order so
    // grouped processes stay under the earliest (deepest-shared) ancestors.
    std::vector<const TopoObject*> children;
    std::vector<std::size_t> capacities;
    std::size_t total = 0;
    for (std::size_t i = 0; i < obj.num_children(); ++i) {
      const TopoObject& child = obj.child(i);
      const std::size_t cap = (child.cpuset() & online).count();
      if (cap == 0) continue;  // off-lined subtree
      children.push_back(&child);
      capacities.push_back(cap);
      total += cap;
    }
    LAMA_ASSERT(total >= procs.size());

    // Sizes: pack child by child up to capacity.
    std::vector<std::size_t> sizes(children.size(), 0);
    std::size_t left = procs.size();
    for (std::size_t i = 0; i < children.size() && left > 0; ++i) {
      sizes[i] = std::min(left, capacities[i]);
      left -= sizes[i];
    }

    const std::vector<std::vector<int>> parts =
        partition(matrix, procs, sizes);
    for (std::size_t i = 0; i < children.size(); ++i) {
      descend(node, *children[i], parts[i], online);
    }
  }
};

}  // namespace

MappingResult map_treematch(const Allocation& alloc, const CommMatrix& matrix,
                            const MapOptions& opts) {
  alloc.validate();
  const std::size_t np =
      opts.np == 0 ? static_cast<std::size_t>(matrix.np()) : opts.np;
  if (np != static_cast<std::size_t>(matrix.np())) {
    throw MappingError("treematch: np " + std::to_string(np) +
                       " does not match the " + std::to_string(matrix.np()) +
                       "-process communication matrix");
  }
  if (opts.pus_per_proc != 1) {
    throw MappingError("treematch maps one processing unit per process");
  }
  if (np > alloc.total_online_pus()) {
    throw OversubscribeError(
        "treematch does not oversubscribe: " + std::to_string(np) +
        " processes exceed " + std::to_string(alloc.total_online_pus()) +
        " online processing units");
  }

  TreeMatchRun run{alloc, matrix, {}};
  run.result.layout = "treematch";
  run.result.procs_per_node.assign(alloc.num_nodes(), 0);
  run.result.sweeps = 1;

  // Top level: partition across nodes by online capacity.
  std::vector<int> procs(np);
  for (std::size_t i = 0; i < np; ++i) procs[i] = static_cast<int>(i);

  std::vector<std::size_t> sizes(alloc.num_nodes(), 0);
  std::size_t left = np;
  std::vector<Bitmap> online(alloc.num_nodes());
  for (std::size_t i = 0; i < alloc.num_nodes(); ++i) {
    online[i] = alloc.node(i).topo.online_pus();
    sizes[i] = std::min(left, online[i].count());
    left -= sizes[i];
  }

  const std::vector<std::vector<int>> parts =
      partition(matrix, procs, sizes);
  for (std::size_t i = 0; i < alloc.num_nodes(); ++i) {
    run.descend(i, alloc.node(i).topo.root(), parts[i], online[i]);
  }

  // Placements were appended in tree order; re-sort by rank.
  std::sort(run.result.placements.begin(), run.result.placements.end(),
            [](const Placement& a, const Placement& b) {
              return a.rank < b.rank;
            });
  run.result.visited = np;
  return run.result;
}

namespace {

class TreeMatchComponent final : public RmapsComponent {
 public:
  explicit TreeMatchComponent(CommMatrix matrix)
      : matrix_(std::move(matrix)) {}

  [[nodiscard]] std::string name() const override { return "treematch"; }
  [[nodiscard]] int priority() const override { return 40; }
  [[nodiscard]] MappingResult map(const Allocation& alloc, const std::string&,
                                  const MapOptions& opts) const override {
    return map_treematch(alloc, matrix_, opts);
  }

 private:
  CommMatrix matrix_;
};

}  // namespace

void register_treematch_component(RmapsRegistry& registry,
                                  CommMatrix matrix) {
  registry.register_component(
      std::make_unique<TreeMatchComponent>(std::move(matrix)));
}

}  // namespace lama
