// Process-to-process communication matrix: the input of affinity-driven
// mapping algorithms (Jeannot & Mercier's TreeMatch, cited as [3] in the
// paper's related work). Symmetric byte volumes; the diagonal is ignored.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/traffic.hpp"

namespace lama {

class CommMatrix {
 public:
  explicit CommMatrix(int np);

  // Accumulates a pattern's messages (volumes add up; direction ignored).
  static CommMatrix from_pattern(const TrafficPattern& pattern);

  // Text format for profiled matrices (the way a tool like mpiP or a PMPI
  // tracer would hand the data over):
  //   np <N>
  //   <src> <dst> <bytes>     # one edge per line, comments allowed
  static CommMatrix parse(const std::string& text);
  [[nodiscard]] std::string serialize() const;

  [[nodiscard]] int np() const { return np_; }

  void add(int a, int b, double bytes);
  [[nodiscard]] double at(int a, int b) const;

  // Total volume process `p` exchanges with everyone.
  [[nodiscard]] double row_sum(int p) const;

  // Volume `p` exchanges with the given set of processes.
  [[nodiscard]] double affinity(int p, const std::vector<int>& group) const;

 private:
  int np_;
  std::vector<double> cells_;  // np x np, symmetric
};

}  // namespace lama
