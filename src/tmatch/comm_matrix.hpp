// Process-to-process communication matrix: the input of affinity-driven
// mapping algorithms (Jeannot & Mercier's TreeMatch, cited as [3] in the
// paper's related work). Symmetric byte volumes; the diagonal is ignored.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/traffic.hpp"

namespace lama {

class CommMatrix {
 public:
  explicit CommMatrix(int np);

  // Accumulates a pattern's messages (volumes add up; direction ignored).
  static CommMatrix from_pattern(const TrafficPattern& pattern);

  // Text format for profiled matrices (the way a tool like mpiP or a PMPI
  // tracer would hand the data over):
  //   np <N>
  //   <src> <dst> <bytes>     # one edge per line, comments allowed
  //   row <i> <v0> ... <v(np-1)>  # or dense rows; must be np values and
  //                               # the assembled matrix must be symmetric
  // Edge and row weights must be finite and non-negative; a dense row with
  // the wrong value count (a non-square matrix) is rejected. These are the
  // wire-facing invariants the service's OPTIMIZE verb depends on.
  static CommMatrix parse(const std::string& text);
  [[nodiscard]] std::string serialize() const;

  // Canonical content hash: np plus every upper-triangle cell, independent
  // of the order edges were added or rows were listed in. The optimizer
  // cache keys results under (allocation fingerprint, matrix digest), so
  // two semantically identical matrices must collide here by construction.
  [[nodiscard]] std::uint64_t digest() const;

  [[nodiscard]] int np() const { return np_; }

  void add(int a, int b, double bytes);
  [[nodiscard]] double at(int a, int b) const;

  // Total volume process `p` exchanges with everyone.
  [[nodiscard]] double row_sum(int p) const;

  // Volume `p` exchanges with the given set of processes.
  [[nodiscard]] double affinity(int p, const std::vector<int>& group) const;

 private:
  int np_;
  std::vector<double> cells_;  // np x np, symmetric
};

}  // namespace lama
