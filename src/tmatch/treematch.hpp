// Communication-aware hierarchical mapping in the spirit of TreeMatch
// (Jeannot & Mercier, Euro-Par 2010 — reference [3] of the paper). Where the
// LAMA applies a *pattern-agnostic* user-chosen iteration order, this
// algorithm consumes the application's communication matrix and recursively
// partitions the processes down the hardware tree so that heavily-
// communicating processes land under shared ancestors.
//
// The partitioner is greedy: at each tree object, processes are split among
// the children (respecting each child's online-PU capacity, filled in child
// order) by repeatedly seeding a part with the most-communicating unassigned
// process and growing it with the process of highest affinity to the part.
// This is the classic quality/complexity trade-off of the TreeMatch family:
// O(n^2 · depth), deterministic, near-optimal on hierarchical topologies.
#pragma once

#include "cluster/cluster.hpp"
#include "lama/mapper.hpp"
#include "lama/mapping.hpp"
#include "tmatch/comm_matrix.hpp"

namespace lama {

// Maps `matrix.np()` processes. MapOptions::np must equal matrix.np() (or be
// 0, in which case it is taken from the matrix). Unlike the LAMA this
// algorithm does not wrap around: np beyond the online capacity throws
// OversubscribeError regardless of policy. Iteration policies are not
// consulted (the matrix, not an order, drives placement).
MappingResult map_treematch(const Allocation& alloc, const CommMatrix& matrix,
                            const MapOptions& opts);

// Registers a "treematch" rmaps component (priority 40) bound to a fixed
// communication matrix. Component args are unused.
class RmapsRegistry;  // lama/rmaps.hpp
void register_treematch_component(RmapsRegistry& registry, CommMatrix matrix);

}  // namespace lama
