#include "tmatch/comm_matrix.hpp"

#include <array>
#include <cstdio>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace lama {

CommMatrix::CommMatrix(int np) : np_(np) {
  if (np <= 0) throw MappingError("communication matrix needs processes");
  cells_.assign(static_cast<std::size_t>(np) * static_cast<std::size_t>(np),
                0.0);
}

CommMatrix CommMatrix::from_pattern(const TrafficPattern& pattern) {
  CommMatrix m(pattern.np);
  for (const Message& msg : pattern.messages) {
    m.add(msg.src, msg.dst, static_cast<double>(msg.bytes));
  }
  return m;
}

CommMatrix CommMatrix::parse(const std::string& text) {
  int np = -1;
  std::vector<std::array<double, 3>> edges;
  for (const std::string& raw_line : split(text, '\n')) {
    std::string line = raw_line;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> fields = split_ws(line);
    if (fields.empty()) continue;
    if (fields[0] == "np") {
      if (fields.size() != 2 || np != -1) {
        throw ParseError("matrix header must be a single 'np <N>' line");
      }
      np = static_cast<int>(parse_size(fields[1], "matrix process count"));
      continue;
    }
    if (fields.size() != 3) {
      throw ParseError("matrix edge must be '<src> <dst> <bytes>': '" +
                       trim(line) + "'");
    }
    edges.push_back({static_cast<double>(parse_size(fields[0], "matrix src")),
                     static_cast<double>(parse_size(fields[1], "matrix dst")),
                     static_cast<double>(
                         parse_size(fields[2], "matrix bytes"))});
  }
  if (np <= 0) {
    throw ParseError("matrix file missing 'np <N>' header");
  }
  CommMatrix m(np);
  for (const auto& [src, dst, bytes] : edges) {
    if (src >= np || dst >= np) {
      throw ParseError("matrix edge references rank beyond np");
    }
    m.add(static_cast<int>(src), static_cast<int>(dst), bytes);
  }
  return m;
}

std::string CommMatrix::serialize() const {
  std::string out = "np " + std::to_string(np_) + "\n";
  char buf[64];
  for (int a = 0; a < np_; ++a) {
    for (int b = a + 1; b < np_; ++b) {
      const double bytes = at(a, b);
      if (bytes <= 0.0) continue;
      // One line per undirected edge; parse() re-adds it symmetrically.
      std::snprintf(buf, sizeof(buf), "%d %d %.0f\n", a, b, bytes);
      out += buf;
    }
  }
  return out;
}

void CommMatrix::add(int a, int b, double bytes) {
  LAMA_ASSERT(a >= 0 && a < np_ && b >= 0 && b < np_);
  if (a == b) return;
  cells_[static_cast<std::size_t>(a) * static_cast<std::size_t>(np_) +
         static_cast<std::size_t>(b)] += bytes;
  cells_[static_cast<std::size_t>(b) * static_cast<std::size_t>(np_) +
         static_cast<std::size_t>(a)] += bytes;
}

double CommMatrix::at(int a, int b) const {
  LAMA_ASSERT(a >= 0 && a < np_ && b >= 0 && b < np_);
  return cells_[static_cast<std::size_t>(a) * static_cast<std::size_t>(np_) +
                static_cast<std::size_t>(b)];
}

double CommMatrix::row_sum(int p) const {
  double total = 0.0;
  for (int q = 0; q < np_; ++q) total += at(p, q);
  return total;
}

double CommMatrix::affinity(int p, const std::vector<int>& group) const {
  double total = 0.0;
  for (int q : group) total += at(p, q);
  return total;
}

}  // namespace lama
