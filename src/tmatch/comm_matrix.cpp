#include "tmatch/comm_matrix.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"

namespace lama {

namespace {

// Weights come off the wire: reject anything that is not a finite,
// non-negative number before it can poison an accumulation.
double parse_weight(const std::string& text, const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    throw ParseError(std::string(what) + " is not a number: '" + text + "'");
  }
  if (consumed != text.size()) {
    throw ParseError(std::string(what) + " has trailing characters: '" + text +
                     "'");
  }
  if (!std::isfinite(value) || value < 0.0) {
    throw ParseError(std::string(what) +
                     " must be finite and non-negative: '" + text + "'");
  }
  return value;
}

}  // namespace

CommMatrix::CommMatrix(int np) : np_(np) {
  if (np <= 0) throw MappingError("communication matrix needs processes");
  cells_.assign(static_cast<std::size_t>(np) * static_cast<std::size_t>(np),
                0.0);
}

CommMatrix CommMatrix::from_pattern(const TrafficPattern& pattern) {
  CommMatrix m(pattern.np);
  for (const Message& msg : pattern.messages) {
    m.add(msg.src, msg.dst, static_cast<double>(msg.bytes));
  }
  return m;
}

CommMatrix CommMatrix::parse(const std::string& text) {
  int np = -1;
  std::vector<std::array<double, 3>> edges;
  // Dense rows are collected separately: they *set* cells (both triangles),
  // so symmetry is an input property to verify, not a side effect of add().
  std::vector<std::pair<int, std::vector<double>>> rows;
  for (const std::string& raw_line : split(text, '\n')) {
    std::string line = raw_line;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> fields = split_ws(line);
    if (fields.empty()) continue;
    if (fields[0] == "np") {
      if (fields.size() != 2 || np != -1) {
        throw ParseError("matrix header must be a single 'np <N>' line");
      }
      np = static_cast<int>(parse_size(fields[1], "matrix process count"));
      continue;
    }
    if (fields[0] == "row") {
      if (np <= 0) {
        throw ParseError("matrix 'row' lines must follow the 'np <N>' header");
      }
      if (fields.size() != 2 + static_cast<std::size_t>(np)) {
        throw ParseError("matrix row must carry exactly np=" +
                         std::to_string(np) + " values (non-square input): '" +
                         trim(line) + "'");
      }
      std::vector<double> values;
      values.reserve(static_cast<std::size_t>(np));
      for (std::size_t i = 2; i < fields.size(); ++i) {
        values.push_back(parse_weight(fields[i], "matrix row weight"));
      }
      rows.emplace_back(
          static_cast<int>(parse_size(fields[1], "matrix row index")),
          std::move(values));
      continue;
    }
    if (fields.size() != 3) {
      throw ParseError("matrix edge must be '<src> <dst> <bytes>': '" +
                       trim(line) + "'");
    }
    edges.push_back({static_cast<double>(parse_size(fields[0], "matrix src")),
                     static_cast<double>(parse_size(fields[1], "matrix dst")),
                     parse_weight(fields[2], "matrix bytes")});
  }
  if (np <= 0) {
    throw ParseError("matrix file missing 'np <N>' header");
  }
  CommMatrix m(np);
  for (const auto& [src, dst, bytes] : edges) {
    if (src >= np || dst >= np) {
      throw ParseError("matrix edge references rank beyond np");
    }
    m.add(static_cast<int>(src), static_cast<int>(dst), bytes);
  }
  for (const auto& [index, values] : rows) {
    if (index >= np) {
      throw ParseError("matrix row index beyond np");
    }
    for (int q = 0; q < np; ++q) {
      if (q == index) continue;
      m.cells_[static_cast<std::size_t>(index) *
                   static_cast<std::size_t>(np) +
               static_cast<std::size_t>(q)] +=
          values[static_cast<std::size_t>(q)];
    }
  }
  if (!rows.empty()) {
    // A dense listing must describe a symmetric (square, undirected) matrix.
    for (int a = 0; a < np; ++a) {
      for (int b = a + 1; b < np; ++b) {
        if (m.at(a, b) != m.at(b, a)) {
          throw ParseError("matrix rows are not symmetric at (" +
                           std::to_string(a) + "," + std::to_string(b) + ")");
        }
      }
    }
  }
  return m;
}

std::string CommMatrix::serialize() const {
  std::string out = "np " + std::to_string(np_) + "\n";
  char buf[64];
  for (int a = 0; a < np_; ++a) {
    for (int b = a + 1; b < np_; ++b) {
      const double bytes = at(a, b);
      if (bytes <= 0.0) continue;
      // One line per undirected edge; parse() re-adds it symmetrically.
      std::snprintf(buf, sizeof(buf), "%d %d %.0f\n", a, b, bytes);
      out += buf;
    }
  }
  return out;
}

std::uint64_t CommMatrix::digest() const {
  // Upper triangle in (a, b) order: the accumulation into cells_ already
  // canonicalized edge order and direction, so any two semantically equal
  // matrices walk identical bytes here.
  std::uint64_t h = fnv1a64("comm-matrix");
  h = hash_combine(h, static_cast<std::uint64_t>(np_));
  for (int a = 0; a < np_; ++a) {
    for (int b = a + 1; b < np_; ++b) {
      const double bytes = at(a, b);
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(bytes));
      std::memcpy(&bits, &bytes, sizeof(bits));
      h = hash_combine(h, bits);
    }
  }
  return h;
}

void CommMatrix::add(int a, int b, double bytes) {
  LAMA_ASSERT(a >= 0 && a < np_ && b >= 0 && b < np_);
  if (!std::isfinite(bytes) || bytes < 0.0) {
    throw MappingError("communication volume must be finite and non-negative");
  }
  if (a == b) return;
  cells_[static_cast<std::size_t>(a) * static_cast<std::size_t>(np_) +
         static_cast<std::size_t>(b)] += bytes;
  cells_[static_cast<std::size_t>(b) * static_cast<std::size_t>(np_) +
         static_cast<std::size_t>(a)] += bytes;
}

double CommMatrix::at(int a, int b) const {
  LAMA_ASSERT(a >= 0 && a < np_ && b >= 0 && b < np_);
  return cells_[static_cast<std::size_t>(a) * static_cast<std::size_t>(np_) +
                static_cast<std::size_t>(b)];
}

double CommMatrix::row_sum(int p) const {
  double total = 0.0;
  for (int q = 0; q < np_; ++q) total += at(p, q);
  return total;
}

double CommMatrix::affinity(int p, const std::vector<int>& group) const {
  double total = 0.0;
  for (int q : group) total += at(p, q);
  return total;
}

}  // namespace lama
