#include "tmatch/reorder.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace lama {

namespace {

// Pairwise communication cost between two slots for a given byte volume.
struct SlotCoster {
  const Allocation& alloc;
  const DistanceModel& model;
  std::vector<std::size_t> node;
  std::vector<std::size_t> pu;

  SlotCoster(const Allocation& a, const MappingResult& mapping,
             const DistanceModel& m)
      : alloc(a), model(m) {
    node.resize(mapping.placements.size());
    pu.resize(mapping.placements.size());
    for (std::size_t s = 0; s < mapping.placements.size(); ++s) {
      node[s] = mapping.placements[s].node;
      pu[s] = mapping.placements[s].representative_pu();
    }
  }

  [[nodiscard]] double pair_ns(int slot_a, int slot_b, double bytes) const {
    if (bytes <= 0.0) return 0.0;
    return model.message_ns(alloc, node[static_cast<std::size_t>(slot_a)],
                            pu[static_cast<std::size_t>(slot_a)],
                            node[static_cast<std::size_t>(slot_b)],
                            pu[static_cast<std::size_t>(slot_b)],
                            static_cast<std::size_t>(bytes));
  }
};

}  // namespace

ReorderResult reorder_ranks(const Allocation& alloc,
                            const MappingResult& mapping,
                            const CommMatrix& matrix,
                            const DistanceModel& model,
                            std::size_t max_passes) {
  const int np = static_cast<int>(mapping.placements.size());
  if (np != matrix.np()) {
    throw MappingError("reorder: mapping has " + std::to_string(np) +
                       " ranks, matrix " + std::to_string(matrix.np()));
  }
  if (max_passes == 0) {
    throw MappingError("reorder needs at least one pass");
  }

  const SlotCoster coster(alloc, mapping, model);
  // slot_of[rank] = slot currently occupied by that rank.
  std::vector<int> slot_of(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) slot_of[static_cast<std::size_t>(r)] = r;

  // Cost of one rank against everyone, under the current assignment.
  auto rank_cost = [&](int r) {
    double ns = 0.0;
    for (int q = 0; q < np; ++q) {
      if (q == r) continue;
      const double bytes = matrix.at(r, q);
      if (bytes > 0.0) {
        ns += coster.pair_ns(slot_of[static_cast<std::size_t>(r)],
                             slot_of[static_cast<std::size_t>(q)], bytes);
      }
    }
    return ns;
  };
  auto total_cost = [&]() {
    double ns = 0.0;
    for (int r = 0; r < np; ++r) ns += rank_cost(r);
    return ns / 2.0;  // every pair counted twice
  };

  ReorderResult result;
  result.initial_cost_ns = total_cost();

  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    ++result.passes;
    bool improved = false;
    for (int a = 0; a < np; ++a) {
      for (int b = a + 1; b < np; ++b) {
        // Gain of swapping the slots of ranks a and b: only their own rows
        // change; the a<->b term itself is symmetric and cancels.
        const double before = rank_cost(a) + rank_cost(b);
        std::swap(slot_of[static_cast<std::size_t>(a)],
                  slot_of[static_cast<std::size_t>(b)]);
        const double after = rank_cost(a) + rank_cost(b);
        if (after + 1e-9 < before) {
          improved = true;  // keep the swap
          ++result.swaps_applied;
        } else {
          std::swap(slot_of[static_cast<std::size_t>(a)],
                    slot_of[static_cast<std::size_t>(b)]);
        }
      }
    }
    if (!improved) break;  // local optimum
  }

  result.final_cost_ns = total_cost();
  result.permutation = slot_of;

  // Materialize the reordered mapping.
  result.mapping = mapping;
  result.mapping.layout = mapping.layout + "+reorder";
  for (int r = 0; r < np; ++r) {
    result.mapping.placements[static_cast<std::size_t>(r)] =
        mapping.placements[static_cast<std::size_t>(
            slot_of[static_cast<std::size_t>(r)])];
    result.mapping.placements[static_cast<std::size_t>(r)].rank = r;
  }
  return result;
}

}  // namespace lama
