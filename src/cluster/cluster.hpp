// A multi-node HPC system and the slice of it handed to one job. Plays the
// role of the resource manager (SLURM/ALPS in the paper): it knows every
// node's hardware topology and produces allocations at node, slot, or core
// granularity.
#pragma once

#include <string>
#include <vector>

#include "support/bitmap.hpp"
#include "topo/node_topology.hpp"

namespace lama {

struct ClusterNode {
  NodeTopology topo;
  // Scheduler slot count: how many processes the resource manager allows on
  // this node (0 = default to the number of PUs).
  std::size_t slots = 0;

  [[nodiscard]] std::size_t effective_slots() const {
    return slots == 0 ? topo.pu_count() : slots;
  }
};

class Cluster {
 public:
  // Homogeneous system: `num_nodes` copies of one synthetic description.
  // Node names are "<prefix><i>".
  static Cluster homogeneous(std::size_t num_nodes,
                             const std::string& synthetic_desc,
                             const std::string& prefix = "node");

  void add_node(NodeTopology topo, std::size_t slots = 0);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] const ClusterNode& node(std::size_t i) const;
  [[nodiscard]] ClusterNode& mutable_node(std::size_t i);
  // Index by node name; throws MappingError when unknown.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  [[nodiscard]] std::size_t total_pus() const;

  // True when every node reports an identical level structure and per-level
  // counts (the paper's homogeneous-hardware case).
  [[nodiscard]] bool is_homogeneous() const;

 private:
  std::vector<ClusterNode> nodes_;
};

// The resources granted to one job: an ordered list of nodes, each with a
// (possibly restricted) copy of its topology and a slot count. The mapping
// agent works exclusively from an Allocation, exactly as the paper's mapping
// agent works from the topologies of the allocated nodes.
struct AllocatedNode {
  std::size_t cluster_index;  // position in the owning Cluster
  NodeTopology topo;          // restrictions already applied
  std::size_t slots;
};

class Allocation {
 public:
  void add(AllocatedNode node) { nodes_.push_back(std::move(node)); }

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] const AllocatedNode& node(std::size_t i) const;
  [[nodiscard]] AllocatedNode& mutable_node(std::size_t i);

  // Sum of online PUs across allocated nodes.
  [[nodiscard]] std::size_t total_online_pus() const;
  // Sum of slots.
  [[nodiscard]] std::size_t total_slots() const;

  // Throws MappingError when the allocation cannot run anything (no nodes or
  // every PU off-lined).
  void validate() const;

 private:
  std::vector<AllocatedNode> nodes_;
};

// Whole-cluster allocation (every node, unrestricted).
Allocation allocate_all(const Cluster& cluster);

// Allocation of an explicit node subset.
Allocation allocate_nodes(const Cluster& cluster,
                          const std::vector<std::size_t>& node_indices);

// Core-granular allocation: per node, only the PUs in `allowed` are online.
// Pairs of (node index, allowed cpuset).
Allocation allocate_cores(
    const Cluster& cluster,
    const std::vector<std::pair<std::size_t, Bitmap>>& grants);

// Parse a cluster description file: one node per line,
//   <name> <synthetic description...> [slots=N]
//   # comments and blank lines are ignored
// e.g. "node0 socket:2 core:4 pu:2 slots=8". Throws ParseError on malformed
// lines or duplicate names.
Cluster parse_cluster_file(const std::string& text);

// Parse a hostfile:
//   node0 slots=4
//   node1            # defaults to all PUs
//   node0 slots=2    # repeated names accumulate slots
// Lines starting with '#' and blank lines are ignored. Unknown node names
// throw MappingError; malformed lines throw ParseError.
Allocation parse_hostfile(const Cluster& cluster, const std::string& text);

}  // namespace lama
