#include "cluster/alloc_serialize.hpp"

#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/strings.hpp"
#include "topo/fingerprint.hpp"
#include "topo/serialize.hpp"

namespace lama {

std::string serialize_allocation(const Allocation& alloc) {
  std::string out;
  for (std::size_t i = 0; i < alloc.num_nodes(); ++i) {
    const AllocatedNode& n = alloc.node(i);
    out += std::to_string(n.slots);
    out += ' ';
    out += serialize_topology(n.topo);
    out += '\n';
  }
  return out;
}

Allocation parse_allocation(const std::string& text) {
  Allocation alloc;
  std::size_t index = 0;
  for (const std::string& raw : split(text, '\n')) {
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.find(' ');
    if (space == std::string::npos) {
      throw ParseError("allocation line needs '<slots> <topology>': " + line);
    }
    const std::size_t slots =
        parse_size(line.substr(0, space), "allocation slots");
    NodeTopology topo = parse_topology(line.substr(space + 1),
                                       "node" + std::to_string(index));
    alloc.add(AllocatedNode{index, std::move(topo), slots});
    ++index;
  }
  return alloc;
}

std::uint64_t allocation_fingerprint(const Allocation& alloc) {
  std::uint64_t h = mix64(alloc.num_nodes() + 1);
  for (std::size_t i = 0; i < alloc.num_nodes(); ++i) {
    const AllocatedNode& n = alloc.node(i);
    h = hash_combine(h, topology_fingerprint(n.topo));
    h = hash_combine(h, n.slots);
  }
  return h;
}

}  // namespace lama
