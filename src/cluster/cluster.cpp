#include "cluster/cluster.hpp"

#include <map>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace lama {

Cluster Cluster::homogeneous(std::size_t num_nodes,
                             const std::string& synthetic_desc,
                             const std::string& prefix) {
  Cluster cluster;
  for (std::size_t i = 0; i < num_nodes; ++i) {
    cluster.add_node(
        NodeTopology::synthetic(synthetic_desc, prefix + std::to_string(i)));
  }
  return cluster;
}

void Cluster::add_node(NodeTopology topo, std::size_t slots) {
  nodes_.push_back(ClusterNode{std::move(topo), slots});
}

const ClusterNode& Cluster::node(std::size_t i) const {
  LAMA_ASSERT(i < nodes_.size());
  return nodes_[i];
}

ClusterNode& Cluster::mutable_node(std::size_t i) {
  LAMA_ASSERT(i < nodes_.size());
  return nodes_[i];
}

std::size_t Cluster::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].topo.name() == name) return i;
  }
  throw MappingError("unknown node name: '" + name + "'");
}

std::size_t Cluster::total_pus() const {
  std::size_t total = 0;
  for (const ClusterNode& n : nodes_) total += n.topo.pu_count();
  return total;
}

bool Cluster::is_homogeneous() const {
  if (nodes_.size() <= 1) return true;
  const NodeTopology& ref = nodes_.front().topo;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const NodeTopology& topo = nodes_[i].topo;
    if (topo.levels() != ref.levels()) return false;
    for (ResourceType t : ref.levels()) {
      if (topo.count(t) != ref.count(t)) return false;
    }
  }
  return true;
}

const AllocatedNode& Allocation::node(std::size_t i) const {
  LAMA_ASSERT(i < nodes_.size());
  return nodes_[i];
}

AllocatedNode& Allocation::mutable_node(std::size_t i) {
  LAMA_ASSERT(i < nodes_.size());
  return nodes_[i];
}

std::size_t Allocation::total_online_pus() const {
  std::size_t total = 0;
  for (const AllocatedNode& n : nodes_) total += n.topo.online_pus().count();
  return total;
}

std::size_t Allocation::total_slots() const {
  std::size_t total = 0;
  for (const AllocatedNode& n : nodes_) total += n.slots;
  return total;
}

void Allocation::validate() const {
  if (nodes_.empty()) {
    throw MappingError("allocation contains no nodes");
  }
  if (total_online_pus() == 0) {
    throw MappingError("allocation contains no online processing units");
  }
}

Allocation allocate_all(const Cluster& cluster) {
  std::vector<std::size_t> all(cluster.num_nodes());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return allocate_nodes(cluster, all);
}

Allocation allocate_nodes(const Cluster& cluster,
                          const std::vector<std::size_t>& node_indices) {
  Allocation alloc;
  for (std::size_t idx : node_indices) {
    const ClusterNode& n = cluster.node(idx);
    alloc.add(AllocatedNode{idx, n.topo, n.effective_slots()});
  }
  return alloc;
}

Allocation allocate_cores(
    const Cluster& cluster,
    const std::vector<std::pair<std::size_t, Bitmap>>& grants) {
  Allocation alloc;
  for (const auto& [idx, allowed] : grants) {
    const ClusterNode& n = cluster.node(idx);
    NodeTopology topo = n.topo;
    topo.restrict_pus(allowed);
    const std::size_t granted = topo.online_pus().count();
    if (granted == 0) {
      throw MappingError("core-granular grant for '" + n.topo.name() +
                         "' contains no usable PUs");
    }
    alloc.add(AllocatedNode{idx, std::move(topo), granted});
  }
  return alloc;
}

Cluster parse_cluster_file(const std::string& text) {
  Cluster cluster;
  std::map<std::string, bool> seen;
  for (const std::string& raw_line : split(text, '\n')) {
    std::string line = raw_line;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::vector<std::string> fields = split_ws(line);
    if (fields.empty()) continue;
    if (fields.size() < 2) {
      throw ParseError("cluster-file line needs a name and a topology: '" +
                       trim(line) + "'");
    }
    const std::string name = fields[0];
    if (seen[name]) {
      throw ParseError("cluster-file repeats node name '" + name + "'");
    }
    seen[name] = true;

    std::size_t slots = 0;
    std::string desc;
    for (std::size_t i = 1; i < fields.size(); ++i) {
      if (starts_with(fields[i], "slots=")) {
        slots = parse_size(fields[i].substr(6), "cluster-file slots");
      } else {
        if (!desc.empty()) desc += ' ';
        desc += fields[i];
      }
    }
    cluster.add_node(NodeTopology::synthetic(desc, name), slots);
  }
  if (cluster.num_nodes() == 0) {
    throw ParseError("cluster file lists no nodes");
  }
  return cluster;
}

Allocation parse_hostfile(const Cluster& cluster, const std::string& text) {
  // Accumulate slots per node, preserving first-appearance order.
  std::vector<std::string> order;
  std::map<std::string, std::size_t> slots;
  for (const std::string& raw_line : split(text, '\n')) {
    std::string line = raw_line;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> fields = split_ws(line);
    if (fields.empty()) continue;
    const std::string& name = fields[0];
    std::size_t line_slots = 0;
    bool slots_given = false;
    for (std::size_t i = 1; i < fields.size(); ++i) {
      if (starts_with(fields[i], "slots=")) {
        line_slots = parse_size(fields[i].substr(6), "hostfile slots");
        slots_given = true;
      } else {
        throw ParseError("unrecognized hostfile field: '" + fields[i] + "'");
      }
    }
    const std::size_t cluster_index = cluster.index_of(name);
    if (!slots_given) {
      line_slots = cluster.node(cluster_index).topo.pu_count();
    }
    if (slots.find(name) == slots.end()) order.push_back(name);
    slots[name] += line_slots;
  }
  if (order.empty()) {
    throw ParseError("hostfile lists no nodes");
  }

  Allocation alloc;
  for (const std::string& name : order) {
    const std::size_t idx = cluster.index_of(name);
    alloc.add(AllocatedNode{idx, cluster.node(idx).topo, slots[name]});
  }
  return alloc;
}

}  // namespace lama
