// Allocation wire format for the mapping service (svc/): the paper's runtime
// ships each node's probed topology to the mapping agent, and the service
// generalizes that to shipping a whole allocation per client. One node per
// line:
//
//   <slots> <topology s-expression>
//
// e.g. "8 (node (socket@0 (core@0 (pu@0) (pu@1))))". The cluster index is
// not part of the wire form — a served allocation stands alone, and parsing
// assigns indices in line order.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/cluster.hpp"

namespace lama {

std::string serialize_allocation(const Allocation& alloc);

// Throws ParseError on malformed lines; blank lines and '#' comments are
// ignored.
Allocation parse_allocation(const std::string& text);

// Stable 64-bit identity of an allocation for cache keying: chains each
// node's topology_fingerprint with its slot count, in allocation order.
// Everything that changes mapping output — tree shape, disabled objects,
// slots, node order, node count — changes the fingerprint; node names and
// cluster indices (which only label output) do not.
std::uint64_t allocation_fingerprint(const Allocation& alloc);

}  // namespace lama
