#include "mpi/minimpi.hpp"

#include "support/error.hpp"

namespace lama {

namespace {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

Comm::Comm(int rank, int size, RankScript& script)
    : rank_(rank), size_(size), script_(script) {
  LAMA_ASSERT(size >= 1 && rank >= 0 && rank < size);
}

void Comm::compute(double ns) {
  if (ns < 0.0) throw MappingError("compute time must be non-negative");
  script_.push_back({OpKind::kCompute, ns, -1, 0});
}

void Comm::send(int dst, std::size_t bytes) {
  if (dst < 0 || dst >= size_ || dst == rank_) {
    throw MappingError("invalid send destination " + std::to_string(dst));
  }
  script_.push_back({OpKind::kSend, 0.0, dst, bytes});
}

void Comm::recv(int src) {
  if (src < 0 || src >= size_ || src == rank_) {
    throw MappingError("invalid recv source " + std::to_string(src));
  }
  script_.push_back({OpKind::kRecv, 0.0, src, 0});
}

void Comm::sendrecv(int peer, std::size_t bytes) {
  send(peer, bytes);
  recv(peer);
}

void Comm::barrier() {
  if (size_ == 1) return;
  for (int dist = 1; dist < size_; dist *= 2) {
    const int to = (rank_ + dist) % size_;
    const int from = (rank_ - dist + size_) % size_;
    send(to, 0);
    recv(from);
  }
}

void Comm::bcast(int root, std::size_t bytes) {
  if (root < 0 || root >= size_) {
    throw MappingError("invalid bcast root " + std::to_string(root));
  }
  if (size_ == 1) return;
  const int vr = (rank_ - root + size_) % size_;  // relative rank
  for (int dist = 1; dist < size_; dist *= 2) {
    if (vr < dist) {
      // Already has the data; forward if the partner exists.
      if (vr + dist < size_) send((vr + dist + root) % size_, bytes);
    } else if (vr < 2 * dist) {
      recv((vr - dist + root) % size_);
    }
  }
}

void Comm::allreduce(std::size_t bytes) {
  if (size_ == 1) return;
  if (is_power_of_two(size_)) {
    for (int dist = 1; dist < size_; dist *= 2) {
      sendrecv(rank_ ^ dist, bytes);
    }
    return;
  }
  // Fallback: reduce to rank 0, then broadcast.
  if (rank_ == 0) {
    for (int src = 1; src < size_; ++src) recv(src);
  } else {
    send(0, bytes);
  }
  bcast(0, bytes);
}

void Comm::allgather(std::size_t block_bytes) {
  if (size_ == 1) return;
  const int right = (rank_ + 1) % size_;
  const int left = (rank_ - 1 + size_) % size_;
  for (int round = 0; round < size_ - 1; ++round) {
    send(right, block_bytes);
    recv(left);
  }
}

void Comm::alltoall(std::size_t bytes) {
  if (size_ == 1) return;
  if (is_power_of_two(size_)) {
    for (int k = 1; k < size_; ++k) {
      sendrecv(rank_ ^ k, bytes);
    }
    return;
  }
  for (int k = 1; k < size_; ++k) {
    send((rank_ + k) % size_, bytes);
    recv((rank_ - k + size_) % size_);
  }
}

std::vector<RankScript> record_program(
    int np, const std::function<void(Comm&)>& spmd) {
  if (np <= 0) throw MappingError("program needs at least one rank");
  std::vector<RankScript> scripts(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) {
    Comm comm(r, np, scripts[static_cast<std::size_t>(r)]);
    spmd(comm);
  }
  return scripts;
}

SimReport run_program(const Allocation& alloc, const MappingResult& mapping,
                      const std::function<void(Comm&)>& spmd,
                      const DistanceModel& model, const NicModel& nic) {
  const std::vector<RankScript> scripts =
      record_program(static_cast<int>(mapping.placements.size()), spmd);
  return simulate(alloc, mapping, scripts, model, nic);
}

}  // namespace lama
