// A miniature MPI-like programming layer over the event simulator. The
// paper's subject is the launch of MPI jobs; this layer closes the loop by
// letting *applications* be written against a rank/communicator API,
// recorded into per-rank schedules, and executed under any mapping — so
// placement studies run on application code instead of hand-rolled message
// lists.
//
// Execution model: the SPMD function runs once per rank at record time;
// every operation appends to that rank's script. Collectives are lowered to
// the textbook point-to-point schedules (dissemination barrier, binomial
// broadcast, recursive-doubling allreduce, ring allgather, pairwise
// alltoall) with non-power-of-two fallbacks. Sends are non-blocking on the
// receiver side (the simulator's contract), so the generated schedules are
// deadlock-free by construction.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "cluster/cluster.hpp"
#include "lama/mapping.hpp"
#include "sim/event_sim.hpp"

namespace lama {

class Comm {
 public:
  Comm(int rank, int size, RankScript& script);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }

  // --- point to point ---
  void compute(double ns);
  void send(int dst, std::size_t bytes);
  void recv(int src);
  // Send to and receive from the same peer (order-safe).
  void sendrecv(int peer, std::size_t bytes);

  // --- collectives ---
  // Dissemination barrier: ceil(log2(size)) rounds of zero-byte exchanges.
  void barrier();
  // Binomial-tree broadcast from root.
  void bcast(int root, std::size_t bytes);
  // Recursive doubling when size is a power of two, otherwise gather to
  // rank 0 plus broadcast.
  void allreduce(std::size_t bytes);
  // Ring allgather: size-1 rounds of block forwarding.
  void allgather(std::size_t block_bytes);
  // Pairwise exchange (XOR) when size is a power of two, otherwise the
  // linear shifted schedule.
  void alltoall(std::size_t bytes);

 private:
  int rank_;
  int size_;
  RankScript& script_;
};

// Records the SPMD function for np ranks and returns the per-rank scripts.
std::vector<RankScript> record_program(
    int np, const std::function<void(Comm&)>& spmd);

// Record + simulate under a mapping in one call.
SimReport run_program(const Allocation& alloc, const MappingResult& mapping,
                      const std::function<void(Comm&)>& spmd,
                      const DistanceModel& model, const NicModel& nic);

}  // namespace lama
