// Timed scheduling simulation: drive the Scheduler with a stream of jobs
// that arrive and finish on a clock, and measure queue behaviour — the
// resource-manager-side context (§III-A) in which allocations, and hence
// the shapes the LAMA must map into, are produced. The classic result this
// exposes: EASY-style backfill fills the holes a blocked wide job leaves,
// cutting waits without starving anyone (here: without reordering starts of
// equal-fit jobs).
#pragma once

#include <vector>

#include "sched/scheduler.hpp"

namespace lama {

struct TimedJob {
  SchedJobSpec spec;
  double submit_s = 0.0;    // arrival time
  double duration_s = 0.0;  // run time once started (> 0)
};

struct JobOutcome {
  int id = 0;
  double submit_s = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;

  [[nodiscard]] double wait_s() const { return start_s - submit_s; }
};

struct ScheduleMetrics {
  double makespan_s = 0.0;   // last completion
  double avg_wait_s = 0.0;
  double max_wait_s = 0.0;
  // Machine-time actually granted / machine-time available until makespan.
  double utilization = 0.0;
  std::vector<JobOutcome> jobs;  // in submission order
};

// Runs the stream to completion (every job eventually starts — callers must
// submit jobs that fit the machine). Deterministic.
ScheduleMetrics simulate_schedule(const Cluster& cluster,
                                  const std::vector<TimedJob>& stream,
                                  bool backfill);

}  // namespace lama
