#include "sched/simulation.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>

#include "support/error.hpp"

namespace lama {

ScheduleMetrics simulate_schedule(const Cluster& cluster,
                                  const std::vector<TimedJob>& stream,
                                  bool backfill) {
  for (const TimedJob& job : stream) {
    if (job.duration_s <= 0.0) {
      throw MappingError("timed jobs need a positive duration");
    }
    if (job.submit_s < 0.0) {
      throw MappingError("timed jobs cannot arrive before time zero");
    }
  }

  Scheduler sched(cluster);
  ScheduleMetrics metrics;
  metrics.jobs.reserve(stream.size());

  // Submission order by arrival time (stable for ties).
  std::vector<std::size_t> arrival_order(stream.size());
  for (std::size_t i = 0; i < arrival_order.size(); ++i) arrival_order[i] = i;
  std::stable_sort(arrival_order.begin(), arrival_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return stream[a].submit_s < stream[b].submit_s;
                   });

  // Scheduler id -> bookkeeping.
  std::map<int, JobOutcome> outcomes;
  std::map<int, double> durations;
  std::map<int, std::size_t> stream_index;

  // (end time, id) min-heap of running jobs.
  using End = std::pair<double, int>;
  std::priority_queue<End, std::vector<End>, std::greater<>> running;

  double now = 0.0;
  std::size_t next_arrival = 0;
  double granted_pu_seconds = 0.0;

  auto try_start = [&]() {
    for (int id : sched.schedule(backfill)) {
      outcomes[id].start_s = now;
      outcomes[id].end_s = now + durations[id];
      running.push({outcomes[id].end_s, id});
      std::size_t pus = 0;
      for (const auto& [node, grant] : sched.job(id).grants) {
        pus += grant.count();
      }
      granted_pu_seconds += static_cast<double>(pus) * durations[id];
    }
  };

  while (next_arrival < arrival_order.size() || !running.empty()) {
    // Advance to the next event: an arrival or a completion.
    const double arrival_t =
        next_arrival < arrival_order.size()
            ? stream[arrival_order[next_arrival]].submit_s
            : std::numeric_limits<double>::infinity();
    const double completion_t =
        running.empty() ? std::numeric_limits<double>::infinity()
                        : running.top().first;

    if (completion_t <= arrival_t) {
      now = completion_t;
      // Complete everything ending now before rescheduling.
      while (!running.empty() && running.top().first <= now) {
        sched.complete(running.top().second);
        running.pop();
      }
    } else {
      now = arrival_t;
      while (next_arrival < arrival_order.size() &&
             stream[arrival_order[next_arrival]].submit_s <= now) {
        const std::size_t idx = arrival_order[next_arrival++];
        const int id = sched.submit(stream[idx].spec);
        outcomes[id] = JobOutcome{id, stream[idx].submit_s, 0.0, 0.0};
        durations[id] = stream[idx].duration_s;
        stream_index[id] = idx;
      }
    }
    try_start();
    if (running.empty() && next_arrival == arrival_order.size() &&
        !sched.queued_ids().empty()) {
      throw MappingError(
          "scheduling simulation wedged: queued jobs can never start on an "
          "idle machine");
    }
  }

  metrics.makespan_s = now;
  metrics.jobs.resize(stream.size());
  double total_wait = 0.0;
  for (const auto& [id, outcome] : outcomes) {
    metrics.jobs[stream_index[id]] = outcome;
    total_wait += outcome.wait_s();
    metrics.max_wait_s = std::max(metrics.max_wait_s, outcome.wait_s());
  }
  if (!stream.empty()) {
    metrics.avg_wait_s = total_wait / static_cast<double>(stream.size());
  }
  const double machine =
      static_cast<double>(cluster.total_pus()) * metrics.makespan_s;
  if (machine > 0.0) metrics.utilization = granted_pu_seconds / machine;
  return metrics;
}

}  // namespace lama
