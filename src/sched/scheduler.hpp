// A miniature resource manager in the role SLURM plays for the paper
// (§II-III): it owns the cluster, queues jobs, grants them processor-core-
// granular allocations under a distribution policy (block / cyclic / plane —
// SLURM's vocabulary), and hands each running job the Allocation that the
// mapping agent (the LAMA) then works within. Restrictions the scheduler
// makes are exactly the "unavailable resources" the mapper must skip.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace lama {

// How a job's granted PUs spread across nodes (SLURM's -m option).
enum class SchedDistribution {
  kBlock,   // fill a node's free PUs before touching the next node
  kCyclic,  // one PU per node, round-robin
  kPlane,   // `plane_size` PUs per node per round
};

struct SchedJobSpec {
  std::string name = "job";
  // Smallest processing units requested.
  std::size_t pus = 0;
  SchedDistribution distribution = SchedDistribution::kBlock;
  // For kPlane; must be >= 1.
  std::size_t plane_size = 1;
  // Exclusive jobs take whole nodes (every PU of each node they touch).
  bool exclusive = false;
};

enum class SchedJobState { kQueued, kRunning, kCompleted };

struct SchedJob {
  int id = 0;
  SchedJobSpec spec;
  SchedJobState state = SchedJobState::kQueued;
  // Valid while kRunning: the core-granular grant per node.
  std::vector<std::pair<std::size_t, Bitmap>> grants;
};

class Scheduler {
 public:
  explicit Scheduler(const Cluster& cluster);

  // Enqueues a job; returns its id. Jobs that can never fit the whole
  // machine are rejected with MappingError.
  int submit(SchedJobSpec spec);

  // Starts queued jobs in FIFO order until the head does not fit. With
  // `backfill`, jobs behind a blocked head may start when they fit (EASY-
  // style, without reservations). Returns the ids started.
  std::vector<int> schedule(bool backfill = false);

  // Frees a running job's resources. Completing a queued or completed job
  // throws MappingError.
  void complete(int id);

  [[nodiscard]] const SchedJob& job(int id) const;
  [[nodiscard]] std::size_t free_pus(std::size_t node) const;
  [[nodiscard]] std::size_t total_free_pus() const;
  [[nodiscard]] std::vector<int> queued_ids() const;

  // Builds the mapping agent's view of a RUNNING job: its nodes with every
  // non-granted PU off-lined.
  [[nodiscard]] Allocation allocation_for(int id) const;

 private:
  [[nodiscard]] SchedJob* find(int id);
  [[nodiscard]] const SchedJob* find(int id) const;
  // Attempts to grant the spec from current free PUs; empty when it does
  // not fit right now.
  [[nodiscard]] std::vector<std::pair<std::size_t, Bitmap>> try_grant(
      const SchedJobSpec& spec) const;

  const Cluster& cluster_;
  std::vector<Bitmap> free_;  // per node
  std::vector<SchedJob> jobs_;
  int next_id_ = 1;
};

}  // namespace lama
