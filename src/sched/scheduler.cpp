#include "sched/scheduler.hpp"

#include "support/error.hpp"

namespace lama {

Scheduler::Scheduler(const Cluster& cluster) : cluster_(cluster) {
  free_.reserve(cluster.num_nodes());
  for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
    free_.push_back(cluster.node(i).topo.online_pus());
  }
}

int Scheduler::submit(SchedJobSpec spec) {
  if (spec.pus == 0) {
    throw MappingError("job '" + spec.name + "' requests no processing units");
  }
  if (spec.plane_size == 0) {
    throw MappingError("plane size must be at least 1");
  }
  std::size_t machine = 0;
  for (std::size_t i = 0; i < cluster_.num_nodes(); ++i) {
    machine += cluster_.node(i).topo.online_pus().count();
  }
  if (spec.pus > machine) {
    throw MappingError("job '" + spec.name + "' requests " +
                       std::to_string(spec.pus) + " PUs but the machine has " +
                       std::to_string(machine));
  }
  SchedJob job;
  job.id = next_id_++;
  job.spec = std::move(spec);
  jobs_.push_back(std::move(job));
  return jobs_.back().id;
}

std::vector<std::pair<std::size_t, Bitmap>> Scheduler::try_grant(
    const SchedJobSpec& spec) const {
  std::vector<Bitmap> granted(cluster_.num_nodes());
  std::size_t need = spec.pus;

  if (spec.exclusive) {
    // Whole free nodes only, in order.
    for (std::size_t n = 0; n < cluster_.num_nodes() && need > 0; ++n) {
      const std::size_t whole = cluster_.node(n).topo.online_pus().count();
      if (free_[n].count() != whole || whole == 0) continue;
      granted[n] = free_[n];
      need -= std::min(need, whole);
    }
  } else {
    const std::size_t chunk =
        spec.distribution == SchedDistribution::kBlock ? spec.pus
        : spec.distribution == SchedDistribution::kCyclic
            ? 1
            : spec.plane_size;
    // Round-robin rounds of `chunk` PUs per node until satisfied or stuck.
    std::vector<std::size_t> cursor(cluster_.num_nodes(), Bitmap::npos);
    bool progress = true;
    while (need > 0 && progress) {
      progress = false;
      for (std::size_t n = 0; n < cluster_.num_nodes() && need > 0; ++n) {
        for (std::size_t k = 0; k < chunk && need > 0; ++k) {
          const std::size_t pu = free_[n].next(cursor[n]);
          if (pu == Bitmap::npos) break;
          cursor[n] = pu;
          granted[n].set(pu);
          --need;
          progress = true;
        }
      }
    }
  }

  if (need > 0) return {};  // does not fit right now
  std::vector<std::pair<std::size_t, Bitmap>> grants;
  for (std::size_t n = 0; n < cluster_.num_nodes(); ++n) {
    if (!granted[n].empty()) grants.emplace_back(n, granted[n]);
  }
  return grants;
}

std::vector<int> Scheduler::schedule(bool backfill) {
  std::vector<int> started;
  bool head_blocked = false;
  for (SchedJob& job : jobs_) {
    if (job.state != SchedJobState::kQueued) continue;
    if (head_blocked && !backfill) break;
    auto grants = try_grant(job.spec);
    if (grants.empty()) {
      head_blocked = true;
      continue;
    }
    for (const auto& [node, pus] : grants) {
      free_[node].and_not(pus);
    }
    job.grants = std::move(grants);
    job.state = SchedJobState::kRunning;
    started.push_back(job.id);
  }
  return started;
}

void Scheduler::complete(int id) {
  SchedJob* job = find(id);
  if (job == nullptr) throw MappingError("unknown job id");
  if (job->state != SchedJobState::kRunning) {
    throw MappingError("job " + std::to_string(id) + " is not running");
  }
  for (const auto& [node, pus] : job->grants) {
    free_[node] |= pus;
  }
  job->grants.clear();
  job->state = SchedJobState::kCompleted;
}

const SchedJob& Scheduler::job(int id) const {
  const SchedJob* j = find(id);
  if (j == nullptr) throw MappingError("unknown job id");
  return *j;
}

std::size_t Scheduler::free_pus(std::size_t node) const {
  LAMA_ASSERT(node < free_.size());
  return free_[node].count();
}

std::size_t Scheduler::total_free_pus() const {
  std::size_t total = 0;
  for (const Bitmap& b : free_) total += b.count();
  return total;
}

std::vector<int> Scheduler::queued_ids() const {
  std::vector<int> ids;
  for (const SchedJob& job : jobs_) {
    if (job.state == SchedJobState::kQueued) ids.push_back(job.id);
  }
  return ids;
}

Allocation Scheduler::allocation_for(int id) const {
  const SchedJob* job = find(id);
  if (job == nullptr) throw MappingError("unknown job id");
  if (job->state != SchedJobState::kRunning) {
    throw MappingError("job " + std::to_string(id) +
                       " is not running; no allocation exists");
  }
  return allocate_cores(cluster_, job->grants);
}

SchedJob* Scheduler::find(int id) {
  for (SchedJob& job : jobs_) {
    if (job.id == id) return &job;
  }
  return nullptr;
}

const SchedJob* Scheduler::find(int id) const {
  for (const SchedJob& job : jobs_) {
    if (job.id == id) return &job;
  }
  return nullptr;
}

}  // namespace lama
