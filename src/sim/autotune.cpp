#include "sim/autotune.hpp"

#include <algorithm>

#include "lama/mapper.hpp"
#include "sim/evaluator.hpp"
#include "support/error.hpp"

namespace lama {

const AutotuneEntry& AutotuneResult::best() const {
  LAMA_ASSERT(!ranking.empty());
  return ranking.front();
}

const AutotuneEntry& AutotuneResult::worst() const {
  LAMA_ASSERT(!ranking.empty());
  return ranking.back();
}

double AutotuneResult::spread() const {
  const double worst_score = worst().score;
  if (worst_score <= 0.0) return 0.0;
  return (worst_score - best().score) / worst_score;
}

AutotuneResult autotune_layout(const Allocation& alloc,
                               const TrafficPattern& pattern,
                               const DistanceModel& model,
                               const AutotuneOptions& options) {
  if (options.sample_stride == 0) {
    throw MappingError("autotune sample stride must be at least 1");
  }
  const std::size_t np =
      options.np == 0 ? static_cast<std::size_t>(pattern.np) : options.np;

  std::vector<ProcessLayout> layouts;
  if (!options.candidates.empty()) {
    layouts.reserve(options.candidates.size());
    for (const std::string& text : options.candidates) {
      layouts.push_back(ProcessLayout::parse(text));
    }
  } else {
    std::size_t i = 0;
    ProcessLayout::for_each_full_permutation([&](const ProcessLayout& l) {
      if (i++ % options.sample_stride == 0) layouts.push_back(l);
    });
  }

  AutotuneResult result;
  result.ranking.reserve(layouts.size());
  for (const ProcessLayout& layout : layouts) {
    const MappingResult m = lama_map(alloc, layout, {.np = np});
    const CostReport r = evaluate_mapping(alloc, m, pattern, model);
    AutotuneEntry entry;
    entry.layout = layout.to_string();
    entry.total_ns = r.total_ns;
    entry.max_rank_ns = r.max_rank_ns;
    entry.max_nic_bytes = r.max_nic_bytes;
    switch (options.objective) {
      case AutotuneOptions::Objective::kTotalTime:
        entry.score = r.total_ns;
        break;
      case AutotuneOptions::Objective::kMaxRankTime:
        entry.score = r.max_rank_ns;
        break;
      case AutotuneOptions::Objective::kMaxNicBytes:
        entry.score = static_cast<double>(r.max_nic_bytes);
        break;
    }
    result.ranking.push_back(std::move(entry));
    ++result.evaluated;
  }
  if (result.ranking.empty()) {
    throw MappingError("autotune evaluated no layouts");
  }
  std::stable_sort(result.ranking.begin(), result.ranking.end(),
                   [](const AutotuneEntry& a, const AutotuneEntry& b) {
                     return a.score < b.score;
                   });
  return result;
}

}  // namespace lama
