#include "sim/collectives.hpp"

#include "support/error.hpp"

namespace lama {

namespace {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

// Maps a textbook-schedule relative rank (root plays 0) to the real rank.
int abs_rank(int rel_rank, int root, int np) { return (rel_rank + root) % np; }

}  // namespace

TrafficPattern make_bcast_binomial(int np, int root, std::size_t bytes) {
  LAMA_ASSERT(np >= 2 && root >= 0 && root < np);
  TrafficPattern p{"bcast_binomial", np, {}};
  for (int dist = 1; dist < np; dist *= 2) {
    for (int r = 0; r < dist && r + dist < np; ++r) {
      // Relative rank r (which has the data after round log2(dist)) sends
      // to relative rank r + dist.
      p.messages.push_back(
          {abs_rank(r, root, np), abs_rank(r + dist, root, np), bytes});
    }
  }
  return p;
}

TrafficPattern make_allreduce_recursive_doubling(int np, std::size_t bytes) {
  LAMA_ASSERT(np >= 2);
  if (!is_power_of_two(np)) {
    throw MappingError(
        "recursive-doubling allreduce requires a power-of-two process "
        "count, got " +
        std::to_string(np));
  }
  TrafficPattern p{"allreduce_rd", np, {}};
  for (int dist = 1; dist < np; dist *= 2) {
    for (int r = 0; r < np; ++r) {
      p.messages.push_back({r, r ^ dist, bytes});
    }
  }
  return p;
}

TrafficPattern make_allgather_ring(int np, std::size_t block_bytes) {
  LAMA_ASSERT(np >= 2);
  TrafficPattern p{"allgather_ring", np, {}};
  for (int round = 0; round < np - 1; ++round) {
    for (int r = 0; r < np; ++r) {
      p.messages.push_back({r, (r + 1) % np, block_bytes});
    }
  }
  return p;
}

TrafficPattern make_gather_linear(int np, int root, std::size_t bytes) {
  LAMA_ASSERT(np >= 2 && root >= 0 && root < np);
  TrafficPattern p{"gather_linear", np, {}};
  for (int r = 0; r < np; ++r) {
    if (r != root) p.messages.push_back({r, root, bytes});
  }
  return p;
}

TrafficPattern make_alltoall_pairwise(int np, std::size_t bytes) {
  LAMA_ASSERT(np >= 2);
  if (!is_power_of_two(np)) {
    throw MappingError(
        "pairwise alltoall requires a power-of-two process count, got " +
        std::to_string(np));
  }
  TrafficPattern p{"alltoall_pairwise", np, {}};
  for (int k = 1; k < np; ++k) {
    for (int r = 0; r < np; ++r) {
      p.messages.push_back({r, r ^ k, bytes});
    }
  }
  return p;
}

}  // namespace lama
