#include "sim/distance_model.hpp"

#include "support/error.hpp"

namespace lama {

DistanceModel DistanceModel::commodity() {
  DistanceModel m;
  // Deepest (cheapest) to shallowest (most expensive). Two processes pinned
  // to the same hardware thread still pay the same-core cost.
  m.set_level_cost(ResourceType::kHwThread, {30.0, 80.0});
  m.set_level_cost(ResourceType::kCore, {40.0, 60.0});
  m.set_level_cost(ResourceType::kL1, {45.0, 55.0});
  m.set_level_cost(ResourceType::kL2, {60.0, 45.0});
  m.set_level_cost(ResourceType::kL3, {90.0, 35.0});
  m.set_level_cost(ResourceType::kNuma, {120.0, 25.0});
  m.set_level_cost(ResourceType::kSocket, {160.0, 18.0});
  m.set_level_cost(ResourceType::kBoard, {250.0, 12.0});
  m.set_level_cost(ResourceType::kNode, {350.0, 8.0});
  m.set_network_cost({1500.0, 6.0});
  return m;
}

ResourceType DistanceModel::sharing_level(const NodeTopology& topo,
                                          std::size_t pu_a, std::size_t pu_b) {
  if (pu_a == pu_b) return topo.leaf_type();
  // Walk the deepest-first level list; the first level whose ancestor
  // objects coincide is the sharing level.
  const std::vector<ResourceType>& levels = topo.levels();
  for (std::size_t i = levels.size(); i-- > 0;) {
    const TopoObject* a = topo.ancestor_of_pu(pu_a, levels[i]);
    const TopoObject* b = topo.ancestor_of_pu(pu_b, levels[i]);
    if (a != nullptr && a == b) return levels[i];
  }
  return ResourceType::kNode;
}

std::vector<std::vector<double>> DistanceModel::latency_matrix(
    const NodeTopology& topo) const {
  const std::size_t n = topo.pu_count();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      const double ns = level_cost(sharing_level(topo, a, b)).latency_ns;
      matrix[a][b] = ns;
      matrix[b][a] = ns;
    }
  }
  return matrix;
}

double DistanceModel::message_ns(const Allocation& alloc, std::size_t node_a,
                                 std::size_t pu_a, std::size_t node_b,
                                 std::size_t pu_b, std::size_t bytes) const {
  if (node_a != node_b) return network_.message_ns(bytes);
  const NodeTopology& topo = alloc.node(node_a).topo;
  return level_cost(sharing_level(topo, pu_a, pu_b)).message_ns(bytes);
}

}  // namespace lama
