#include "sim/evaluator.hpp"

#include "support/error.hpp"

namespace lama {

CostReport evaluate_mapping(const Allocation& alloc,
                            const MappingResult& mapping,
                            const TrafficPattern& pattern,
                            const DistanceModel& model) {
  if (static_cast<std::size_t>(pattern.np) != mapping.placements.size()) {
    throw MappingError("pattern '" + pattern.name + "' has " +
                       std::to_string(pattern.np) + " ranks but the mapping " +
                       std::to_string(mapping.placements.size()));
  }

  // Rank -> (node, representative PU).
  std::vector<std::size_t> node_of(mapping.placements.size());
  std::vector<std::size_t> pu_of(mapping.placements.size());
  for (const Placement& p : mapping.placements) {
    node_of[static_cast<std::size_t>(p.rank)] = p.node;
    pu_of[static_cast<std::size_t>(p.rank)] = p.representative_pu();
  }

  CostReport report;
  std::vector<double> rank_ns(mapping.placements.size(), 0.0);
  std::vector<std::size_t> nic_bytes(alloc.num_nodes(), 0);

  for (const Message& m : pattern.messages) {
    const std::size_t src = static_cast<std::size_t>(m.src);
    const std::size_t dst = static_cast<std::size_t>(m.dst);
    LAMA_ASSERT(src < node_of.size() && dst < node_of.size());
    const double ns = model.message_ns(alloc, node_of[src], pu_of[src],
                                       node_of[dst], pu_of[dst], m.bytes);
    report.total_ns += ns;
    rank_ns[src] += ns;
    rank_ns[dst] += ns;
    if (node_of[src] == node_of[dst]) {
      ++report.intra_node_messages;
      const ResourceType level = DistanceModel::sharing_level(
          alloc.node(node_of[src]).topo, pu_of[src], pu_of[dst]);
      ++report.messages_by_level[canonical_depth(level)];
    } else {
      ++report.inter_node_messages;
      nic_bytes[node_of[src]] += m.bytes;
      nic_bytes[node_of[dst]] += m.bytes;
    }
  }

  for (double ns : rank_ns) report.max_rank_ns = std::max(report.max_rank_ns, ns);
  for (std::size_t b : nic_bytes) {
    report.max_nic_bytes = std::max(report.max_nic_bytes, b);
    report.total_nic_bytes += b;
  }
  if (!pattern.messages.empty()) {
    report.avg_message_ns =
        report.total_ns / static_cast<double>(pattern.messages.size());
  }
  return report;
}

}  // namespace lama
