// Hierarchical communication-cost model. The paper's motivation (§I, §II) is
// that communication cost between two processes depends on where they sit in
// the NUMA/cache hierarchy: sharing a cache is cheaper than crossing NUMA
// links, which is cheaper than crossing sockets/boards, which is cheaper
// than the network. This model assigns a latency and bandwidth to each
// *sharing level* — the deepest hardware object two PUs have in common — and
// prices a message accordingly. Absolute values are calibration constants
// (defaults are commodity-cluster magnitudes circa the paper); benchmark
// conclusions depend only on their ordering.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "cluster/cluster.hpp"
#include "topo/resource_type.hpp"

namespace lama {

struct LinkCost {
  double latency_ns = 0.0;
  double bandwidth_gb_s = 1.0;  // 1 GB/s == 1 byte/ns

  [[nodiscard]] double message_ns(std::size_t bytes) const {
    return latency_ns + static_cast<double>(bytes) / bandwidth_gb_s;
  }
};

class DistanceModel {
 public:
  // Commodity multi-core NUMA cluster defaults.
  static DistanceModel commodity();

  // Cost of traversing a sharing level: kHwThread means the two endpoints
  // share a core's threads; kNode means they share nothing below the node.
  [[nodiscard]] const LinkCost& level_cost(ResourceType level) const {
    return level_costs_[canonical_depth(level)];
  }
  void set_level_cost(ResourceType level, LinkCost cost) {
    level_costs_[canonical_depth(level)] = cost;
  }

  [[nodiscard]] const LinkCost& network_cost() const { return network_; }
  void set_network_cost(LinkCost cost) { network_ = cost; }

  // Deepest level whose object contains both PUs (same node). pu_a == pu_b
  // yields the leaf type. Both PUs must be valid for the topology.
  static ResourceType sharing_level(const NodeTopology& topo,
                                    std::size_t pu_a, std::size_t pu_b);

  // Price one message. Intra-node messages use the sharing level's cost;
  // inter-node messages use the network cost.
  [[nodiscard]] double message_ns(const Allocation& alloc, std::size_t node_a,
                                  std::size_t pu_a, std::size_t node_b,
                                  std::size_t pu_b, std::size_t bytes) const;

  // Full PU-to-PU latency matrix for one node (hwloc-distances style):
  // entry [a][b] is the sharing-level latency between PUs a and b. Input to
  // external affinity tools and a compact fingerprint of the hierarchy.
  [[nodiscard]] std::vector<std::vector<double>> latency_matrix(
      const NodeTopology& topo) const;

 private:
  std::array<LinkCost, kNumResourceTypes> level_costs_{};
  LinkCost network_{};
};

}  // namespace lama
