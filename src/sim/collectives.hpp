// Point-to-point realizations of MPI collective operations, as classic MPI
// implementations schedule them. Collectives are the communication backbone
// of most MPI applications, and their message structure is exactly what
// process placement reshapes: a binomial broadcast tree rooted on one socket
// prices very differently under pack vs scatter.
#pragma once

#include "sim/traffic.hpp"

namespace lama {

// Binomial-tree broadcast from `root`: log2(np) rounds; in round k, every
// rank that already has the data forwards it to the rank 2^k away.
TrafficPattern make_bcast_binomial(int np, int root, std::size_t bytes);

// Recursive-doubling allreduce: log2(np) rounds of pairwise exchanges with
// partners at distance 1, 2, 4, ... Requires np to be a power of two.
TrafficPattern make_allreduce_recursive_doubling(int np, std::size_t bytes);

// Ring allgather: np-1 rounds; each rank forwards a block to its right
// neighbour (the bandwidth-optimal large-message algorithm).
TrafficPattern make_allgather_ring(int np, std::size_t block_bytes);

// Linear gather to `root` (every rank sends its block to the root) — the
// hub-bottleneck shape.
TrafficPattern make_gather_linear(int np, int root, std::size_t bytes);

// Pairwise-exchange alltoall as implementations schedule it: np-1 rounds,
// in round k rank r exchanges with rank r XOR k (np must be a power of two).
TrafficPattern make_alltoall_pairwise(int np, std::size_t bytes);

}  // namespace lama
