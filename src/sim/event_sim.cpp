#include "sim/event_sim.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "support/error.hpp"

namespace lama {

namespace {

struct RankState {
  std::size_t node = 0;
  std::size_t pu = 0;
  double clock = 0.0;
  double wait = 0.0;
  std::size_t next_op = 0;
  bool parked = false;  // blocked on a recv whose message has not been sent
};

}  // namespace

SimReport simulate(const Allocation& alloc, const MappingResult& mapping,
                   const std::vector<RankScript>& scripts,
                   const DistanceModel& model, const NicModel& nic) {
  const std::size_t np = mapping.placements.size();
  if (scripts.size() != np) {
    throw MappingError("simulate: " + std::to_string(scripts.size()) +
                       " scripts for " + std::to_string(np) + " ranks");
  }

  std::vector<RankState> ranks(np);
  for (const Placement& p : mapping.placements) {
    RankState& r = ranks[static_cast<std::size_t>(p.rank)];
    r.node = p.node;
    r.pu = p.representative_pu();
  }

  // In-flight/delivered messages: FIFO arrival times per (src, dst).
  std::map<std::pair<int, int>, std::queue<double>> mailbox;
  // Ranks parked on (src, dst) recvs, woken by the matching send.
  std::map<std::pair<int, int>, std::queue<int>> waiters;

  std::vector<double> nic_free(alloc.num_nodes(), 0.0);
  std::vector<double> nic_busy(alloc.num_nodes(), 0.0);

  // Min-heap of (ready time, rank) for runnable ranks.
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  std::size_t done = 0;
  for (std::size_t r = 0; r < np; ++r) {
    if (scripts[r].empty()) {
      ++done;
    } else {
      ready.push({0.0, static_cast<int>(r)});
    }
  }

  SimReport report;

  auto validate_peer = [&](int peer) {
    if (peer < 0 || static_cast<std::size_t>(peer) >= np) {
      throw MappingError("script references rank " + std::to_string(peer) +
                         " outside the job");
    }
  };

  while (!ready.empty()) {
    const auto [when, rank_id] = ready.top();
    ready.pop();
    RankState& r = ranks[static_cast<std::size_t>(rank_id)];
    r.clock = std::max(r.clock, when);
    const RankScript& script = scripts[static_cast<std::size_t>(rank_id)];
    const RankOp& op = script[r.next_op];

    switch (op.kind) {
      case OpKind::kCompute: {
        r.clock += op.compute_ns;
        break;
      }
      case OpKind::kSend: {
        validate_peer(op.peer);
        const RankState& dst = ranks[static_cast<std::size_t>(op.peer)];
        double arrival = 0.0;
        if (r.node == dst.node) {
          const ResourceType level = DistanceModel::sharing_level(
              alloc.node(r.node).topo, r.pu, dst.pu);
          const LinkCost& cost = model.level_cost(level);
          r.clock += nic.send_overhead_ns;
          arrival = r.clock + cost.message_ns(op.bytes);
        } else {
          r.clock += nic.send_overhead_ns;
          const double start = std::max(nic_free[r.node], r.clock);
          const double inject =
              static_cast<double>(op.bytes) / nic.bandwidth_gb_s;
          nic_free[r.node] = start + inject;
          nic_busy[r.node] += inject;
          r.clock = start + inject;
          arrival = r.clock + nic.network_latency_ns;
        }
        const auto key = std::make_pair(rank_id, op.peer);
        mailbox[key].push(arrival);
        ++report.messages_delivered;
        // Wake one parked receiver, if any.
        auto it = waiters.find(key);
        if (it != waiters.end() && !it->second.empty()) {
          const int sleeper = it->second.front();
          it->second.pop();
          ranks[static_cast<std::size_t>(sleeper)].parked = false;
          ready.push({ranks[static_cast<std::size_t>(sleeper)].clock,
                      sleeper});
        }
        break;
      }
      case OpKind::kRecv: {
        validate_peer(op.peer);
        const auto key = std::make_pair(op.peer, rank_id);
        auto it = mailbox.find(key);
        if (it == mailbox.end() || it->second.empty()) {
          // Not sent yet: park until the sender posts it.
          r.parked = true;
          waiters[key].push(rank_id);
          continue;  // do NOT advance next_op or re-queue
        }
        const double arrival = it->second.front();
        it->second.pop();
        if (arrival > r.clock) {
          r.wait += arrival - r.clock;
          r.clock = arrival;
        }
        break;
      }
    }

    ++r.next_op;
    if (r.next_op == script.size()) {
      ++done;
    } else {
      ready.push({r.clock, rank_id});
    }
  }

  if (done != np) {
    std::string stuck;
    for (std::size_t i = 0; i < np; ++i) {
      if (ranks[i].parked) {
        const RankOp& op = scripts[i][ranks[i].next_op];
        stuck += " rank" + std::to_string(i) + "<-rank" +
                 std::to_string(op.peer);
      }
    }
    throw MappingError("communication deadlock; blocked receives:" + stuck);
  }

  report.finish_ns.resize(np);
  report.wait_ns.resize(np);
  for (std::size_t i = 0; i < np; ++i) {
    report.finish_ns[i] = ranks[i].clock;
    report.wait_ns[i] = ranks[i].wait;
    report.makespan_ns = std::max(report.makespan_ns, ranks[i].clock);
  }
  for (double busy : nic_busy) {
    report.max_nic_busy_ns = std::max(report.max_nic_busy_ns, busy);
  }
  return report;
}

std::vector<RankScript> scripts_from_pattern(const TrafficPattern& pattern,
                                             std::size_t rounds,
                                             double compute_ns_per_round) {
  std::vector<RankScript> scripts(static_cast<std::size_t>(pattern.np));

  // Outgoing messages in pattern order; incoming sorted by source.
  std::vector<std::vector<std::pair<int, std::size_t>>> out(
      static_cast<std::size_t>(pattern.np));
  std::vector<std::vector<int>> in(static_cast<std::size_t>(pattern.np));
  for (const Message& m : pattern.messages) {
    out[static_cast<std::size_t>(m.src)].emplace_back(m.dst, m.bytes);
    in[static_cast<std::size_t>(m.dst)].push_back(m.src);
  }
  for (auto& sources : in) std::sort(sources.begin(), sources.end());

  for (std::size_t round = 0; round < rounds; ++round) {
    for (int r = 0; r < pattern.np; ++r) {
      RankScript& script = scripts[static_cast<std::size_t>(r)];
      if (compute_ns_per_round > 0.0) {
        script.push_back(
            {OpKind::kCompute, compute_ns_per_round, -1, 0});
      }
      for (const auto& [dst, bytes] : out[static_cast<std::size_t>(r)]) {
        script.push_back({OpKind::kSend, 0.0, dst, bytes});
      }
      for (int src : in[static_cast<std::size_t>(r)]) {
        script.push_back({OpKind::kRecv, 0.0, src, 0});
      }
    }
  }
  return scripts;
}

}  // namespace lama
