// Torus-aware pricing: extends the flat inter-node model with per-hop
// latency and per-link congestion on a 3-D torus (the environment of the
// BlueGene mapping studies the paper cites — "networking effects such as
// routing and congestion ... can become performance bottlenecks").
#pragma once

#include "cluster/cluster.hpp"
#include "lama/mapping.hpp"
#include "net/torus.hpp"
#include "sim/distance_model.hpp"
#include "sim/traffic.hpp"

namespace lama {

struct TorusCostModel {
  // Inter-node message: base + hops * per_hop + bytes / bandwidth.
  double base_latency_ns = 900.0;
  double per_hop_ns = 120.0;
  double bandwidth_gb_s = 6.0;

  [[nodiscard]] double message_ns(int hops, std::size_t bytes) const {
    return base_latency_ns + per_hop_ns * hops +
           static_cast<double>(bytes) / bandwidth_gb_s;
  }
};

struct TorusCostReport {
  double total_ns = 0.0;
  double max_rank_ns = 0.0;

  std::size_t intra_node_messages = 0;
  std::size_t inter_node_messages = 0;

  // Network-shape metrics.
  double avg_hops = 0.0;       // over inter-node messages
  int max_hops = 0;
  std::size_t total_hop_count = 0;

  // Dimension-ordered routing congestion: bytes over the busiest directed
  // link, and the mean over links that carried anything.
  std::size_t max_link_bytes = 0;
  double avg_link_bytes = 0.0;
  std::size_t links_used = 0;

  // Bulk-synchronous estimate of the network phase: the busiest link
  // serializes its bytes, so this is the floor on communication time no
  // matter how much the rest of the network overlaps.
  double bottleneck_ns = 0.0;
};

// Prices a pattern under a mapping on a torus-connected cluster. Intra-node
// messages use the hierarchical `model`; inter-node messages use `net_model`
// with dimension-ordered routes accumulating link loads. The allocation's
// node i sits at torus position coord_of(i); allocation and torus sizes must
// match.
TorusCostReport evaluate_on_torus(const Allocation& alloc,
                                  const TorusNetwork& net,
                                  const MappingResult& mapping,
                                  const TrafficPattern& pattern,
                                  const DistanceModel& model,
                                  const TorusCostModel& net_model);

}  // namespace lama
