// Discrete-event communication simulator. The analytic CostEvaluator sums
// message prices; this simulator *executes* a per-rank script (compute /
// send / recv) against a mapping, with each node's NIC modeled as a shared
// serial resource. The result is a makespan — the application-level metric
// behind the paper's motivation (GTC's "up to 30%" is wall-clock, and
// wall-clock is where NIC contention and overlap show up, not in byte sums).
//
// Model (LogP-flavoured, deterministic):
//  * compute(ns)       — the rank is busy for ns.
//  * send(dst, bytes)  — intra-node: sender busy for the sharing-level
//    latency; the message arrives latency + bytes/bandwidth later.
//    inter-node: the sender waits for its node's NIC, occupies it for
//    bytes/nic_bandwidth, then the message arrives network_latency later.
//  * recv(src)         — blocks until the next unconsumed message from src
//    has arrived (FIFO per sender/receiver pair).
//
// Simplifications (documented, shared by all compared mappings): receiver
// NICs are not contended, intra-node paths are contention-free, and routing
// is not modeled (use the torus evaluator for link-level congestion).
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/cluster.hpp"
#include "lama/mapping.hpp"
#include "sim/distance_model.hpp"
#include "sim/traffic.hpp"

namespace lama {

enum class OpKind { kCompute, kSend, kRecv };

struct RankOp {
  OpKind kind = OpKind::kCompute;
  double compute_ns = 0.0;  // kCompute
  int peer = -1;            // kSend: destination; kRecv: source
  std::size_t bytes = 0;    // kSend
};

using RankScript = std::vector<RankOp>;

struct NicModel {
  double bandwidth_gb_s = 6.0;     // injection bandwidth per node
  double network_latency_ns = 1500.0;
  double send_overhead_ns = 100.0; // CPU-side cost of posting any send
};

struct SimReport {
  double makespan_ns = 0.0;
  // Per-rank completion times and time spent blocked in recv.
  std::vector<double> finish_ns;
  std::vector<double> wait_ns;
  // Busiest NIC's total busy time.
  double max_nic_busy_ns = 0.0;
  std::size_t messages_delivered = 0;
};

// Executes the scripts (one per rank; sizes must match the mapping). Throws
// MappingError on malformed scripts and on communication deadlock (a recv
// whose message is never sent).
SimReport simulate(const Allocation& alloc, const MappingResult& mapping,
                   const std::vector<RankScript>& scripts,
                   const DistanceModel& model, const NicModel& nic);

// Builds the bulk-synchronous script of a traffic pattern: each round every
// rank computes, posts all its sends (pattern order), then receives every
// incoming message (sorted by source rank).
std::vector<RankScript> scripts_from_pattern(const TrafficPattern& pattern,
                                             std::size_t rounds,
                                             double compute_ns_per_round);

}  // namespace lama
