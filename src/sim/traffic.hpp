// Synthetic application communication patterns. These stand in for the real
// applications the paper's motivation cites (NAS benchmarks, the GTC fusion
// code): each generator produces the point-to-point message list of one
// communication phase, which the cost evaluator prices under a mapping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lama {

struct Message {
  int src = 0;
  int dst = 0;
  std::size_t bytes = 0;
};

struct TrafficPattern {
  std::string name;
  int np = 0;
  std::vector<Message> messages;

  [[nodiscard]] std::size_t total_bytes() const;
};

// 1-D ring: rank r sends to (r+1) mod np and (r-1+np) mod np.
TrafficPattern make_ring(int np, std::size_t bytes);

// 2-D periodic halo exchange on a px-by-py process grid (row-major ranks):
// every rank exchanges with its 4 neighbours. np = px * py.
TrafficPattern make_halo2d(int px, int py, std::size_t bytes);

// 3-D periodic halo exchange on px-by-py-by-pz; 6 neighbours each.
TrafficPattern make_halo3d(int px, int py, int pz, std::size_t bytes);

// Dense personalized all-to-all: every rank sends `bytes` to every other.
TrafficPattern make_alltoall(int np, std::size_t bytes);

// GTC-like 1-D toroidal decomposition: heavy particle-shift traffic to the
// +/-1 neighbours on the torus plus light global (all-to-all) diagnostics.
TrafficPattern make_toroidal(int np, std::size_t heavy_bytes,
                             std::size_t light_bytes);

// Master/worker: rank 0 exchanges request/response pairs with every worker.
TrafficPattern make_master_worker(int np, std::size_t request_bytes,
                                  std::size_t response_bytes);

// Random sparse graph: each rank sends to `degree` distinct other ranks
// (deterministic in `seed`).
TrafficPattern make_random_sparse(int np, int degree, std::size_t bytes,
                                  std::uint64_t seed);

// Matrix-transpose exchange on a rows-by-cols rank grid: rank (i,j)
// exchanges with rank (j,i). Requires rows == cols.
TrafficPattern make_transpose(int n, std::size_t bytes);

// Nearest-neighbour within consecutive pairs (even ranks talk to rank+1) —
// the best case for packed mappings.
TrafficPattern make_pairs(int np, std::size_t bytes);

// Strided pairs: rank r < stride exchanges with rank r + stride. With
// stride = np/2 this is the worst case for packed mappings (partners land on
// different nodes) and the best case for round-robin scatter (partners land
// on the same node when the node count divides the stride).
TrafficPattern make_strided_pairs(int np, int stride, std::size_t bytes);

// Resolves a named pattern spec "<name>[:<bytes>]" for np processes — the
// shared vocabulary of `lamactl --pattern` and the service's OPTIMIZE verb
// (docs/optimize.md). Grid patterns (halo, halo3d) factor np into the most
// cubic process grid; gtc is the toroidal decomposition with light global
// diagnostics (bytes/16). Throws ParseError on unknown names or an np the
// pattern cannot host. Names: ring, halo, halo3d, alltoall, gtc, toroidal,
// pairs, stride, transpose, master_worker, random.
TrafficPattern make_named_pattern(const std::string& spec, int np);

}  // namespace lama
