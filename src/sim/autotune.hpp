// Layout auto-tuning: the paper argues that "domain-level experts need to be
// able to specify and experiment with different placements to find an
// optimal configuration" (§I). This utility runs that experiment
// programmatically: it prices candidate layouts (an explicit list, or a
// deterministic sample of the full 362,880-permutation space) against an
// application's traffic pattern on the target allocation and returns the
// ranking.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "sim/distance_model.hpp"
#include "sim/traffic.hpp"

namespace lama {

struct AutotuneOptions {
  std::size_t np = 0;  // 0 = pattern.np
  // Candidates to price. When empty, `sample_stride` selects every k-th
  // layout of the full permutation space instead.
  std::vector<std::string> candidates;
  // Used only when candidates is empty: price every `sample_stride`-th full
  // permutation (1 = all 362,880 — expensive). Must be >= 1.
  std::size_t sample_stride = 1024;
  // Ranking objective.
  enum class Objective { kTotalTime, kMaxRankTime, kMaxNicBytes } objective =
      Objective::kTotalTime;
};

struct AutotuneEntry {
  std::string layout;
  double total_ns = 0.0;
  double max_rank_ns = 0.0;
  std::size_t max_nic_bytes = 0;
  double score = 0.0;  // per the chosen objective; lower is better
};

struct AutotuneResult {
  // Every priced layout, best (lowest score) first; ties keep candidate
  // order, so results are deterministic.
  std::vector<AutotuneEntry> ranking;
  std::size_t evaluated = 0;

  [[nodiscard]] const AutotuneEntry& best() const;
  [[nodiscard]] const AutotuneEntry& worst() const;
  // (worst - best) / worst, in [0, 1): how much picking layouts matters for
  // this pattern on this machine.
  [[nodiscard]] double spread() const;
};

AutotuneResult autotune_layout(const Allocation& alloc,
                               const TrafficPattern& pattern,
                               const DistanceModel& model,
                               const AutotuneOptions& options);

}  // namespace lama
