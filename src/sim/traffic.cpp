#include "sim/traffic.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace lama {

std::size_t TrafficPattern::total_bytes() const {
  std::size_t total = 0;
  for (const Message& m : messages) total += m.bytes;
  return total;
}

TrafficPattern make_ring(int np, std::size_t bytes) {
  LAMA_ASSERT(np >= 2);
  TrafficPattern p{"ring", np, {}};
  for (int r = 0; r < np; ++r) {
    p.messages.push_back({r, (r + 1) % np, bytes});
    p.messages.push_back({r, (r + np - 1) % np, bytes});
  }
  return p;
}

TrafficPattern make_halo2d(int px, int py, std::size_t bytes) {
  LAMA_ASSERT(px >= 1 && py >= 1 && px * py >= 2);
  TrafficPattern p{"halo2d", px * py, {}};
  auto rank = [&](int x, int y) {
    return ((y + py) % py) * px + ((x + px) % px);
  };
  for (int y = 0; y < py; ++y) {
    for (int x = 0; x < px; ++x) {
      const int r = rank(x, y);
      for (const int nb : {rank(x - 1, y), rank(x + 1, y), rank(x, y - 1),
                           rank(x, y + 1)}) {
        if (nb != r) p.messages.push_back({r, nb, bytes});
      }
    }
  }
  return p;
}

TrafficPattern make_halo3d(int px, int py, int pz, std::size_t bytes) {
  LAMA_ASSERT(px >= 1 && py >= 1 && pz >= 1 && px * py * pz >= 2);
  TrafficPattern p{"halo3d", px * py * pz, {}};
  auto rank = [&](int x, int y, int z) {
    return (((z + pz) % pz) * py + (y + py) % py) * px + (x + px) % px;
  };
  for (int z = 0; z < pz; ++z) {
    for (int y = 0; y < py; ++y) {
      for (int x = 0; x < px; ++x) {
        const int r = rank(x, y, z);
        for (const int nb :
             {rank(x - 1, y, z), rank(x + 1, y, z), rank(x, y - 1, z),
              rank(x, y + 1, z), rank(x, y, z - 1), rank(x, y, z + 1)}) {
          if (nb != r) p.messages.push_back({r, nb, bytes});
        }
      }
    }
  }
  return p;
}

TrafficPattern make_alltoall(int np, std::size_t bytes) {
  LAMA_ASSERT(np >= 2);
  TrafficPattern p{"alltoall", np, {}};
  for (int s = 0; s < np; ++s) {
    for (int d = 0; d < np; ++d) {
      if (s != d) p.messages.push_back({s, d, bytes});
    }
  }
  return p;
}

TrafficPattern make_toroidal(int np, std::size_t heavy_bytes,
                             std::size_t light_bytes) {
  LAMA_ASSERT(np >= 2);
  TrafficPattern p{"toroidal", np, {}};
  // Heavy particle-shift traffic around the torus.
  for (int r = 0; r < np; ++r) {
    p.messages.push_back({r, (r + 1) % np, heavy_bytes});
    p.messages.push_back({r, (r + np - 1) % np, heavy_bytes});
  }
  // Light global diagnostics.
  if (light_bytes > 0) {
    for (int s = 0; s < np; ++s) {
      for (int d = 0; d < np; ++d) {
        if (s != d) p.messages.push_back({s, d, light_bytes});
      }
    }
  }
  return p;
}

TrafficPattern make_master_worker(int np, std::size_t request_bytes,
                                  std::size_t response_bytes) {
  LAMA_ASSERT(np >= 2);
  TrafficPattern p{"master_worker", np, {}};
  for (int w = 1; w < np; ++w) {
    p.messages.push_back({0, w, request_bytes});
    p.messages.push_back({w, 0, response_bytes});
  }
  return p;
}

TrafficPattern make_random_sparse(int np, int degree, std::size_t bytes,
                                  std::uint64_t seed) {
  LAMA_ASSERT(np >= 2 && degree >= 1 && degree < np);
  TrafficPattern p{"random_sparse", np, {}};
  SplitMix64 rng(seed);
  for (int r = 0; r < np; ++r) {
    std::vector<int> peers;
    while (static_cast<int>(peers.size()) < degree) {
      const int d = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(np)));
      if (d != r && std::find(peers.begin(), peers.end(), d) == peers.end()) {
        peers.push_back(d);
      }
    }
    for (int d : peers) p.messages.push_back({r, d, bytes});
  }
  return p;
}

TrafficPattern make_transpose(int n, std::size_t bytes) {
  LAMA_ASSERT(n >= 2);
  TrafficPattern p{"transpose", n * n, {}};
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) p.messages.push_back({i * n + j, j * n + i, bytes});
    }
  }
  return p;
}

TrafficPattern make_strided_pairs(int np, int stride, std::size_t bytes) {
  LAMA_ASSERT(np >= 2 && stride >= 1 && stride * 2 <= np);
  TrafficPattern p{"strided_pairs", np, {}};
  for (int r = 0; r < stride; ++r) {
    p.messages.push_back({r, r + stride, bytes});
    p.messages.push_back({r + stride, r, bytes});
  }
  return p;
}

TrafficPattern make_pairs(int np, std::size_t bytes) {
  LAMA_ASSERT(np >= 2);
  TrafficPattern p{"pairs", np, {}};
  for (int r = 0; r + 1 < np; r += 2) {
    p.messages.push_back({r, r + 1, bytes});
    p.messages.push_back({r + 1, r, bytes});
  }
  return p;
}

namespace {

// Largest divisor of np that is <= sqrt(np): the px of the most cubic
// px-by-py grid. np prime degenerates to a 1-by-np strip, which the halo
// generators accept.
int squarest_factor(int np) {
  int best = 1;
  for (int f = 1; f * f <= np; ++f) {
    if (np % f == 0) best = f;
  }
  return best;
}

}  // namespace

TrafficPattern make_named_pattern(const std::string& spec, int np) {
  if (np < 2) throw ParseError("named patterns need np >= 2");
  const auto colon = spec.find(':');
  const std::string name =
      colon == std::string::npos ? spec : spec.substr(0, colon);
  const std::size_t bytes =
      colon == std::string::npos
          ? 4096
          : parse_size(spec.substr(colon + 1), "pattern bytes");
  if (name == "ring") return make_ring(np, bytes);
  if (name == "halo") {
    const int px = squarest_factor(np);
    return make_halo2d(px, np / px, bytes);
  }
  if (name == "halo3d") {
    const int pz = squarest_factor(np);  // coarse: slab the squarest plane
    const int px = squarest_factor(np / pz);
    return make_halo3d(px, (np / pz) / px, pz, bytes);
  }
  if (name == "alltoall") return make_alltoall(np, bytes);
  if (name == "gtc") {
    // GTC-like: heavy particle shifts, light (1/16) global diagnostics.
    return make_toroidal(np, bytes, std::max<std::size_t>(1, bytes / 16));
  }
  if (name == "toroidal") return make_toroidal(np, bytes, 0);
  if (name == "pairs") return make_pairs(np, bytes);
  if (name == "stride") return make_strided_pairs(np, np / 2, bytes);
  if (name == "transpose") {
    const int n = squarest_factor(np);
    if (n * n != np) {
      throw ParseError("transpose needs a square np, got " +
                       std::to_string(np));
    }
    return make_transpose(n, bytes);
  }
  if (name == "master_worker") return make_master_worker(np, 256, bytes);
  if (name == "random") return make_random_sparse(np, std::min(np - 1, 4),
                                                  bytes, /*seed=*/42);
  throw ParseError("unknown pattern '" + name +
                   "' (ring|halo|halo3d|alltoall|gtc|toroidal|pairs|stride|"
                   "transpose|master_worker|random)");
}

}  // namespace lama
