// Prices a traffic pattern under a mapping: the quantitative lens the paper's
// motivating claims are checked with. Each rank is represented by the first
// PU of its placement; every message is priced by the distance model, and
// congestion is tracked as the byte volume crossing each node's network
// interface.
#pragma once

#include <array>
#include <vector>

#include "cluster/cluster.hpp"
#include "lama/mapping.hpp"
#include "sim/distance_model.hpp"
#include "sim/traffic.hpp"

namespace lama {

struct CostReport {
  double total_ns = 0.0;     // sum over all messages
  double max_rank_ns = 0.0;  // busiest rank (send + receive cost)
  double avg_message_ns = 0.0;

  std::size_t intra_node_messages = 0;
  std::size_t inter_node_messages = 0;

  // Message count by sharing level (canonical depth index); inter-node
  // messages are not included here.
  std::array<std::size_t, kNumResourceTypes> messages_by_level{};

  // Bytes entering+leaving each node's NIC; max is the congestion hot spot.
  std::size_t max_nic_bytes = 0;
  std::size_t total_nic_bytes = 0;
};

// Evaluates the pattern under a mapping. The pattern's np must equal the
// mapping's process count; throws MappingError otherwise.
CostReport evaluate_mapping(const Allocation& alloc,
                            const MappingResult& mapping,
                            const TrafficPattern& pattern,
                            const DistanceModel& model);

}  // namespace lama
