#include "sim/torus_evaluator.hpp"

#include "support/error.hpp"

namespace lama {

TorusCostReport evaluate_on_torus(const Allocation& alloc,
                                  const TorusNetwork& net,
                                  const MappingResult& mapping,
                                  const TrafficPattern& pattern,
                                  const DistanceModel& model,
                                  const TorusCostModel& net_model) {
  if (alloc.num_nodes() != net.num_nodes()) {
    throw MappingError("allocation and torus sizes differ");
  }
  if (static_cast<std::size_t>(pattern.np) != mapping.placements.size()) {
    throw MappingError("pattern '" + pattern.name + "' has " +
                       std::to_string(pattern.np) + " ranks but the mapping " +
                       std::to_string(mapping.placements.size()));
  }

  std::vector<std::size_t> node_of(mapping.placements.size());
  std::vector<std::size_t> pu_of(mapping.placements.size());
  for (const Placement& p : mapping.placements) {
    node_of[static_cast<std::size_t>(p.rank)] = p.node;
    pu_of[static_cast<std::size_t>(p.rank)] = p.representative_pu();
  }

  TorusCostReport report;
  std::vector<double> rank_ns(mapping.placements.size(), 0.0);
  std::vector<std::size_t> link_bytes(net.num_links(), 0);

  for (const Message& m : pattern.messages) {
    const std::size_t src = static_cast<std::size_t>(m.src);
    const std::size_t dst = static_cast<std::size_t>(m.dst);
    double ns = 0.0;
    if (node_of[src] == node_of[dst]) {
      ++report.intra_node_messages;
      const NodeTopology& topo = alloc.node(node_of[src]).topo;
      ns = model
               .level_cost(DistanceModel::sharing_level(topo, pu_of[src],
                                                        pu_of[dst]))
               .message_ns(m.bytes);
    } else {
      ++report.inter_node_messages;
      const int hops = net.hops(node_of[src], node_of[dst]);
      report.total_hop_count += static_cast<std::size_t>(hops);
      report.max_hops = std::max(report.max_hops, hops);
      ns = net_model.message_ns(hops, m.bytes);
      for (const TorusNetwork::Link& link :
           net.route(node_of[src], node_of[dst])) {
        link_bytes[net.link_index(link)] += m.bytes;
      }
    }
    report.total_ns += ns;
    rank_ns[src] += ns;
    rank_ns[dst] += ns;
  }

  for (double ns : rank_ns) {
    report.max_rank_ns = std::max(report.max_rank_ns, ns);
  }
  std::size_t used_total = 0;
  for (std::size_t bytes : link_bytes) {
    if (bytes == 0) continue;
    ++report.links_used;
    used_total += bytes;
    report.max_link_bytes = std::max(report.max_link_bytes, bytes);
  }
  if (report.links_used > 0) {
    report.avg_link_bytes =
        static_cast<double>(used_total) / static_cast<double>(report.links_used);
  }
  if (report.inter_node_messages > 0) {
    report.avg_hops = static_cast<double>(report.total_hop_count) /
                      static_cast<double>(report.inter_node_messages);
  }
  report.bottleneck_ns = static_cast<double>(report.max_link_bytes) /
                         net_model.bandwidth_gb_s;
  return report;
}

}  // namespace lama
