// C9 — §III-B's three enforcement modes: "no restrictions" (the OS may run
// the process anywhere), "limited set restrictions" (a common subset), and
// "specific resource restrictions" (unique processors per process), of which
// the last "provides the best possibility for optimal execution" because it
// eliminates inter-processor migration. Reproduced as a migration study:
// an iterative neighbour application where unpinned processes are moved by
// a simulated OS scheduler between rounds, paying a cache-rewarm penalty and
// losing the locality the mapping had arranged.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lama/binding.hpp"
#include "lama/mapper.hpp"
#include "sim/evaluator.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

constexpr double kRewarmNs = 15000.0;  // cache/TLB refill after a migration
constexpr double kMigrationProb = 0.35;
constexpr std::size_t kRounds = 20;

Allocation smt_cluster() {
  return allocate_all(Cluster::homogeneous(2, "socket:2 core:4 pu:2"));
}

struct ModeResult {
  double comm_ms = 0.0;
  double rewarm_ms = 0.0;
  std::size_t migrations = 0;
  [[nodiscard]] double total_ms() const { return comm_ms + rewarm_ms; }
};

// Runs `rounds` of the pattern with per-round OS migration inside each
// process's allowed cpuset (the binding). Deterministic in `seed`.
ModeResult run_mode(const Allocation& alloc, const MappingResult& mapping,
                    const BindingResult& binding,
                    const TrafficPattern& pattern, std::uint64_t seed) {
  const DistanceModel model = DistanceModel::commodity();
  SplitMix64 rng(seed);
  ModeResult result;

  // Current PU per rank; start at the mapped representative.
  MappingResult current = mapping;
  for (std::size_t round = 0; round < kRounds; ++round) {
    result.comm_ms +=
        evaluate_mapping(alloc, current, pattern, model).total_ns / 1e6;
    // OS scheduling decision between rounds: each rank whose allowed set
    // has more than one PU may be moved within it.
    for (std::size_t r = 0; r < current.placements.size(); ++r) {
      const Bitmap& allowed = binding.bindings[r].cpuset;
      if (allowed.count() <= 1 || !rng.next_bool(kMigrationProb)) continue;
      const std::size_t choice = rng.next_below(allowed.count());
      const std::size_t pu = allowed.nth(choice);
      if (pu != current.placements[r].representative_pu()) {
        current.placements[r].target_pus = Bitmap::single(pu);
        ++result.migrations;
        result.rewarm_ms += kRewarmNs / 1e6;
      }
    }
  }
  return result;
}

void print_binding_modes() {
  const Allocation alloc = smt_cluster();
  const std::size_t np = alloc.total_online_pus();
  const TrafficPattern pattern = make_pairs(static_cast<int>(np), 8192);
  const MappingResult mapping = lama_map(alloc, "hcsbn", {.np = np});

  std::printf(
      "=== C9: binding enforcement modes (pairs pattern, %zu rounds, "
      "migration prob %.2f) ===\n",
      kRounds, kMigrationProb);
  TextTable table({"mode", "comm ms", "rewarm ms", "total ms", "migrations"});

  struct Mode {
    const char* name;
    BindTarget target;
  };
  for (const Mode& mode :
       {Mode{"specific resource (bind hwthread)", BindTarget::kHwThread},
        Mode{"specific resource (bind core)", BindTarget::kCore},
        Mode{"limited set (bind socket)", BindTarget::kSocket},
        Mode{"no restrictions (node-wide)", BindTarget::kNone}}) {
    const BindingResult binding =
        bind_processes(alloc, mapping, {.target = mode.target});
    const ModeResult r = run_mode(alloc, mapping, binding, pattern, 42);
    table.add_row({mode.name, TextTable::cell(r.comm_ms, 3),
                   TextTable::cell(r.rewarm_ms, 3),
                   TextTable::cell(r.total_ms(), 3),
                   TextTable::cell(r.migrations)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "(narrower bindings forbid migration: no rewarm cost and the mapped "
      "locality survives — §III-B's ranking reproduced)\n\n");
}

void BM_MigrationStudy(benchmark::State& state) {
  const Allocation alloc = smt_cluster();
  const std::size_t np = alloc.total_online_pus();
  const TrafficPattern pattern = make_pairs(static_cast<int>(np), 8192);
  const MappingResult mapping = lama_map(alloc, "hcsbn", {.np = np});
  const BindingResult binding =
      bind_processes(alloc, mapping, {.target = BindTarget::kNone});
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_mode(alloc, mapping, binding, pattern, 42));
  }
}
BENCHMARK(BM_MigrationStudy);

}  // namespace

int main(int argc, char** argv) {
  print_binding_modes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
