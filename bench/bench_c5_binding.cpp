// C5 — binding width (§III-B): "the number of processors to which a process
// is bound is referred to as its binding width". Sweeps the bind target from
// hardware thread to whole node on a NUMA machine, prints the resulting
// widths and overload status, and times binding computation including
// overload detection.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lama/binding.hpp"
#include "lama/mapper.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

Allocation numa_alloc(std::size_t nodes = 2) {
  return allocate_all(
      Cluster::homogeneous(nodes, "socket:2 numa:2 l3:1 l2:4 l1:1 core:1 pu:2"));
}

void print_binding_widths() {
  const Allocation alloc = numa_alloc();
  const MappingResult m = lama_map(alloc, "scbnh", {.np = 16});
  std::printf(
      "=== C5: binding width by target level (dual-socket NUMA node, 32 PUs) "
      "===\n");
  TextTable table({"bind target", "width (PUs)", "overloaded"});
  for (BindTarget t : {BindTarget::kHwThread, BindTarget::kCore,
                       BindTarget::kL2, BindTarget::kL3, BindTarget::kNuma,
                       BindTarget::kSocket, BindTarget::kNode,
                       BindTarget::kNone}) {
    const BindingResult b = bind_processes(alloc, m, {.target = t});
    table.add_row({bind_target_name(t),
                   TextTable::cell(b.bindings.front().width),
                   b.overloaded ? "yes" : "no"});
  }
  std::printf("%s", table.to_string().c_str());

  // Width > 1: the Open MPI "<N><level>" syntax for multi-threaded procs.
  std::printf("\nmulti-object widths (layout csbnh, 4 procs):\n");
  const MappingResult wide_m = lama_map(alloc, "csbnh", {.np = 4});
  TextTable wide({"policy", "width (PUs)"});
  for (std::size_t w : {1u, 2u, 4u}) {
    const BindingResult b = bind_processes(
        alloc, wide_m, {.target = BindTarget::kCore, .width = w});
    wide.add_row({std::to_string(w) + "c",
                  TextTable::cell(b.bindings.front().width)});
  }
  std::printf("%s\n", wide.to_string().c_str());
}

void BM_BindByTarget(benchmark::State& state) {
  static const BindTarget kTargets[] = {BindTarget::kHwThread,
                                        BindTarget::kCore, BindTarget::kNuma,
                                        BindTarget::kSocket, BindTarget::kNone};
  const BindTarget target = kTargets[state.range(0)];
  const Allocation alloc = numa_alloc(8);
  const std::size_t np = alloc.total_online_pus();
  const MappingResult m = lama_map(alloc, "scbnh", {.np = np});
  state.SetLabel(bind_target_name(target));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bind_processes(alloc, m, {.target = target}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(np));
}
BENCHMARK(BM_BindByTarget)->DenseRange(0, 4);

void BM_BindOverloadedJob(benchmark::State& state) {
  // Oversubscribed mapping exercises the per-object load bookkeeping.
  const Allocation alloc = numa_alloc(2);
  const MappingResult m =
      lama_map(alloc, "hcsbn", {.np = alloc.total_online_pus() * 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bind_processes(alloc, m, {.target = BindTarget::kCore}));
  }
}
BENCHMARK(BM_BindOverloadedJob);

}  // namespace

int main(int argc, char** argv) {
  print_binding_widths();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
