// F2 — Figure 2: the worked example. Regenerates the exact rank grid the
// paper draws (layout "scbnh", 24 processes, two 2-socket x 4-core x
// 2-thread nodes), verifies it against the figure, and times the end-to-end
// plan (map + bind) for the example job.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "lama/binding.hpp"
#include "lama/mapper.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

Allocation figure2_allocation() {
  return allocate_all(Cluster::homogeneous(2, "socket:2 core:4 pu:2"));
}

// Rank expected at (node, socket, core-in-socket, thread) per the figure.
int figure2_expected_rank(std::size_t n, std::size_t s, std::size_t c,
                          std::size_t h) {
  return static_cast<int>(h * 16 + n * 8 + c * 2 + s);
}

void print_figure2() {
  const Allocation alloc = figure2_allocation();
  const MappingResult m = lama_map(alloc, "scbnh", {.np = 24});

  std::printf(
      "=== Figure 2: mapping 24 processes with process layout scbnh ===\n");
  bool ok = true;
  for (std::size_t n = 0; n < 2; ++n) {
    std::printf("Machine %zu\n", n);
    for (std::size_t s = 0; s < 2; ++s) {
      TextTable row({"Socket " + std::to_string(s), "core0", "core1", "core2",
                     "core3"});
      for (std::size_t h = 0; h < 2; ++h) {
        std::vector<std::string> cells = {"thread" + std::to_string(h)};
        for (std::size_t c = 0; c < 4; ++c) {
          const int expected = figure2_expected_rank(n, s, c, h);
          if (expected < 24) {
            cells.push_back(std::to_string(expected));
            // Verify the mapper agrees with the figure.
            const Placement& p =
                m.placements[static_cast<std::size_t>(expected)];
            const std::size_t pu = s * 8 + c * 2 + h;
            if (p.node != n || p.representative_pu() != pu) ok = false;
          } else {
            cells.push_back("-");
          }
        }
        row.add_row(cells);
      }
      std::printf("%s", row.to_string().c_str());
    }
  }
  std::printf("figure reproduction: %s\n\n", ok ? "MATCHES" : "MISMATCH");
  if (!ok) std::exit(1);
}

void BM_Figure2MapAndBind(benchmark::State& state) {
  const Allocation alloc = figure2_allocation();
  const ProcessLayout layout = ProcessLayout::parse("scbnh");
  for (auto _ : state) {
    const MappingResult m = lama_map(alloc, layout, {.np = 24});
    benchmark::DoNotOptimize(
        bind_processes(alloc, m, {.target = BindTarget::kCore}));
  }
}
BENCHMARK(BM_Figure2MapAndBind);

}  // namespace

int main(int argc, char** argv) {
  print_figure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
