// F1 — Figure 1: the recursive mapping loop itself. The paper presents the
// algorithm; this benchmark characterizes its cost: time to map np processes
// as a function of job size, node count, layout, and the fraction of
// coordinates that must be skipped (restrictions / heterogeneity).
#include <benchmark/benchmark.h>

#include "lama/mapper.hpp"
#include "support/rng.hpp"
#include "topo/presets.hpp"

namespace {

using namespace lama;

Allocation make_alloc(std::size_t nodes) {
  return allocate_all(Cluster::homogeneous(nodes, "socket:2 core:4 pu:2"));
}

// Map np processes over nodes sized so the job exactly fills the PUs.
void BM_MapScaleNp(benchmark::State& state) {
  const std::size_t np = static_cast<std::size_t>(state.range(0));
  const Allocation alloc = make_alloc(np / 16);
  const ProcessLayout layout = ProcessLayout::parse("scbnh");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, layout, {.np = np}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(np));
}
BENCHMARK(BM_MapScaleNp)->RangeMultiplier(4)->Range(64, 16384);

// Same job size, different layouts: iteration order changes the number of
// loop-nest transitions but not the asymptotics.
void BM_MapLayouts(benchmark::State& state) {
  static const char* kLayouts[] = {"scbnh", "hcsbn", "nhcsb", "bnsch",
                                   "hcL1L2L3Nsbn"};
  const Allocation alloc = make_alloc(16);
  const ProcessLayout layout =
      ProcessLayout::parse(kLayouts[state.range(0)]);
  state.SetLabel(layout.to_string());
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, layout, {.np = 256}));
  }
}
BENCHMARK(BM_MapLayouts)->DenseRange(0, 4);

// Restrictions force skips: disable a growing fraction of PUs and map a job
// that fills what is left.
void BM_MapWithOfflineFraction(benchmark::State& state) {
  const double frac = static_cast<double>(state.range(0)) / 100.0;
  Cluster cluster = Cluster::homogeneous(16, "socket:2 core:4 pu:2");
  Allocation alloc = allocate_all(cluster);
  SplitMix64 rng(7);
  for (std::size_t n = 0; n < alloc.num_nodes(); ++n) {
    Bitmap allowed;
    for (std::size_t pu = 0; pu < 16; ++pu) {
      if (!rng.next_bool(frac)) allowed.set(pu);
    }
    if (allowed.empty()) allowed.set(0);
    alloc.mutable_node(n).topo.restrict_pus(allowed);
  }
  const std::size_t np = alloc.total_online_pus();
  const ProcessLayout layout = ProcessLayout::parse("scbnh");
  std::size_t skipped = 0;
  for (auto _ : state) {
    const MappingResult m = lama_map(alloc, layout, {.np = np});
    skipped = m.skipped;
    benchmark::DoNotOptimize(m);
  }
  state.counters["skipped"] = static_cast<double>(skipped);
  state.counters["np"] = static_cast<double>(np);
}
BENCHMARK(BM_MapWithOfflineFraction)->Arg(0)->Arg(25)->Arg(50)->Arg(75);

// Heterogeneous system: half the nodes are small; the maximal tree is sized
// by the big ones, so small nodes cause skips every sweep.
void BM_MapHeterogeneous(benchmark::State& state) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  Cluster cluster;
  for (std::size_t i = 0; i < nodes; ++i) {
    if (i % 2 == 0) {
      cluster.add_node(NodeTopology::synthetic("socket:2 core:4 pu:2",
                                               "big" + std::to_string(i)));
    } else {
      cluster.add_node(NodeTopology::synthetic("socket:1 core:4",
                                               "small" + std::to_string(i)));
    }
  }
  const Allocation alloc = allocate_all(cluster);
  const std::size_t np = alloc.total_online_pus();
  const ProcessLayout layout = ProcessLayout::parse("scbnh");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, layout, {.np = np}));
  }
  state.counters["np"] = static_cast<double>(np);
}
BENCHMARK(BM_MapHeterogeneous)->RangeMultiplier(4)->Range(4, 256);

// Oversubscription wraps the full space repeatedly.
void BM_MapOversubscribed(benchmark::State& state) {
  const Allocation alloc = make_alloc(4);
  const std::size_t sweeps = static_cast<std::size_t>(state.range(0));
  const std::size_t np = alloc.total_online_pus() * sweeps;
  const ProcessLayout layout = ProcessLayout::parse("hcsbn");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, layout, {.np = np}));
  }
}
BENCHMARK(BM_MapOversubscribed)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
