// S3 — the cost of observability on the hot path. The tracing design
// claims the warm-cache request path pays almost nothing for
// instrumentation: span recording is one TLS read when no trace is active,
// and with 1/64 head-based sampling only every 64th request assembles a
// trace. This benchmark prices that claim directly: the identical
// warm-cache request stream runs against three service configurations —
//   off      - no flight recorder (tracer never constructed)
//   sampled  - flight recorder on, trace_sample=64 (the serving default)
//   always   - trace_sample=1 (every request assembles and is retained)
// and writes BENCH_s3_obs.json (to argv[1], default ./BENCH_s3_obs.json)
// with the minimum wall time of each mode over the repeats and the
// fractional overheads against `off`. The acceptance bar is
// overhead_sampled <= threshold (argv[2], default 0.05): default-rate
// tracing costs at most 5% on the warm-cache path. CI's shared runners
// pass a looser 0.10 to absorb scheduling noise. All modes run inline
// (workers=0), so the numbers measure instrumentation, not pool
// scheduling.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "svc/service.hpp"

namespace {

using namespace lama;

constexpr std::size_t kRepeats = 15;
constexpr std::size_t kRoundsPerRepeat = 150;
constexpr std::uint32_t kSampleEvery = 64;
constexpr const char* kDeepNode = "socket:2 numa:2 l3:1 l2:2 core:2 pu:2";
constexpr const char* kLayouts[] = {"scbnh", "hcsbn", "nhcsb", "bnhsc",
                                    "cbsnh", "hsbcn", "sbnch", "nbcsh"};

// One service configuration under test, with its warm request stream.
struct Mode {
  std::unique_ptr<svc::MappingService> service;
  std::vector<svc::MapRequest> stream;
  std::uint64_t best_ns = ~0ull;
};

Mode make_mode(const Allocation& alloc, std::size_t flight_recorder,
               std::uint32_t trace_sample) {
  svc::ServiceConfig config;
  config.workers = 0;
  config.cache_shards = 8;
  config.shard_capacity = 64;
  config.flight_recorder = flight_recorder;
  config.trace_sample = trace_sample;
  Mode mode;
  mode.service = std::make_unique<svc::MappingService>(config);
  const svc::InternedAlloc interned = mode.service->intern(alloc);
  for (const char* layout : kLayouts) {
    mode.stream.push_back(
        {interned, std::string("lama:") + layout, {.np = 8}});
  }
  for (const svc::MapRequest& request : mode.stream) {
    mode.service->map(request);  // warm the cache untimed
  }
  return mode;
}

std::uint64_t time_one_repeat(Mode& mode) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < kRoundsPerRepeat; ++round) {
    for (const svc::MapRequest& request : mode.stream) {
      const svc::MapResponse response = mode.service->map(request);
      if (!response.ok()) std::abort();  // a miss would invalidate timing
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_s3_obs.json");
  const double threshold = argc > 2 ? std::atof(argv[2]) : 0.05;
  const Allocation alloc =
      allocate_all(Cluster::homogeneous(8, kDeepNode));

  // The repeats of the three modes are interleaved (off, sampled, always,
  // off, sampled, always, …) so every mode's minimum samples the same
  // noise environment — running the modes back to back lets machine drift
  // (frequency scaling, noisy neighbors) masquerade as tracing overhead.
  Mode off = make_mode(alloc, 0, 0);
  Mode sampled = make_mode(alloc, 16, kSampleEvery);
  Mode always = make_mode(alloc, 16, 1);
  for (std::size_t r = 0; r < kRepeats; ++r) {
    off.best_ns = std::min(off.best_ns, time_one_repeat(off));
    sampled.best_ns = std::min(sampled.best_ns, time_one_repeat(sampled));
    always.best_ns = std::min(always.best_ns, time_one_repeat(always));
  }
  const std::uint64_t off_ns = off.best_ns;
  const std::uint64_t sampled_ns = sampled.best_ns;
  const std::uint64_t always_ns = always.best_ns;

  const double overhead_sampled =
      static_cast<double>(sampled_ns) / static_cast<double>(off_ns) - 1.0;
  const double overhead_always =
      static_cast<double>(always_ns) / static_cast<double>(off_ns) - 1.0;
  const bool pass = overhead_sampled <= threshold;

  const std::size_t requests_per_repeat =
      kRoundsPerRepeat * (sizeof(kLayouts) / sizeof(kLayouts[0]));
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"s3_obs\",\n"
               "  \"requests_per_repeat\": %zu,\n"
               "  \"repeats\": %zu,\n"
               "  \"sample_every\": %u,\n"
               "  \"off_ns\": %llu,\n"
               "  \"sampled_ns\": %llu,\n"
               "  \"always_ns\": %llu,\n"
               "  \"overhead_sampled\": %.4f,\n"
               "  \"overhead_always\": %.4f,\n"
               "  \"threshold\": %.4f,\n"
               "  \"pass\": %s\n"
               "}\n",
               requests_per_repeat, kRepeats, kSampleEvery,
               static_cast<unsigned long long>(off_ns),
               static_cast<unsigned long long>(sampled_ns),
               static_cast<unsigned long long>(always_ns), overhead_sampled,
               overhead_always, threshold, pass ? "true" : "false");
  std::fclose(out);
  std::printf(
      "s3_obs: %zu warm requests/repeat  off=%.3f ms  sampled(1/%u)=%.3f ms "
      " always=%.3f ms  overhead_sampled=%.4f  overhead_always=%.4f  %s\n",
      requests_per_repeat, off_ns / 1e6, kSampleEvery, sampled_ns / 1e6,
      always_ns / 1e6, overhead_sampled, overhead_always,
      pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
