// C7 — the paper's §I workflow, automated: "domain-level experts need to be
// able to specify and experiment with different placements to find an
// optimal configuration". Measures what that experiment costs when run
// in simulation (a sampled sweep of the 362,880-layout space against an
// application pattern) and prints the resulting top/bottom layouts.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "sim/autotune.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

Allocation numa_cluster() {
  return allocate_all(
      Cluster::homogeneous(4, "socket:2 numa:2 l3:1 l2:4 l1:1 core:1 pu:2"));
}

void print_autotune_report() {
  const Allocation alloc = numa_cluster();
  const std::size_t np = alloc.total_online_pus();
  const TrafficPattern halo = make_halo2d(16, static_cast<int>(np / 16), 4096);

  AutotuneOptions opts;
  opts.sample_stride = 720;  // 504 sampled layouts
  const AutotuneResult r =
      autotune_layout(alloc, halo, DistanceModel::commodity(), opts);

  std::printf(
      "=== C7: automated layout search (halo2d, np=%zu, %zu sampled layouts) "
      "===\n",
      np, r.evaluated);
  TextTable table({"rank", "layout", "total ms"});
  for (std::size_t i = 0; i < 5 && i < r.ranking.size(); ++i) {
    table.add_row({"#" + std::to_string(i + 1), r.ranking[i].layout,
                   TextTable::cell(r.ranking[i].total_ns / 1e6, 3)});
  }
  table.add_row({"...", "...", "..."});
  for (std::size_t i = r.ranking.size() - 3; i < r.ranking.size(); ++i) {
    table.add_row({"#" + std::to_string(i + 1), r.ranking[i].layout,
                   TextTable::cell(r.ranking[i].total_ns / 1e6, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("best-vs-worst spread: %.1f%%\n\n", r.spread() * 100.0);
}

void BM_AutotuneSampledSweep(benchmark::State& state) {
  const Allocation alloc = numa_cluster();
  const std::size_t np = alloc.total_online_pus();
  const TrafficPattern halo = make_halo2d(16, static_cast<int>(np / 16), 4096);
  AutotuneOptions opts;
  opts.sample_stride = static_cast<std::size_t>(state.range(0));
  std::size_t evaluated = 0;
  for (auto _ : state) {
    const AutotuneResult r =
        autotune_layout(alloc, halo, DistanceModel::commodity(), opts);
    evaluated = r.evaluated;
    benchmark::DoNotOptimize(r);
  }
  state.counters["layouts"] = static_cast<double>(evaluated);
}
BENCHMARK(BM_AutotuneSampledSweep)
    ->Arg(36288)
    ->Arg(7560)
    ->Arg(1440)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_autotune_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
