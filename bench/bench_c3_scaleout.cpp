// C3 — scale-out claim: the LAMA "is able to naturally scale out to
// additional hardware resources as they become available". Measures maximal-
// tree construction and full-job mapping as the allocation grows to
// thousands of nodes, and prints the resulting wall-time series.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "lama/mapper.hpp"
#include "lama/maximal_tree.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

Allocation make_alloc(std::size_t nodes) {
  return allocate_all(Cluster::homogeneous(nodes, "socket:2 core:4 pu:2"));
}

void print_scaleout_series() {
  std::printf("=== C3: mapping cost vs system size (layout scbnh) ===\n");
  TextTable table({"nodes", "PUs", "np", "tree build ms", "map ms",
                   "us per proc"});
  const ProcessLayout layout = ProcessLayout::parse("scbnh");
  for (std::size_t nodes : {16u, 64u, 256u, 1024u, 4096u}) {
    const Allocation alloc = make_alloc(nodes);
    const std::size_t np = alloc.total_online_pus();

    const auto t0 = std::chrono::steady_clock::now();
    const MaximalTree mtree(alloc, layout);
    const auto t1 = std::chrono::steady_clock::now();
    const MappingResult m = lama_map(alloc, layout, {.np = np});
    const auto t2 = std::chrono::steady_clock::now();

    const double build_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double map_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    table.add_row({TextTable::cell(nodes), TextTable::cell(np),
                   TextTable::cell(m.num_procs()),
                   TextTable::cell(build_ms, 2), TextTable::cell(map_ms, 2),
                   TextTable::cell(map_ms * 1e3 / static_cast<double>(np),
                                   3)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_MaximalTreeBuild(benchmark::State& state) {
  const Allocation alloc = make_alloc(static_cast<std::size_t>(state.range(0)));
  const ProcessLayout layout = ProcessLayout::parse("scbnh");
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximalTree(alloc, layout));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MaximalTreeBuild)->RangeMultiplier(4)->Range(16, 1024);

void BM_MapFullSystem(benchmark::State& state) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  const Allocation alloc = make_alloc(nodes);
  const std::size_t np = alloc.total_online_pus();
  const ProcessLayout layout = ProcessLayout::parse("scbnh");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, layout, {.np = np}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(np));
}
BENCHMARK(BM_MapFullSystem)->RangeMultiplier(4)->Range(16, 1024);

// Allocation copies (what a resource manager hands each job) must also scale.
void BM_AllocationBuild(benchmark::State& state) {
  const Cluster cluster = Cluster::homogeneous(
      static_cast<std::size_t>(state.range(0)), "socket:2 core:4 pu:2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocate_all(cluster));
  }
}
BENCHMARK(BM_AllocationBuild)->RangeMultiplier(4)->Range(16, 1024);

}  // namespace

int main(int argc, char** argv) {
  print_scaleout_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
