// C1 — the paper's headline capability claim: "As implemented in Open MPI,
// the LAMA provides 362,880 mapping permutations". Enumerates every full
// permutation of the Table I alphabet, validates that each one is a legal
// layout, maps a small job under a deterministic sample, and counts how many
// distinct placements the permutation space actually produces on a concrete
// machine.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>
#include <string>

#include "lama/mapper.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

void print_permutation_report() {
  // 1. Every permutation is a valid layout.
  std::uint64_t count = 0;
  ProcessLayout::for_each_full_permutation([&](const ProcessLayout& l) {
    ++count;
    if (l.size() != 9) std::abort();
  });
  std::printf("=== C1: mapping permutation space ===\n");
  std::printf("enumerated full layouts: %llu (claim: %llu)\n",
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(
                  ProcessLayout::num_full_permutations()));

  // 2. How many *distinct mappings* those layouts induce on a real machine
  //    (many permutations coincide when hardware levels are degenerate, e.g.
  //    swapping two width-1 cache levels changes nothing).
  const Allocation alloc =
      allocate_all(Cluster::homogeneous(2, "socket:2 numa:2 l3:1 l2:2 l1:1 core:2 pu:2"));
  const std::size_t np = 16;
  std::set<std::string> distinct;
  std::uint64_t sampled = 0;
  std::uint64_t i = 0;
  ProcessLayout::for_each_full_permutation([&](const ProcessLayout& l) {
    // Deterministic 1-in-16 sample keeps the sweep under a second.
    if (i++ % 16 != 0) return;
    ++sampled;
    const MappingResult m = lama_map(alloc, l, {.np = np});
    std::string key;
    for (const Placement& p : m.placements) {
      key += std::to_string(p.node) + ":" +
             std::to_string(p.representative_pu()) + ";";
    }
    distinct.insert(std::move(key));
  });
  std::printf(
      "sampled %llu layouts on a 2-node NUMA cluster (np=%zu): %zu distinct "
      "rank placements\n\n",
      static_cast<unsigned long long>(sampled), np, distinct.size());
}

void BM_EnumerateAllPermutations(benchmark::State& state) {
  for (auto _ : state) {
    std::uint64_t n = 0;
    ProcessLayout::for_each_full_permutation(
        [&](const ProcessLayout&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 362880);
}
BENCHMARK(BM_EnumerateAllPermutations)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_permutation_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
