// S6 — pipelined binary keep-alive against connect-per-request text, over
// real loopback sockets through the epoll server. The baseline is the
// stateless CLI pattern: every request opens a TCP connection, defines the
// allocation (NODE line), sends one text MAP, reads the responses, and
// closes — paying connect, per-line parse, and a full round-trip per job.
// The contender holds one binary keep-alive connection, defines the
// allocation once, and pipelines MAP frames kDepth deep, so connect cost
// disappears and the server coalesces reads/writes across the window.
//
// Both sides hit the same warm plan cache with workers=0 (inline dispatch),
// so the measured gap is pure transport: framing, syscalls, and round-trip
// scheduling. Writes BENCH_s6_wire.json (argv[1], default
// ./BENCH_s6_wire.json) with minimum wall times over the repeats; exits
// nonzero unless the pipelined binary mode is at least argv[2] (default
// 10.0) times faster than the connect-per-request baseline. A keep-alive
// text mode is timed as an informational middle point separating the
// amortization win (keep-alive) from the pipelining win (windowed frames).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>

#include "svc/event_loop.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"

namespace {

using namespace lama;

constexpr std::size_t kRequests = 256;
constexpr std::size_t kDepth = 32;
constexpr std::size_t kRepeats = 7;

constexpr const char* kNodeLine =
    "NODE a0 8 (node (socket@0 (core@0 (pu@0) (pu@1)) (core@1 (pu@2) (pu@3))) "
    "(socket@1 (core@2 (pu@4) (pu@5)) (core@3 (pu@6) (pu@7))))";
constexpr const char* kMapLine = "MAP a0 4 lama:scbnh";

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Minimal buffered reader; blocking reads, process exits on protocol damage
// (this is a benchmark, not a conformance test — any surprise is fatal).
struct Reader {
  int fd;
  std::string buf;

  bool fill() {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buf.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
  }

  bool read_line(std::string& line) {
    for (;;) {
      const auto nl = buf.find('\n');
      if (nl != std::string::npos) {
        line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return true;
      }
      if (!fill()) return false;
    }
  }

  bool read_frame(std::string& payload) {
    for (;;) {
      svc::WireFrame frame;
      std::size_t consumed = 0;
      std::string error;
      const svc::FrameStatus status =
          svc::decode_frame(buf, frame, consumed, error);
      if (status == svc::FrameStatus::kFrame) {
        payload.assign(frame.payload);
        buf.erase(0, consumed);
        return true;
      }
      if (status == svc::FrameStatus::kBad) {
        std::fprintf(stderr, "frame damage: %s\n", error.c_str());
        std::exit(1);
      }
      if (!fill()) return false;
    }
  }
};

void die(const char* what) {
  std::fprintf(stderr, "s6_wire: %s\n", what);
  std::exit(1);
}

std::uint64_t elapsed_ns(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
}

std::uint64_t min_over_repeats(const std::function<void()>& fn) {
  std::uint64_t best = ~0ull;
  for (std::size_t r = 0; r < kRepeats; ++r) {
    best = std::min(best, elapsed_ns(fn));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_s6_wire.json");
  const double gate = argc > 2 ? std::atof(argv[2]) : 10.0;

  svc::MappingService service(
      {.workers = 0, .cache_shards = 8, .shard_capacity = 64});
  svc::ProtocolSession session(service);
  svc::EventLoopServer server(service, session, {});
  server.listen("tcp:127.0.0.1:0");
  server.start();
  const std::uint16_t port = server.bound_address().port;

  // Warm the shared plan cache untimed so every timed request is a cache
  // hit: the gap under measurement is transport, not mapping compute.
  {
    const int fd = connect_loopback(port);
    if (fd < 0) die("warm connect failed");
    Reader r{fd, {}};
    std::string line;
    if (!send_all(fd, std::string(kNodeLine) + "\n" + kMapLine + "\n") ||
        !r.read_line(line) || !r.read_line(line)) {
      die("warm round-trip failed");
    }
    ::close(fd);
  }

  // Baseline: connect per request, text framing, allocation redefined each
  // time — the stateless `lamactl query` pattern.
  const std::uint64_t text_connect_ns = min_over_repeats([&] {
    for (std::size_t i = 0; i < kRequests; ++i) {
      const int fd = connect_loopback(port);
      if (fd < 0) die("baseline connect failed");
      Reader r{fd, {}};
      std::string line;
      if (!send_all(fd, std::string(kNodeLine) + "\n" + kMapLine + "\n") ||
          !r.read_line(line) || !r.read_line(line)) {
        die("baseline round-trip failed");
      }
      ::close(fd);
    }
  });

  // Middle point: one text connection, NODE once, sequential round-trips.
  const std::uint64_t text_keepalive_ns = [&] {
    const int fd = connect_loopback(port);
    if (fd < 0) die("keep-alive connect failed");
    Reader r{fd, {}};
    std::string line;
    if (!send_all(fd, std::string(kNodeLine) + "\n") || !r.read_line(line)) {
      die("keep-alive NODE failed");
    }
    const std::uint64_t ns = min_over_repeats([&] {
      for (std::size_t i = 0; i < kRequests; ++i) {
        if (!send_all(fd, std::string(kMapLine) + "\n") || !r.read_line(line)) {
          die("keep-alive round-trip failed");
        }
      }
    });
    ::close(fd);
    return ns;
  }();

  // Contender: one binary connection, NODE once, MAP frames pipelined
  // kDepth deep.
  const std::uint64_t binary_pipelined_ns = [&] {
    const int fd = connect_loopback(port);
    if (fd < 0) die("pipelined connect failed");
    Reader r{fd, {}};
    std::string payload;
    if (!send_all(fd, svc::encode_frame(svc::WireVerb::kNode, kNodeLine)) ||
        !r.read_frame(payload)) {
      die("pipelined NODE failed");
    }
    const std::string map_frame =
        svc::encode_frame(svc::WireVerb::kMap, kMapLine);
    const std::uint64_t ns = min_over_repeats([&] {
      std::size_t done = 0;
      while (done < kRequests) {
        const std::size_t burst = std::min(kDepth, kRequests - done);
        std::string out;
        for (std::size_t i = 0; i < burst; ++i) out += map_frame;
        if (!send_all(fd, out)) die("pipelined send failed");
        for (std::size_t i = 0; i < burst; ++i) {
          if (!r.read_frame(payload)) die("pipelined read failed");
        }
        done += burst;
      }
    });
    ::close(fd);
    return ns;
  }();

  server.stop();

  const double speedup = static_cast<double>(text_connect_ns) /
                         static_cast<double>(binary_pipelined_ns);
  const bool pass = speedup >= gate;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"s6_wire\",\n"
               "  \"requests\": %zu,\n"
               "  \"pipeline_depth\": %zu,\n"
               "  \"repeats\": %zu,\n"
               "  \"workers\": 0,\n"
               "  \"text_connect_per_request_ns\": %llu,\n"
               "  \"text_keepalive_ns\": %llu,\n"
               "  \"binary_pipelined_ns\": %llu,\n"
               "  \"speedup_vs_connect_per_request\": %.2f,\n"
               "  \"gate\": %.2f,\n"
               "  \"pass\": %s\n"
               "}\n",
               kRequests, kDepth, kRepeats,
               static_cast<unsigned long long>(text_connect_ns),
               static_cast<unsigned long long>(text_keepalive_ns),
               static_cast<unsigned long long>(binary_pipelined_ns),
               speedup, gate, pass ? "true" : "false");
  std::fclose(out);
  std::printf(
      "s6_wire: %zu requests  text_connect=%.3f ms  text_keepalive=%.3f ms  "
      "binary_pipelined=%.3f ms  speedup=%.2fx (gate %.1fx)  %s\n",
      kRequests, text_connect_ns / 1e6, text_keepalive_ns / 1e6,
      binary_pipelined_ns / 1e6, speedup, gate, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
