// C4 — heterogeneity and scheduler/OS restrictions (§IV-B): the maximal tree
// plus skip-on-unavailable iteration is the paper's mechanism for mapping
// onto mixed hardware. Quantifies the skip overhead: how much extra
// iteration work heterogeneity and off-lined resources cost, and verifies
// the mapping stays correct (prints the accounting table).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lama/mapper.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

// mix: share (out of 4) of the nodes that are the small model.
Allocation mixed_alloc(std::size_t nodes, int small_out_of_4) {
  Cluster cluster;
  for (std::size_t i = 0; i < nodes; ++i) {
    if (static_cast<int>(i % 4) < small_out_of_4) {
      cluster.add_node(NodeTopology::synthetic("socket:1 core:4",
                                               "small" + std::to_string(i)));
    } else {
      cluster.add_node(NodeTopology::synthetic("socket:2 core:4 pu:2",
                                               "big" + std::to_string(i)));
    }
  }
  return allocate_all(cluster);
}

void print_hetero_table() {
  std::printf(
      "=== C4: skip overhead from heterogeneity and restrictions (64 nodes, "
      "layout scbnh) ===\n");
  TextTable table({"configuration", "np", "visited", "skipped",
                   "skip ratio %", "sweeps"});
  const ProcessLayout layout = ProcessLayout::parse("scbnh");

  for (int small : {0, 1, 2, 3}) {
    const Allocation alloc = mixed_alloc(64, small);
    const std::size_t np = alloc.total_online_pus();
    const MappingResult m = lama_map(alloc, layout, {.np = np});
    table.add_row({std::to_string(small * 25) + "% small nodes",
                   TextTable::cell(np), TextTable::cell(m.visited),
                   TextTable::cell(m.skipped),
                   TextTable::cell(100.0 * static_cast<double>(m.skipped) /
                                       static_cast<double>(m.visited),
                                   1),
                   TextTable::cell(m.sweeps)});
  }

  // Random off-lining on a homogeneous system.
  for (int pct : {25, 50}) {
    Allocation alloc = mixed_alloc(64, 0);
    SplitMix64 rng(11);
    for (std::size_t n = 0; n < alloc.num_nodes(); ++n) {
      Bitmap allowed;
      for (std::size_t pu = 0; pu < 16; ++pu) {
        if (!rng.next_bool(pct / 100.0)) allowed.set(pu);
      }
      if (allowed.empty()) allowed.set(0);
      alloc.mutable_node(n).topo.restrict_pus(allowed);
    }
    const std::size_t np = alloc.total_online_pus();
    const MappingResult m = lama_map(alloc, layout, {.np = np});
    table.add_row({std::to_string(pct) + "% PUs off-lined",
                   TextTable::cell(np), TextTable::cell(m.visited),
                   TextTable::cell(m.skipped),
                   TextTable::cell(100.0 * static_cast<double>(m.skipped) /
                                       static_cast<double>(m.visited),
                                   1),
                   TextTable::cell(m.sweeps)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_MapMixedShare(benchmark::State& state) {
  const Allocation alloc = mixed_alloc(64, static_cast<int>(state.range(0)));
  const std::size_t np = alloc.total_online_pus();
  const ProcessLayout layout = ProcessLayout::parse("scbnh");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, layout, {.np = np}));
  }
  state.counters["np"] = static_cast<double>(np);
}
BENCHMARK(BM_MapMixedShare)->DenseRange(0, 3);

}  // namespace

int main(int argc, char** argv) {
  print_hetero_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
