// A1 — ablation: maximal-tree pruning (§IV-B). The paper prunes hardware
// levels the layout does not name; the alternative is iterating the full
// 9-deep space with width-1 bridges at every unnamed level. Pruning is what
// keeps short layouts cheap: compare mapping through a 5-letter layout
// (4 pruned levels) against the equivalent 9-letter layout (every level
// explicit) on hardware with and without caches.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lama/mapper.hpp"
#include "lama/maximal_tree.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

void print_pruning_report() {
  std::printf("=== A1: effect of pruning unnamed levels ===\n");
  // On cache-less hardware the two layouts produce identical mappings; the
  // 9-letter one just runs four extra (width-1) loop levels.
  const Allocation flat =
      allocate_all(Cluster::homogeneous(8, "socket:2 core:4 pu:2"));
  const Allocation cached = allocate_all(
      Cluster::homogeneous(8, "socket:2 numa:2 l3:1 l2:2 l1:1 core:2 pu:2"));

  TextTable table({"hardware", "layout", "levels", "visited", "tree width"});
  for (const auto& [name, alloc] :
       {std::pair<const char*, const Allocation*>{"flat", &flat},
        std::pair<const char*, const Allocation*>{"cached", &cached}}) {
    for (const char* layout : {"scbnh", "sNL3L2L1cbnh"}) {
      const ProcessLayout l = ProcessLayout::parse(layout);
      const std::size_t np = alloc->total_online_pus();
      const MappingResult m = lama_map(*alloc, l, {.np = np});
      const MaximalTree mtree(*alloc, l);
      table.add_row({name, layout, TextTable::cell(l.size()),
                     TextTable::cell(m.visited),
                     TextTable::cell(mtree.iteration_space())});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_MapPrunedLayout(benchmark::State& state) {
  const Allocation alloc = allocate_all(
      Cluster::homogeneous(16, "socket:2 numa:2 l3:1 l2:2 l1:1 core:2 pu:2"));
  const ProcessLayout layout = ProcessLayout::parse("scbnh");
  const std::size_t np = alloc.total_online_pus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, layout, {.np = np}));
  }
}
BENCHMARK(BM_MapPrunedLayout);

void BM_MapUnprunedLayout(benchmark::State& state) {
  const Allocation alloc = allocate_all(
      Cluster::homogeneous(16, "socket:2 numa:2 l3:1 l2:2 l1:1 core:2 pu:2"));
  // Same iteration semantics, but every level named: nothing is pruned.
  const ProcessLayout layout = ProcessLayout::parse("sNL3L2L1cbnh");
  const std::size_t np = alloc.total_online_pus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, layout, {.np = np}));
  }
}
BENCHMARK(BM_MapUnprunedLayout);

void BM_PrunedTreeBuild(benchmark::State& state) {
  const Allocation alloc = allocate_all(
      Cluster::homogeneous(64, "socket:2 numa:2 l3:1 l2:2 l1:1 core:2 pu:2"));
  static const char* kLayouts[] = {"sn", "scbnh", "sNL3L2L1cbnh"};
  const ProcessLayout layout = ProcessLayout::parse(kLayouts[state.range(0)]);
  state.SetLabel(layout.to_string());
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximalTree(alloc, layout));
  }
}
BENCHMARK(BM_PrunedTreeBuild)->DenseRange(0, 2);

}  // namespace

int main(int argc, char** argv) {
  print_pruning_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
