// C2 — the paper's motivating claim (§I, §II): tuning process placement to
// the application's communication pattern yields significant performance
// gains (the cited GTC study reports up to 30%; NAS studies show pattern-
// dependent winners). Regenerates that result in simulation: for each
// application pattern, price the classic baselines (by-slot, by-node) and a
// set of LAMA layouts, and report who wins, by how much, and where the
// crossovers are.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "lama/baselines.hpp"
#include "lama/mapper.hpp"
#include "sim/evaluator.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

Allocation quality_cluster() {
  // 4 dual-socket NUMA nodes, 32 PUs each: big enough that jobs span nodes.
  return allocate_all(
      Cluster::homogeneous(4, "socket:2 numa:2 l3:1 l2:4 l1:1 core:1 pu:2"));
}

struct Candidate {
  std::string name;
  MappingResult mapping;
};

void run_quality_table(const Allocation& alloc, std::size_t np) {
  const DistanceModel model = DistanceModel::commodity();

  std::vector<Candidate> candidates;
  candidates.push_back({"by-slot (baseline)", map_by_slot(alloc, {.np = np})});
  candidates.push_back({"by-node (baseline)", map_by_node(alloc, {.np = np})});
  for (const char* layout :
       {"scbnh", "Nschbn", "csbnh", "nscbh", "L2cnsbh", "hcL1L2L3Nsbn"}) {
    candidates.push_back({std::string("lama:") + layout,
                          lama_map(alloc, layout, {.np = np})});
  }

  std::vector<TrafficPattern> patterns;
  patterns.push_back(make_ring(static_cast<int>(np), 8192));
  patterns.push_back(make_halo2d(16, static_cast<int>(np / 16), 4096));
  patterns.push_back(make_halo3d(8, 4, static_cast<int>(np / 32), 4096));
  patterns.push_back(make_alltoall(static_cast<int>(np), 512));
  patterns.push_back(make_toroidal(static_cast<int>(np), 16384, 64));
  patterns.push_back(make_pairs(static_cast<int>(np), 8192));
  patterns.push_back(
      make_strided_pairs(static_cast<int>(np), static_cast<int>(np / 2),
                         16384));
  patterns.push_back(make_master_worker(static_cast<int>(np), 256, 4096));

  std::printf("--- job size np=%zu on %zu nodes ---\n\n", np,
              alloc.num_nodes());
  for (const TrafficPattern& pattern : patterns) {
    TextTable table({"mapping", "total ms", "max-rank ms", "inter-node",
                     "max NIC MB"});
    double best = -1.0;
    double worst = -1.0;
    std::string best_name;
    std::string worst_name;
    double byslot = 0.0;
    for (const Candidate& c : candidates) {
      const CostReport r = evaluate_mapping(alloc, c.mapping, pattern, model);
      table.add_row(
          {c.name, TextTable::cell(r.total_ns / 1e6, 3),
           TextTable::cell(r.max_rank_ns / 1e6, 3),
           TextTable::cell(r.inter_node_messages),
           TextTable::cell(static_cast<double>(r.max_nic_bytes) / 1e6, 2)});
      if (c.name == "by-slot (baseline)") byslot = r.total_ns;
      if (best < 0 || r.total_ns < best) {
        best = r.total_ns;
        best_name = c.name;
      }
      if (worst < 0 || r.total_ns > worst) {
        worst = r.total_ns;
        worst_name = c.name;
      }
    }
    std::printf("pattern %s:\n%s", pattern.name.c_str(),
                table.to_string().c_str());
    std::printf(
        "  best %s | worst %s | best-vs-worst %.1f%% | best-vs-by-slot "
        "%.1f%%\n\n",
        best_name.c_str(), worst_name.c_str(), (worst - best) / worst * 100.0,
        (byslot - best) / byslot * 100.0);
  }
}

void print_quality_tables() {
  const Allocation alloc = quality_cluster();
  std::printf(
      "=== C2: mapping quality by communication pattern (4 dual-socket NUMA "
      "nodes, 128 PUs) ===\n\n");
  // Full machine: every mapping is a bijection onto the same PUs, so
  // symmetric patterns (all-to-all) tie and neighbour patterns separate.
  run_quality_table(alloc, alloc.total_online_pus());
  // Half machine: mappings now differ in *which* nodes they use, exposing
  // NIC-congestion crossovers (packed uses 2 NICs, scattered spreads 4).
  run_quality_table(alloc, alloc.total_online_pus() / 2);
}

void BM_EvaluateMapping(benchmark::State& state) {
  const Allocation alloc = quality_cluster();
  const std::size_t np = alloc.total_online_pus();
  const MappingResult m = lama_map(alloc, "scbnh", {.np = np});
  const TrafficPattern pattern = make_alltoall(static_cast<int>(np), 512);
  const DistanceModel model = DistanceModel::commodity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_mapping(alloc, m, pattern, model));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pattern.messages.size()));
}
BENCHMARK(BM_EvaluateMapping);

}  // namespace

int main(int argc, char** argv) {
  print_quality_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
