// C8 — application-level wall clock. The paper's motivating numbers (GTC up
// to 30%) are application speedups, which depend on NIC contention and
// communication/computation overlap — effects the analytic byte-sum
// evaluator (C2) cannot see. This bench runs the discrete-event simulator:
// per-pattern makespan under the classic mappings and tuned LAMA layouts,
// exposing the crossover where scattering wins by multiplying injection
// bandwidth even though it loses on locality.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lama/baselines.hpp"
#include "lama/mapper.hpp"
#include "sim/event_sim.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

Allocation quality_cluster() {
  return allocate_all(
      Cluster::homogeneous(4, "socket:2 numa:2 l3:1 l2:4 l1:1 core:1 pu:2"));
}

void print_makespan_tables() {
  const Allocation alloc = quality_cluster();
  const std::size_t np = alloc.total_online_pus();
  const DistanceModel model = DistanceModel::commodity();
  const NicModel nic;

  std::vector<TrafficPattern> patterns;
  patterns.push_back(make_pairs(static_cast<int>(np), 16384));
  patterns.push_back(make_halo2d(16, static_cast<int>(np / 16), 8192));
  patterns.push_back(make_alltoall(static_cast<int>(np), 2048));
  patterns.push_back(make_toroidal(static_cast<int>(np), 32768, 0));

  std::printf(
      "=== C8: event-driven makespan by mapping (np=%zu, 3 rounds, 50us "
      "compute/round) ===\n\n",
      np);
  for (const TrafficPattern& pattern : patterns) {
    const std::vector<RankScript> scripts =
        scripts_from_pattern(pattern, 3, 50'000.0);
    TextTable table({"mapping", "makespan ms", "max NIC busy ms",
                     "max rank wait ms"});
    auto add = [&](const char* name, const MappingResult& m) {
      const SimReport r = simulate(alloc, m, scripts, model, nic);
      double max_wait = 0.0;
      for (double w : r.wait_ns) max_wait = std::max(max_wait, w);
      table.add_row({name, TextTable::cell(r.makespan_ns / 1e6, 3),
                     TextTable::cell(r.max_nic_busy_ns / 1e6, 3),
                     TextTable::cell(max_wait / 1e6, 3)});
    };
    add("by-slot", map_by_slot(alloc, {.np = np}));
    add("by-node", map_by_node(alloc, {.np = np}));
    add("lama:scbnh", lama_map(alloc, "scbnh", {.np = np}));
    add("lama:Nschbn", lama_map(alloc, "Nschbn", {.np = np}));
    std::printf("pattern %s:\n%s\n", pattern.name.c_str(),
                table.to_string().c_str());
  }
}

void BM_SimulateHalo(benchmark::State& state) {
  const Allocation alloc = quality_cluster();
  const std::size_t np = alloc.total_online_pus();
  const TrafficPattern halo = make_halo2d(16, static_cast<int>(np / 16), 8192);
  const std::vector<RankScript> scripts = scripts_from_pattern(halo, 3, 0.0);
  const MappingResult m = map_by_slot(alloc, {.np = np});
  const DistanceModel model = DistanceModel::commodity();
  const NicModel nic;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(alloc, m, scripts, model, nic));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(halo.messages.size() * 3));
}
BENCHMARK(BM_SimulateHalo);

void BM_SimulateAlltoall(benchmark::State& state) {
  const Allocation alloc = quality_cluster();
  const std::size_t np = alloc.total_online_pus();
  const TrafficPattern a2a = make_alltoall(static_cast<int>(np), 2048);
  const std::vector<RankScript> scripts = scripts_from_pattern(a2a, 1, 0.0);
  const MappingResult m = map_by_node(alloc, {.np = np});
  const DistanceModel model = DistanceModel::commodity();
  const NicModel nic;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(alloc, m, scripts, model, nic));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a2a.messages.size()));
}
BENCHMARK(BM_SimulateAlltoall);

}  // namespace

int main(int argc, char** argv) {
  print_makespan_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
