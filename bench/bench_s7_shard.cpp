// S7 — what sharding the event loop actually buys: isolation of light
// traffic from heavy traffic. One epoll loop dispatches inline, so a
// connection streaming expensive requests (here: OPTIMIZE searches with
// always-fresh traffic digests, which no cache can absorb) head-of-line
// blocks every other connection on the loop. With N SO_REUSEPORT shards the
// kernel hashes connections across loops, so a probe connection pipelining
// cheap cache-hit binary MAPs usually lands away from the adversary and its
// latency collapses back to the unloaded number — even on a single-core
// host, where the probe's shard thread wakes with sleeper credit and
// preempts the busy one.
//
// The gate: the fastest probe's wall time for a fixed pipelined binary MAP
// workload, adversary streaming throughout, must improve by at least
// argv[2] (default 2.5x) at 4 shards over 1 shard. Per repeat the probes
// reconnect, re-rolling the kernel's shard hash; taking the best probe of
// the best repeat makes the measurement insensitive to unlucky hashes (at
// 1 shard there is no lucky hash — every connection shares the loop).
// Uniform scaling without an adversary is reported informationally
// (host_cpus in the JSON tells the reader whether parallel speedup was
// even available). Writes BENCH_s7_shard.json (argv[1]).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "svc/shard_server.hpp"
#include "svc/wire.hpp"
#include "topo/node_topology.hpp"
#include "topo/serialize.hpp"

namespace {

using namespace lama;

constexpr std::size_t kProbes = 3;
constexpr std::size_t kProbeRequests = 96;
constexpr std::size_t kDepth = 16;
constexpr std::size_t kRepeats = 5;
constexpr std::size_t kAdversaryDepth = 4;

constexpr const char* kProbeDesc = "socket:2 core:2 pu:2";
constexpr const char* kHeavyDesc = "socket:2 numa:2 core:6 pu:2";
constexpr const char* kProbeMap = "MAP probe 4 lama:scbnh";

// Fresh digest per request, across configs and repeats: the optimizer
// cache never hits, every adversary request is a real placement search.
std::atomic<std::uint64_t> g_halo{65536};

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

struct Reader {
  int fd;
  std::string buf;

  bool fill() {
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      buf.append(chunk, static_cast<std::size_t>(n));
      return true;
    }
  }

  bool read_frame(std::string& payload) {
    for (;;) {
      svc::WireFrame frame;
      std::size_t consumed = 0;
      std::string error;
      const svc::FrameStatus status =
          svc::decode_frame(buf, frame, consumed, error);
      if (status == svc::FrameStatus::kFrame) {
        payload.assign(frame.payload);
        buf.erase(0, consumed);
        return true;
      }
      if (status == svc::FrameStatus::kBad) {
        std::fprintf(stderr, "frame damage: %s\n", error.c_str());
        std::exit(1);
      }
      if (!fill()) return false;
    }
  }
};

void die(const char* what) {
  std::fprintf(stderr, "s7_shard: %s\n", what);
  std::exit(1);
}

std::string node_line(const std::string& id, const char* desc) {
  const NodeTopology topo = NodeTopology::synthetic(desc);
  return "NODE " + id + " " +
         std::to_string(topo.online_pus().count()) + " " +
         serialize_topology(topo);
}

// One probe connection: define the allocation, warm its plan, then time
// kProbeRequests cache-hit binary MAPs pipelined kDepth deep.
std::uint64_t run_probe(std::uint16_t port) {
  const int fd = connect_loopback(port);
  if (fd < 0) die("probe connect failed");
  Reader r{fd, {}};
  std::string payload;
  if (!send_all(fd, svc::encode_frame(svc::WireVerb::kNode,
                                      node_line("probe", kProbeDesc))) ||
      !r.read_frame(payload) ||
      !send_all(fd, svc::encode_frame(svc::WireVerb::kMap, kProbeMap)) ||
      !r.read_frame(payload)) {
    die("probe warm failed");
  }
  const std::string map_frame =
      svc::encode_frame(svc::WireVerb::kMap, kProbeMap);
  const auto start = std::chrono::steady_clock::now();
  std::size_t done = 0;
  while (done < kProbeRequests) {
    const std::size_t burst = std::min(kDepth, kProbeRequests - done);
    std::string out;
    for (std::size_t i = 0; i < burst; ++i) out += map_frame;
    if (!send_all(fd, out)) die("probe send failed");
    for (std::size_t i = 0; i < burst; ++i) {
      if (!r.read_frame(payload)) die("probe read failed");
    }
    done += burst;
  }
  const auto stop = std::chrono::steady_clock::now();
  ::close(fd);
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
}

// The adversary: one connection streaming pipelined OPTIMIZE frames, every
// request a fresh digest, until told to stop. Keeps its shard's loop
// saturated with multi-millisecond dispatches.
void run_adversary(std::uint16_t port, const std::atomic<bool>& stop) {
  const int fd = connect_loopback(port);
  if (fd < 0) die("adversary connect failed");
  Reader r{fd, {}};
  std::string payload;
  if (!send_all(fd, svc::encode_frame(svc::WireVerb::kNode,
                                      node_line("heavy", kHeavyDesc))) ||
      !r.read_frame(payload)) {
    die("adversary warm failed");
  }
  while (!stop.load(std::memory_order_relaxed)) {
    std::string out;
    for (std::size_t i = 0; i < kAdversaryDepth; ++i) {
      const std::uint64_t halo =
          g_halo.fetch_add(1, std::memory_order_relaxed);
      out += svc::encode_frame(
          svc::WireVerb::kOptimize,
          "OPTIMIZE heavy 24 pattern=halo:" + std::to_string(halo));
    }
    if (!send_all(fd, out)) die("adversary send failed");
    for (std::size_t i = 0; i < kAdversaryDepth; ++i) {
      if (!r.read_frame(payload)) {
        if (stop.load(std::memory_order_relaxed)) break;
        die("adversary read failed");
      }
    }
  }
  ::close(fd);
}

struct ConfigResult {
  std::uint64_t probe_ns = 0;    // best probe of the best repeat, loaded
  std::uint64_t uniform_ns = 0;  // all probes, no adversary (wall)
};

ConfigResult measure(std::size_t shards) {
  svc::MappingService service(
      {.workers = 0, .cache_shards = 8, .shard_capacity = 64});
  svc::ShardedServer server(service, {shards, {}, {}});
  server.listen("tcp:127.0.0.1:0");
  server.start();
  const std::uint16_t port = server.bound_address().port;

  ConfigResult result;

  // Loaded phase: adversary streams for the whole config; each repeat
  // reconnects the probes (re-rolling the shard hash) and keeps the
  // fastest probe's time.
  {
    std::atomic<bool> stop{false};
    std::thread adversary([&] { run_adversary(port, stop); });
    std::uint64_t best = ~0ull;
    for (std::size_t rep = 0; rep < kRepeats; ++rep) {
      std::vector<std::uint64_t> times(kProbes, 0);
      std::vector<std::thread> threads;
      for (std::size_t p = 0; p < kProbes; ++p) {
        threads.emplace_back([&, p] { times[p] = run_probe(port); });
      }
      for (std::thread& t : threads) t.join();
      best = std::min(best, *std::min_element(times.begin(), times.end()));
    }
    stop.store(true, std::memory_order_relaxed);
    adversary.join();
    result.probe_ns = best;
  }

  // Uniform phase: the same probe fleet with no adversary — raw pipelined
  // keep-alive scaling, which on a 1-cpu host is expected to be flat.
  {
    std::uint64_t best = ~0ull;
    for (std::size_t rep = 0; rep < kRepeats; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      std::vector<std::thread> threads;
      for (std::size_t p = 0; p < kProbes; ++p) {
        threads.emplace_back([&] { run_probe(port); });
      }
      for (std::thread& t : threads) t.join();
      const auto stop_t = std::chrono::steady_clock::now();
      best = std::min(
          best, static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        stop_t - start)
                        .count()));
    }
    result.uniform_ns = best;
  }

  server.stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_s7_shard.json");
  const double gate = argc > 2 ? std::atof(argv[2]) : 2.5;

  const ConfigResult one = measure(1);
  const ConfigResult four = measure(4);

  const double hol_speedup = static_cast<double>(one.probe_ns) /
                             static_cast<double>(four.probe_ns);
  const double uniform_scaling = static_cast<double>(one.uniform_ns) /
                                 static_cast<double>(four.uniform_ns);
  const bool pass = hol_speedup >= gate;
  const unsigned host_cpus = std::thread::hardware_concurrency();

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"s7_shard\",\n"
               "  \"host_cpus\": %u,\n"
               "  \"probes\": %zu,\n"
               "  \"probe_requests\": %zu,\n"
               "  \"pipeline_depth\": %zu,\n"
               "  \"repeats\": %zu,\n"
               "  \"loaded_probe_1shard_ns\": %llu,\n"
               "  \"loaded_probe_4shard_ns\": %llu,\n"
               "  \"hol_blocking_speedup\": %.2f,\n"
               "  \"uniform_1shard_ns\": %llu,\n"
               "  \"uniform_4shard_ns\": %llu,\n"
               "  \"uniform_scaling\": %.2f,\n"
               "  \"gate\": %.2f,\n"
               "  \"pass\": %s\n"
               "}\n",
               host_cpus, kProbes, kProbeRequests, kDepth, kRepeats,
               static_cast<unsigned long long>(one.probe_ns),
               static_cast<unsigned long long>(four.probe_ns), hol_speedup,
               static_cast<unsigned long long>(one.uniform_ns),
               static_cast<unsigned long long>(four.uniform_ns),
               uniform_scaling, gate, pass ? "true" : "false");
  std::fclose(out);
  std::printf(
      "s7_shard: host_cpus=%u  loaded_probe 1shard=%.3f ms 4shard=%.3f ms  "
      "hol_speedup=%.2fx (gate %.1fx)  uniform_scaling=%.2fx  %s\n",
      host_cpus, one.probe_ns / 1e6, four.probe_ns / 1e6, hol_speedup, gate,
      uniform_scaling, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
