// S5 — placement quality of the lama::opt search against the best static
// canonical layout. Three traffic classes on a three-node commodity
// allocation (2 sockets x 4 cores x 2 PUs each, 48 PUs) with np=36 — a
// process count that deliberately misaligns with node capacity, so the
// canonical pack walk must split the workload 16/16/4 while the optimizer
// is free to discover a balanced 12/12/12 split, a multisection clustering,
// or a refined rank order:
//
//   halo       - 6x6 periodic halo exchange; pack cuts the grid mid-row,
//                a row-aligned balanced split cuts clean
//   gtc        - heavy toroidal ring plus light all-to-all (the gyrokinetic
//                shape); balance relieves the hottest NIC
//   alltoallv  - clustered all-to-all: every pair communicates, pairs
//                inside a 6-rank group carry 16x the volume (the alltoallv
//                shape of AMR and particle codes); group-aligned placement
//                keeps heavy traffic on-node
//
// For each case the program prices every canonical layout with the same
// objective the optimizer minimizes (placement_cost_ns: evaluator total
// plus NIC drain), takes the best as the static baseline, runs
// optimize_placement under the default budget, and requires the optimized
// placement to beat the baseline strictly — by at least `min_gain`
// (argv[2], default 0.02; CI passes 0.0 as the loosened gate, which still
// demands a strict win). Writes BENCH_s5_optimize.json (argv[1], default
// ./BENCH_s5_optimize.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "support/error.hpp"
#include "lama/mapper.hpp"
#include "opt/candidates.hpp"
#include "opt/optimizer.hpp"
#include "sim/distance_model.hpp"
#include "sim/traffic.hpp"
#include "tmatch/comm_matrix.hpp"

namespace {

using namespace lama;

constexpr std::size_t kNp = 36;
constexpr std::size_t kHeavyBytes = 65536;

// Clustered all-to-all: all pairs talk, intra-group pairs carry the bulk.
CommMatrix clustered_alltoall(std::size_t np, std::size_t group,
                              double heavy, double light) {
  CommMatrix m(static_cast<int>(np));
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = i + 1; j < np; ++j) {
      const bool same = (i / group) == (j / group);
      m.add(static_cast<int>(i), static_cast<int>(j), same ? heavy : light);
    }
  }
  return m;
}

struct CaseResult {
  std::string name;
  double static_cost_ns = 0.0;
  std::string static_layout;
  double optimized_cost_ns = 0.0;
  std::string source;
  std::size_t candidates = 0;
  std::size_t swaps = 0;
  double improvement = 0.0;
  double optimize_ms = 0.0;
};

CaseResult run_case(const std::string& name, const Allocation& alloc,
                    const CommMatrix& matrix, const DistanceModel& model) {
  CaseResult r;
  r.name = name;

  // The static baseline: best canonical layout priced under the same
  // objective, independently of the optimizer's own candidate bookkeeping.
  r.static_cost_ns = std::numeric_limits<double>::infinity();
  for (const std::string& spec : opt::canonical_layouts()) {
    try {
      MapOptions opts;
      opts.np = kNp;
      opts.allow_oversubscribe = true;
      const MappingResult m = lama_map(alloc, ProcessLayout::parse(spec), opts);
      const double cost = opt::placement_cost_ns(alloc, m, matrix, model);
      if (cost < r.static_cost_ns) {
        r.static_cost_ns = cost;
        r.static_layout = spec;
      }
    } catch (const Error&) {
      // Layout infeasible here; it cannot be the baseline.
    }
  }

  const auto start = std::chrono::steady_clock::now();
  const opt::OptimizeResult best =
      optimize_placement(alloc, matrix, opt::OptBudget{}, model);
  const auto stop = std::chrono::steady_clock::now();
  r.optimize_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          stop - start)
          .count();
  r.optimized_cost_ns = best.cost_ns;
  r.source = best.source;
  r.candidates = best.candidates_evaluated;
  r.swaps = best.refine_swaps;
  r.improvement = 1.0 - best.cost_ns / r.static_cost_ns;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_s5_optimize.json");
  const double min_gain = argc > 2 ? std::atof(argv[2]) : 0.02;

  const Allocation alloc =
      allocate_all(Cluster::homogeneous(3, "socket:2 core:4 pu:2"));
  const DistanceModel model = DistanceModel::commodity();

  std::vector<CaseResult> results;
  results.push_back(run_case(
      "halo", alloc,
      CommMatrix::from_pattern(make_named_pattern("halo:65536", kNp)), model));
  results.push_back(run_case(
      "gtc", alloc,
      CommMatrix::from_pattern(make_named_pattern("gtc:65536", kNp)), model));
  results.push_back(run_case(
      "alltoallv", alloc,
      clustered_alltoall(kNp, 6, static_cast<double>(kHeavyBytes), 4096.0),
      model));

  double worst_gain = 1.0;
  bool strict = true;
  for (const CaseResult& r : results) {
    worst_gain = std::min(worst_gain, r.improvement);
    if (!(r.optimized_cost_ns < r.static_cost_ns)) strict = false;
  }
  const bool pass = strict && worst_gain >= min_gain;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"s5_optimize\",\n"
               "  \"np\": %zu,\n"
               "  \"min_gain_required\": %.4f,\n"
               "  \"cases\": [\n",
               kNp, min_gain);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"static_layout\": \"%s\", "
                 "\"static_cost_ns\": %.0f, \"optimized_cost_ns\": %.0f, "
                 "\"source\": \"%s\", \"candidates\": %zu, \"swaps\": %zu, "
                 "\"improvement\": %.4f, \"optimize_ms\": %.3f}%s\n",
                 r.name.c_str(), r.static_layout.c_str(), r.static_cost_ns,
                 r.optimized_cost_ns, r.source.c_str(), r.candidates, r.swaps,
                 r.improvement, r.optimize_ms,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"min_gain\": %.4f,\n"
               "  \"strictly_beats_static\": %s,\n"
               "  \"pass\": %s\n"
               "}\n",
               worst_gain, strict ? "true" : "false", pass ? "true" : "false");
  std::fclose(out);

  for (const CaseResult& r : results) {
    std::printf(
        "s5_optimize: %-10s static=%-12.0f (%s)  optimized=%-12.0f (%s)  "
        "gain=%.1f%%  %.2f ms\n",
        r.name.c_str(), r.static_cost_ns, r.static_layout.c_str(),
        r.optimized_cost_ns, r.source.c_str(), 100.0 * r.improvement,
        r.optimize_ms);
  }
  std::printf("s5_optimize: min_gain=%.1f%% (required %.1f%%)  %s\n",
              100.0 * worst_gain, 100.0 * min_gain, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
