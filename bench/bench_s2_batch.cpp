// S2 — MAPBATCH against sequential MAP round-trips. A stateless client
// (`lamactl query`) pays a full round-trip per job: the NODE definitions,
// then one MAP line, each crossing the protocol layer separately. The batch
// client defines the allocation once and submits all jobs as a single
// MAPBATCH line, so per-line framing, parsing, and admission are amortized
// across the batch while the jobs still coalesce on the shared tree cache.
//
// The program measures, on a warm cache:
//   seq_query  - 64 stateless round-trips (NODE lines + MAP per job)
//   seq_map    - 64 MAP lines on an established session (NODE sent once)
//   mapbatch   - NODE lines once + one MAPBATCH carrying all 64 jobs
// and writes BENCH_s2_batch.json (to argv[1], default ./BENCH_s2_batch.json)
// with the minimum wall time of each mode over the repeats and the batch
// ratio against both baselines. The acceptance bar is
// ratio_vs_query < 0.5: one batch beats half the cost of 64 stateless
// round-trips. All modes run with workers=0 (inline execution), so the
// difference is pure transport amortization, not thread parallelism.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "topo/serialize.hpp"

namespace {

using namespace lama;

constexpr std::size_t kJobs = 64;
constexpr std::size_t kRepeats = 9;
constexpr const char* kLayouts[] = {"scbnh", "hcsbn", "nhcsb", "bnhsc"};
constexpr std::size_t kNps[] = {4, 8, 16, 24};

std::vector<std::string> node_lines(const Allocation& alloc) {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < alloc.num_nodes(); ++i) {
    lines.push_back("NODE a0 " + std::to_string(alloc.node(i).slots) + " " +
                    serialize_topology(alloc.node(i).topo));
  }
  return lines;
}

std::vector<svc::BatchJob> make_jobs() {
  std::vector<svc::BatchJob> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.push_back({"a0", kNps[i % 4], std::string("lama:") + kLayouts[(i / 4) % 4],
                    {}});
  }
  return jobs;
}

std::uint64_t elapsed_ns(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
}

std::uint64_t min_over_repeats(const std::function<void()>& fn) {
  std::uint64_t best = ~0ull;
  for (std::size_t r = 0; r < kRepeats; ++r) best = std::min(best, elapsed_ns(fn));
  return best;
}

std::string run(svc::ProtocolSession& session, const std::string& line) {
  std::istringstream no_more;
  return session.execute(line, no_more);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_s2_batch.json");
  const Allocation alloc = allocate_all(
      Cluster::homogeneous(2, "socket:2 core:4 pu:2"));
  const std::vector<std::string> nodes = node_lines(alloc);
  const std::vector<svc::BatchJob> jobs = make_jobs();
  const std::string batch_line = svc::format_mapbatch(jobs);
  std::vector<std::string> map_lines;
  for (const svc::BatchJob& job : jobs) {
    map_lines.push_back("MAP " + job.alloc_id + " " + std::to_string(job.np) +
                        " " + job.spec);
  }

  // One long-lived service per mode; its tree cache is warmed untimed so no
  // timed request pays a tree build. Stateless modes open a fresh
  // ProtocolSession per round-trip (session state — the named allocation —
  // is per-connection; the warm cache is the service's and is shared).
  svc::MappingService query_service(
      {.workers = 0, .cache_shards = 8, .shard_capacity = 64});
  svc::MappingService map_service(
      {.workers = 0, .cache_shards = 8, .shard_capacity = 64});
  svc::MappingService batch_service(
      {.workers = 0, .cache_shards = 8, .shard_capacity = 64});
  for (svc::MappingService* service :
       {&query_service, &map_service, &batch_service}) {
    svc::ProtocolSession warm(*service);
    for (const std::string& line : nodes) run(warm, line);
    for (const std::string& line : map_lines) run(warm, line);
  }

  // 64 stateless round-trips: each job defines the allocation and maps.
  const std::uint64_t seq_query_ns = min_over_repeats([&] {
    for (const std::string& line : map_lines) {
      svc::ProtocolSession session(query_service);
      for (const std::string& node : nodes) run(session, node);
      run(session, line);
    }
  });
  // 64 MAP lines on one established session (NODE lines outside the timer).
  svc::ProtocolSession map_session(map_service);
  for (const std::string& line : nodes) run(map_session, line);
  const std::uint64_t seq_map_ns = min_over_repeats([&] {
    for (const std::string& line : map_lines) run(map_session, line);
  });
  // One stateless batch round-trip: define the allocation, submit all jobs.
  const std::uint64_t mapbatch_ns = min_over_repeats([&] {
    svc::ProtocolSession session(batch_service);
    for (const std::string& node : nodes) run(session, node);
    run(session, batch_line);
  });

  const double ratio_vs_query =
      static_cast<double>(mapbatch_ns) / static_cast<double>(seq_query_ns);
  const double ratio_vs_map =
      static_cast<double>(mapbatch_ns) / static_cast<double>(seq_map_ns);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"s2_batch\",\n"
               "  \"jobs\": %zu,\n"
               "  \"repeats\": %zu,\n"
               "  \"workers\": 0,\n"
               "  \"seq_query_ns\": %llu,\n"
               "  \"seq_map_ns\": %llu,\n"
               "  \"mapbatch_ns\": %llu,\n"
               "  \"ratio_vs_query\": %.4f,\n"
               "  \"ratio_vs_map\": %.4f,\n"
               "  \"pass\": %s\n"
               "}\n",
               kJobs, kRepeats,
               static_cast<unsigned long long>(seq_query_ns),
               static_cast<unsigned long long>(seq_map_ns),
               static_cast<unsigned long long>(mapbatch_ns),
               ratio_vs_query, ratio_vs_map,
               ratio_vs_query < 0.5 ? "true" : "false");
  std::fclose(out);
  std::printf(
      "s2_batch: %zu jobs  seq_query=%.3f ms  seq_map=%.3f ms  "
      "mapbatch=%.3f ms  ratio_vs_query=%.4f  ratio_vs_map=%.4f  %s\n",
      kJobs, seq_query_ns / 1e6, seq_map_ns / 1e6, mapbatch_ns / 1e6,
      ratio_vs_query, ratio_vs_map,
      ratio_vs_query < 0.5 ? "PASS" : "FAIL");
  return ratio_vs_query < 0.5 ? 0 : 1;
}
