// A2 — ablation: per-level iteration order (§IV-A mentions custom orders;
// Cray ALPS exposes the same knob). Shows (a) the orders change placement —
// priced against a neighbour pattern — and (b) what the policy machinery
// costs relative to the default sequential order.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lama/mapper.hpp"
#include "sim/evaluator.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

// Cached NUMA node: 2 sockets x 2 NUMA x (1 L3 x 2 L2 x 2 cores) x 2 PUs.
// Core iteration order decides whether ring neighbours share an L2 domain
// or hop across L2/L3/NUMA boundaries.
Allocation make_alloc(std::size_t nodes = 4) {
  return allocate_all(Cluster::homogeneous(
      nodes, "socket:2 numa:2 l3:1 l2:2 l1:1 core:2 pu:2"));
}

MapOptions with_policy(std::size_t np, IterationOrder order,
                       std::size_t stride = 1) {
  MapOptions opts{.np = np};
  opts.iteration.set(ResourceType::kCore, {.order = order, .stride = stride});
  return opts;
}

void print_iteration_report() {
  const Allocation alloc = make_alloc();
  const std::size_t np = alloc.total_online_pus();
  const TrafficPattern ring = make_ring(static_cast<int>(np), 8192);
  const DistanceModel model = DistanceModel::commodity();

  std::printf(
      "=== A2: iteration order of the core level (layout hcsbn, ring "
      "pattern, cached NUMA nodes) ===\n");
  TextTable table({"core order", "total ms", "cache-shared msgs",
                   "numa/socket-crossing msgs"});
  struct Row {
    const char* name;
    IterationOrder order;
    std::size_t stride;
  };
  for (const Row& row : {Row{"sequential", IterationOrder::kSequential, 1},
                         Row{"reverse", IterationOrder::kReverse, 1},
                         Row{"stride-2", IterationOrder::kStrided, 2},
                         Row{"stride-4", IterationOrder::kStrided, 4}}) {
    const MappingResult m =
        lama_map(alloc, "hcsbn", with_policy(np, row.order, row.stride));
    const CostReport r = evaluate_mapping(alloc, m, ring, model);
    // Messages that stay within a shared cache (L3 or deeper) vs those
    // crossing NUMA/socket boundaries.
    std::size_t cached = 0;
    for (ResourceType t : {ResourceType::kL3, ResourceType::kL2,
                           ResourceType::kL1, ResourceType::kCore,
                           ResourceType::kHwThread}) {
      cached += r.messages_by_level[canonical_depth(t)];
    }
    const std::size_t crossing =
        r.messages_by_level[canonical_depth(ResourceType::kNuma)] +
        r.messages_by_level[canonical_depth(ResourceType::kSocket)] +
        r.messages_by_level[canonical_depth(ResourceType::kNode)];
    table.add_row({row.name, TextTable::cell(r.total_ns / 1e6, 3),
                   TextTable::cell(cached), TextTable::cell(crossing)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "(sequential keeps ring neighbours inside shared caches — the reason "
      "it is the paper's default; strided orders trade that locality for "
      "interleaving)\n\n");
}

void BM_MapSequentialOrder(benchmark::State& state) {
  const Allocation alloc = make_alloc(16);
  const std::size_t np = alloc.total_online_pus();
  const MapOptions opts = with_policy(np, IterationOrder::kSequential);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, "hcsbn", opts));
  }
}
BENCHMARK(BM_MapSequentialOrder);

void BM_MapReverseOrder(benchmark::State& state) {
  const Allocation alloc = make_alloc(16);
  const std::size_t np = alloc.total_online_pus();
  const MapOptions opts = with_policy(np, IterationOrder::kReverse);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, "hcsbn", opts));
  }
}
BENCHMARK(BM_MapReverseOrder);

void BM_MapStridedOrder(benchmark::State& state) {
  const Allocation alloc = make_alloc(16);
  const std::size_t np = alloc.total_online_pus();
  const MapOptions opts =
      with_policy(np, IterationOrder::kStrided, /*stride=*/2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, "hcsbn", opts));
  }
}
BENCHMARK(BM_MapStridedOrder);

}  // namespace

int main(int argc, char** argv) {
  print_iteration_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
