// S4 — the compiled mapping kernel against the reference walk. Both modes
// run warm (the maximal tree is prebuilt and shared, plans precompiled, the
// executor's arenas sized), so the measured difference is exactly what plan
// compilation buys on the service's steady state: no recursive descent, no
// pruned-tree lookups, no cap-key hashing, no per-run allocation.
//
// For each case (the paper's Figure 2 machine under scbnh, a 64-node
// scale-out of it, and a deep multi-level topology) the program times
//   reference  - lama_map over the shared tree
//   compiled   - lama_map_compiled through one reused PlanExecutor
//   parallel   - the sliced parallel driver over the same plan (4 chunks)
// taking the minimum wall time over repeats, verifies that every compiled
// and parallel run is byte-identical to the reference mapping, and writes
// BENCH_s4_kernel.json (argv[1], default ./BENCH_s4_kernel.json). The
// acceptance bar is min_speedup >= argv[2] (default 3.0): the compiled
// kernel beats the warm reference walk at least threefold on every case.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "lama/map_plan.hpp"
#include "lama/mapper.hpp"
#include "lama/maximal_tree.hpp"
#include "lama/parallel_mapper.hpp"

namespace {

using namespace lama;

constexpr std::size_t kRepeats = 9;
constexpr std::size_t kItersPerRepeat = 32;

std::uint64_t elapsed_ns(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count());
}

std::uint64_t min_over_repeats(const std::function<void()>& fn) {
  std::uint64_t best = ~0ull;
  for (std::size_t r = 0; r < kRepeats; ++r) {
    best = std::min(best, elapsed_ns(fn));
  }
  return best;
}

bool identical(const MappingResult& a, const MappingResult& b) {
  if (a.layout != b.layout || a.sweeps != b.sweeps || a.visited != b.visited ||
      a.skipped != b.skipped || a.pu_oversubscribed != b.pu_oversubscribed ||
      a.slot_oversubscribed != b.slot_oversubscribed ||
      a.procs_per_node != b.procs_per_node ||
      a.placements.size() != b.placements.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    if (a.placements[i].rank != b.placements[i].rank ||
        a.placements[i].node != b.placements[i].node ||
        !(a.placements[i].target_pus == b.placements[i].target_pus) ||
        a.placements[i].coord != b.placements[i].coord) {
      return false;
    }
  }
  return true;
}

struct CaseResult {
  const char* name;
  std::size_t np;
  std::uint64_t space;
  std::uint64_t reference_ns;
  std::uint64_t compiled_ns;
  std::uint64_t parallel_ns;
  double speedup;
};

CaseResult run_case(const char* name, const Allocation& alloc,
                    const std::string& layout_str, std::size_t np) {
  const ProcessLayout layout = ProcessLayout::parse(layout_str);
  const MaximalTree mtree(alloc, layout);
  const MapPlan plan = compile_map_plan(mtree, layout, IterationPolicy{});
  const MapOptions opts{.np = np};

  const MappingResult want = lama_map(alloc, layout, opts, mtree);
  PlanExecutor exec;
  MappingResult got;
  lama_map_compiled(alloc, opts, plan, exec, got);  // warm-up + identity
  if (!identical(want, got) ||
      !identical(want, lama_map_parallel(alloc, opts, plan, 4))) {
    std::fprintf(stderr, "s4_kernel: %s compiled output diverges\n", name);
    std::exit(2);
  }

  const std::uint64_t reference_ns = min_over_repeats([&] {
    for (std::size_t i = 0; i < kItersPerRepeat; ++i) {
      (void)lama_map(alloc, layout, opts, mtree);
    }
  });
  const std::uint64_t compiled_ns = min_over_repeats([&] {
    for (std::size_t i = 0; i < kItersPerRepeat; ++i) {
      lama_map_compiled(alloc, opts, plan, exec, got);
    }
  });
  const std::uint64_t parallel_ns = min_over_repeats([&] {
    for (std::size_t i = 0; i < kItersPerRepeat; ++i) {
      (void)lama_map_parallel(alloc, opts, plan, 4);
    }
  });

  return {name,
          np,
          plan.space,
          reference_ns,
          compiled_ns,
          parallel_ns,
          static_cast<double>(reference_ns) / static_cast<double>(compiled_ns)};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_s4_kernel.json");
  const double min_speedup = argc > 2 ? std::atof(argv[2]) : 3.0;

  std::vector<CaseResult> results;
  // The paper's worked example: two Figure 2 nodes, fully subscribed.
  results.push_back(run_case(
      "fig2_scbnh",
      allocate_all(Cluster::homogeneous(2, "socket:2 core:4 pu:2")), "scbnh",
      32));
  // Scale-out: the same node type at cluster width.
  results.push_back(run_case(
      "scaleout_64n",
      allocate_all(Cluster::homogeneous(64, "socket:2 core:4 pu:2")), "nschb",
      1024));
  // Deep topology: cache and NUMA levels multiply the iteration space.
  results.push_back(run_case(
      "multilevel_8n",
      allocate_all(Cluster::homogeneous(8, "socket:2 numa:2 l2:2 core:2 pu:2")),
      "scbnh", 256));

  double worst = 1e300;
  for (const CaseResult& r : results) worst = std::min(worst, r.speedup);
  const bool pass = worst >= min_speedup;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"s4_kernel\",\n"
               "  \"repeats\": %zu,\n"
               "  \"iters_per_repeat\": %zu,\n"
               "  \"min_speedup_required\": %.2f,\n"
               "  \"cases\": [\n",
               kRepeats, kItersPerRepeat, min_speedup);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"np\": %zu, \"space\": %llu, "
                 "\"reference_ns\": %llu, \"compiled_ns\": %llu, "
                 "\"parallel_compiled_ns\": %llu, \"speedup\": %.3f}%s\n",
                 r.name, r.np, static_cast<unsigned long long>(r.space),
                 static_cast<unsigned long long>(r.reference_ns),
                 static_cast<unsigned long long>(r.compiled_ns),
                 static_cast<unsigned long long>(r.parallel_ns), r.speedup,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"min_speedup\": %.3f,\n"
               "  \"pass\": %s\n"
               "}\n",
               worst, pass ? "true" : "false");
  std::fclose(out);

  for (const CaseResult& r : results) {
    std::printf(
        "s4_kernel: %-14s np=%-5zu reference=%8.3f ms  compiled=%8.3f ms  "
        "parallel=%8.3f ms  speedup=%.2fx\n",
        r.name, r.np, r.reference_ns / 1e6, r.compiled_ns / 1e6,
        r.parallel_ns / 1e6, r.speedup);
  }
  std::printf("s4_kernel: min_speedup=%.2fx (required %.2fx)  %s\n", worst,
              min_speedup, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
