// C6 — related-work comparison [3]: communication-matrix-driven mapping
// (TreeMatch-style) vs the LAMA's regular layouts and the classic baselines.
// The positioning the paper implies: regular layouts cover regular patterns
// when the expert picks well; matrix-driven mapping wins when the pattern is
// irregular or misaligned with every fixed order — at the cost of needing
// the matrix up front.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "lama/baselines.hpp"
#include "lama/mapper.hpp"
#include "sim/evaluator.hpp"
#include "support/table.hpp"
#include "tmatch/treematch.hpp"

namespace {

using namespace lama;

Allocation numa_cluster(std::size_t nodes = 4) {
  return allocate_all(
      Cluster::homogeneous(nodes, "socket:2 numa:2 l3:1 l2:4 l1:1 core:1 pu:2"));
}

void print_comparison() {
  const Allocation alloc = numa_cluster();
  const std::size_t np = alloc.total_online_pus();
  const DistanceModel model = DistanceModel::commodity();

  std::vector<TrafficPattern> patterns;
  patterns.push_back(make_pairs(static_cast<int>(np), 8192));
  patterns.push_back(
      make_strided_pairs(static_cast<int>(np), static_cast<int>(np / 2),
                         8192));
  patterns.push_back(make_halo2d(16, static_cast<int>(np / 16), 4096));
  patterns.push_back(make_random_sparse(static_cast<int>(np), 4, 4096, 23));
  patterns.push_back(make_master_worker(static_cast<int>(np), 256, 4096));

  std::printf(
      "=== C6: matrix-driven (treematch) vs regular mappings (np=%zu, 4 NUMA "
      "nodes) ===\n\n",
      np);
  for (const TrafficPattern& pattern : patterns) {
    const CommMatrix matrix = CommMatrix::from_pattern(pattern);
    TextTable table({"mapping", "total ms", "inter-node msgs"});

    auto add = [&](const std::string& name, const MappingResult& m) {
      const CostReport r = evaluate_mapping(alloc, m, pattern, model);
      table.add_row({name, TextTable::cell(r.total_ns / 1e6, 3),
                     TextTable::cell(r.inter_node_messages)});
      return r.total_ns;
    };

    add("by-slot", map_by_slot(alloc, {.np = np}));
    add("by-node", map_by_node(alloc, {.np = np}));
    double best_lama = -1.0;
    std::string best_layout;
    for (const char* layout : {"hcL1L2L3Nsbn", "scbnh", "Nschbn", "csbnh"}) {
      const double ns =
          add(std::string("lama:") + layout, lama_map(alloc, layout, {.np = np}));
      if (best_lama < 0 || ns < best_lama) {
        best_lama = ns;
        best_layout = layout;
      }
    }
    const double tm =
        add("treematch", map_treematch(alloc, matrix, {.np = np}));

    std::printf("pattern %s:\n%s", pattern.name.c_str(),
                table.to_string().c_str());
    std::printf("  best regular: lama:%s | treematch vs best regular: %+.1f%%\n\n",
                best_layout.c_str(), (best_lama - tm) / best_lama * 100.0);
  }
}

void BM_TreeMatchMap(benchmark::State& state) {
  const Allocation alloc = numa_cluster(static_cast<std::size_t>(state.range(0)));
  const std::size_t np = alloc.total_online_pus();
  const CommMatrix matrix = CommMatrix::from_pattern(
      make_random_sparse(static_cast<int>(np), 4, 4096, 23));
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_treematch(alloc, matrix, {.np = np}));
  }
  state.counters["np"] = static_cast<double>(np);
}
BENCHMARK(BM_TreeMatchMap)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LamaMapSameSize(benchmark::State& state) {
  // The cost the LAMA pays for the same job: orders of magnitude below the
  // O(n^2) matrix partitioner — the price of pattern awareness.
  const Allocation alloc = numa_cluster(static_cast<std::size_t>(state.range(0)));
  const std::size_t np = alloc.total_online_pus();
  const ProcessLayout layout = ProcessLayout::parse("scbnh");
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama_map(alloc, layout, {.np = np}));
  }
}
BENCHMARK(BM_LamaMapSameSize)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
