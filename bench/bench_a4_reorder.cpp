// A4 — ablation: rank reordering on top of mapping. Remapping moves
// processes; reordering only permutes rank numbers within the slots a
// mapping already chose (no launch-time control needed). Measures how much
// of the gap between a naive mapping and the matrix-driven mapper a
// reordering pass recovers, and what the O(n^3) exchange passes cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lama/baselines.hpp"
#include "sim/evaluator.hpp"
#include "support/table.hpp"
#include "tmatch/reorder.hpp"
#include "tmatch/treematch.hpp"

namespace {

using namespace lama;

Allocation numa_cluster(std::size_t nodes = 2) {
  return allocate_all(
      Cluster::homogeneous(nodes, "socket:2 numa:2 l3:1 l2:4 l1:1 core:1 pu:2"));
}

void print_reorder_report() {
  const Allocation alloc = numa_cluster();
  const std::size_t np = alloc.total_online_pus();
  const DistanceModel model = DistanceModel::commodity();

  std::printf(
      "=== A4: rank reordering vs remapping (np=%zu, 2 NUMA nodes) ===\n", np);
  TextTable table({"pattern", "by-slot ms", "+reorder ms", "treematch ms",
                   "reorder swaps"});
  std::vector<TrafficPattern> patterns;
  patterns.push_back(
      make_strided_pairs(static_cast<int>(np), static_cast<int>(np / 2),
                         8192));
  patterns.push_back(make_random_sparse(static_cast<int>(np), 4, 4096, 23));
  patterns.push_back(make_ring(static_cast<int>(np), 8192));

  for (const TrafficPattern& pattern : patterns) {
    const CommMatrix matrix = CommMatrix::from_pattern(pattern);
    const MappingResult base = map_by_slot(alloc, {.np = np});
    const ReorderResult reordered = reorder_ranks(alloc, base, matrix, model);
    const MappingResult tm = map_treematch(alloc, matrix, {.np = np});

    const double base_ns =
        evaluate_mapping(alloc, base, pattern, model).total_ns;
    const double reorder_ns =
        evaluate_mapping(alloc, reordered.mapping, pattern, model).total_ns;
    const double tm_ns = evaluate_mapping(alloc, tm, pattern, model).total_ns;
    table.add_row({pattern.name, TextTable::cell(base_ns / 1e6, 3),
                   TextTable::cell(reorder_ns / 1e6, 3),
                   TextTable::cell(tm_ns / 1e6, 3),
                   TextTable::cell(reordered.swaps_applied)});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void BM_ReorderPass(benchmark::State& state) {
  const Allocation alloc = numa_cluster();
  const std::size_t np = static_cast<std::size_t>(state.range(0));
  const TrafficPattern pattern =
      make_random_sparse(static_cast<int>(np), 4, 4096, 23);
  const CommMatrix matrix = CommMatrix::from_pattern(pattern);
  const MappingResult base = map_by_slot(alloc, {.np = np});
  const DistanceModel model = DistanceModel::commodity();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reorder_ranks(alloc, base, matrix, model, 2));
  }
}
BENCHMARK(BM_ReorderPass)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reorder_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
