// A3 — ablation: network awareness. The paper's related work (refs [2],
// [8]-[10]) motivates topology mapping with the GTC result: application-
// specific mapping across the torus improved performance up to 30% at scale.
// Regenerates that comparison on a simulated 3-D torus: the GTC-like
// toroidal pattern priced under (a) torus-matched XYZT orders, (b) node-
// oblivious LAMA layouts, and (c) a deliberately scrambled placement.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "lama/mapper.hpp"
#include "net/xyzt.hpp"
#include "sim/torus_evaluator.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace lama;

void print_torus_report() {
  const TorusNetwork net(4, 4, 4);  // 64 nodes
  const Allocation alloc =
      allocate_all(Cluster::homogeneous(net.num_nodes(), "socket:2 core:4"));
  const std::size_t np = alloc.total_online_pus();  // 512
  const TrafficPattern gtc = make_toroidal(static_cast<int>(np), 65536, 0);
  const DistanceModel model = DistanceModel::commodity();
  const TorusCostModel net_model;

  std::printf(
      "=== A3: torus-aware vs oblivious mapping (4x4x4 torus, GTC-like "
      "toroidal pattern, np=%zu) ===\n",
      np);
  TextTable table({"mapping", "total ms", "avg hops", "max hops",
                   "max link MB", "bottleneck ms"});

  auto add = [&](const std::string& name, const MappingResult& m) {
    const TorusCostReport r =
        evaluate_on_torus(alloc, net, m, gtc, model, net_model);
    table.add_row({name, TextTable::cell(r.total_ns / 1e6, 2),
                   TextTable::cell(r.avg_hops, 2),
                   TextTable::cell(static_cast<std::size_t>(r.max_hops)),
                   TextTable::cell(
                       static_cast<double>(r.max_link_bytes) / 1e6, 2),
                   TextTable::cell(r.bottleneck_ns / 1e6, 2)});
    return r.bottleneck_ns;
  };

  const double txyz = add("xyzt:TXYZ (fill node, walk x)",
                          map_xyzt(alloc, net, "TXYZ", {.np = np}));
  const double xyzt = add("xyzt:XYZT (walk x, then threads)",
                          map_xyzt(alloc, net, "XYZT", {.np = np}));
  const double aware_best = std::min(txyz, xyzt);
  add("lama:hcsbn (torus-oblivious pack)",
      lama_map(alloc, "hcsbn", {.np = np}));
  add("lama:nhcsb (torus-oblivious scatter)",
      lama_map(alloc, "nhcsb", {.np = np}));

  // Scrambled node order: the pathological placement topology-aware mapping
  // protects against.
  MapOptions scrambled{.np = np};
  std::vector<std::size_t> perm(net.num_nodes());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  SplitMix64 rng(3);
  for (std::size_t i = perm.size(); i-- > 1;) {
    std::swap(perm[i], perm[rng.next_below(i + 1)]);
  }
  scrambled.iteration.set(ResourceType::kNode,
                          {.order = IterationOrder::kCustom, .custom = perm});
  const double worst =
      add("random node permutation", lama_map(alloc, "hcsbn", scrambled));

  std::printf("%s", table.to_string().c_str());
  std::printf(
      "topology-aware best vs random placement: %.1f%% lower bottleneck-link "
      "time (paper's related work reports up to 30%% application speedup for "
      "GTC)\n\n",
      (worst - aware_best) / worst * 100.0);
}

void BM_MapXyzt(benchmark::State& state) {
  const TorusNetwork net(4, 4, 4);
  const Allocation alloc =
      allocate_all(Cluster::homogeneous(net.num_nodes(), "socket:2 core:4"));
  const std::size_t np = alloc.total_online_pus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(map_xyzt(alloc, net, "TXYZ", {.np = np}));
  }
}
BENCHMARK(BM_MapXyzt);

void BM_TorusEvaluate(benchmark::State& state) {
  const TorusNetwork net(4, 4, 4);
  const Allocation alloc =
      allocate_all(Cluster::homogeneous(net.num_nodes(), "socket:2 core:4"));
  const std::size_t np = alloc.total_online_pus();
  const MappingResult m = map_xyzt(alloc, net, "TXYZ", {.np = np});
  const TrafficPattern gtc = make_toroidal(static_cast<int>(np), 65536, 0);
  const DistanceModel model = DistanceModel::commodity();
  const TorusCostModel net_model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluate_on_torus(alloc, net, m, gtc, model, net_model));
  }
}
BENCHMARK(BM_TorusEvaluate);

}  // namespace

int main(int argc, char** argv) {
  print_torus_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
