// S1 — the mapping service against the uncached path. A scheduler that
// re-maps jobs as they start pays the maximal-tree construction on every
// request; the service pays it once per (allocation, layout) key and then
// serves from the sharded cache. Both benchmarks push the identical request
// stream — deep 48-node allocations, small jobs (np=8), a handful of
// layouts — so items/sec is directly comparable; the headline number is the
// warm-cache throughput multiple over the uncached baseline. The service
// runs report the cache counters (hits/misses/coalesced sum to requests).
#include <benchmark/benchmark.h>

#include "lama/rmaps.hpp"
#include "svc/service.hpp"

namespace {

using namespace lama;

// Deep modern topology: 7 levels, 16 PUs per node, 48 nodes. Tree build
// cost scales with the whole machine; a mapping of np=8 touches almost
// none of it, which is exactly the regime a cache pays off in.
constexpr const char* kDeepNode = "socket:2 numa:2 l3:1 l2:2 core:2 pu:2";

constexpr const char* kLayouts[] = {"scbnh", "hcsbn", "nhcsb",
                                    "hcL1L2L3Nsbn"};

struct Stream {
  std::vector<Allocation> allocs;
  std::vector<std::pair<std::size_t, std::string>> requests;  // (alloc, spec)
};

Stream make_stream() {
  Stream s;
  s.allocs.push_back(allocate_all(Cluster::homogeneous(48, kDeepNode)));
  s.allocs.push_back(allocate_all(Cluster::homogeneous(32, kDeepNode)));
  for (std::size_t ai = 0; ai < s.allocs.size(); ++ai) {
    for (const char* layout : kLayouts) {
      s.requests.emplace_back(ai, std::string("lama:") + layout);
    }
  }
  return s;
}

// Baseline: every request goes through the registry and rebuilds the
// maximal tree from scratch, single-threaded — what `lamactl map` does.
void BM_UncachedRegistry(benchmark::State& state) {
  const Stream stream = make_stream();
  const RmapsRegistry registry;
  for (auto _ : state) {
    for (const auto& [ai, spec] : stream.requests) {
      benchmark::DoNotOptimize(
          registry.map(spec, stream.allocs[ai], {.np = 8}));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.requests.size()));
}
BENCHMARK(BM_UncachedRegistry)->Unit(benchmark::kMillisecond);

// The service with a warm sharded cache: the per-request cost is a
// fingerprint lookup plus the mapping walk over the cached tree.
void BM_WarmServiceSingle(benchmark::State& state) {
  const Stream stream = make_stream();
  svc::MappingService service(
      {.workers = 0, .cache_shards = 8, .shard_capacity = 64});
  std::vector<svc::InternedAlloc> interned;
  for (const Allocation& a : stream.allocs) interned.push_back(service.intern(a));
  // Warm every key once outside the timed region.
  for (const auto& [ai, spec] : stream.requests) {
    service.map({interned[ai], spec, {.np = 8}});
  }
  for (auto _ : state) {
    for (const auto& [ai, spec] : stream.requests) {
      benchmark::DoNotOptimize(service.map({interned[ai], spec, {.np = 8}}));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.requests.size()));
  const svc::Counters& c = service.counters();
  state.counters["requests"] = static_cast<double>(c.requests.load());
  state.counters["hits"] = static_cast<double>(c.cache_hits.load());
  state.counters["misses"] = static_cast<double>(c.cache_misses.load());
  state.counters["coalesced"] = static_cast<double>(c.coalesced.load());
}
BENCHMARK(BM_WarmServiceSingle)->Unit(benchmark::kMillisecond);

// Same stream through map_batch on an 8-worker pool — the deployment shape
// of `lamactl serve`. On a single-core host this measures pool overhead,
// not parallel speedup; the cache still carries the win.
void BM_WarmServiceBatch8Workers(benchmark::State& state) {
  const Stream stream = make_stream();
  svc::MappingService service(
      {.workers = 8, .cache_shards = 8, .shard_capacity = 64});
  std::vector<svc::InternedAlloc> interned;
  for (const Allocation& a : stream.allocs) interned.push_back(service.intern(a));
  std::vector<svc::MapRequest> batch;
  for (const auto& [ai, spec] : stream.requests) {
    batch.push_back({interned[ai], spec, {.np = 8}});
  }
  benchmark::DoNotOptimize(service.map_batch(batch));  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.map_batch(batch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
  const svc::Counters& c = service.counters();
  state.counters["requests"] = static_cast<double>(c.requests.load());
  state.counters["hits"] = static_cast<double>(c.cache_hits.load());
  state.counters["misses"] = static_cast<double>(c.cache_misses.load());
  state.counters["coalesced"] = static_cast<double>(c.coalesced.load());
}
BENCHMARK(BM_WarmServiceBatch8Workers)->Unit(benchmark::kMillisecond);

// Cold service: every request misses (capacity 0 disables storage). This
// prices the miss path: tree build plus the defensive deep copy of the
// allocation each CachedTree owns, so it lands above the registry baseline
// — the premium the warm-path hits amortize away.
void BM_ColdService(benchmark::State& state) {
  const Stream stream = make_stream();
  svc::MappingService service(
      {.workers = 0, .cache_shards = 1, .shard_capacity = 0});
  std::vector<svc::InternedAlloc> interned;
  for (const Allocation& a : stream.allocs) interned.push_back(service.intern(a));
  for (auto _ : state) {
    for (const auto& [ai, spec] : stream.requests) {
      benchmark::DoNotOptimize(service.map({interned[ai], spec, {.np = 8}}));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.requests.size()));
  const svc::Counters& c = service.counters();
  state.counters["requests"] = static_cast<double>(c.requests.load());
  state.counters["misses"] = static_cast<double>(c.cache_misses.load());
}
BENCHMARK(BM_ColdService)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
