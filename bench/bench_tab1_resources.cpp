// T1 — Table I: the resource levels the LAMA can traverse and their process-
// layout abbreviations. Regenerates the table, then times the layout parser
// over the full alphabet (the hot path of option handling).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "lama/layout.hpp"
#include "support/table.hpp"
#include "topo/resource_type.hpp"

namespace {

void print_table1() {
  lama::TextTable table({"Resource", "Abbreviation", "Description"});
  for (lama::ResourceType t : lama::all_resource_types()) {
    table.add_row({std::string(lama::resource_name(t)),
                   std::string(lama::resource_abbrev(t)),
                   std::string(lama::resource_keyword(t))});
  }
  std::printf("=== Table I: resources specifiable in a process layout ===\n%s",
              table.to_string().c_str());
  std::printf("alphabet size: %d levels -> %llu full-layout permutations\n\n",
              lama::kNumResourceTypes,
              static_cast<unsigned long long>(
                  lama::ProcessLayout::num_full_permutations()));
}

void BM_ParseFullLayout(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama::ProcessLayout::parse("hcL1L2L3Nsbn"));
  }
}
BENCHMARK(BM_ParseFullLayout);

void BM_ParseShortLayout(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(lama::ProcessLayout::parse("scbnh"));
  }
}
BENCHMARK(BM_ParseShortLayout);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
