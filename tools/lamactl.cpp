// lamactl — command-line front end for the whole library: describe a
// cluster in a file, optionally select nodes with a hostfile, pass any
// mpirun-style placement options, and inspect the resulting plan; with
// --pattern, additionally price the mapping under a synthetic workload.
//
//   lamactl --cluster cluster.txt -np 24 --map-by lama:scbnh --bind-to core
//   lamactl --cluster cluster.txt --hostfile hosts.txt -np 8 --by-node
//   lamactl --cluster cluster.txt --topo
//   lamactl --cluster cluster.txt -np 32 --pattern ring:8192
//
// The `serve` and `query` subcommands speak the mapping service's
// line-oriented protocol (docs/service.md) over stdin/stdout:
//
//   lamactl query --cluster cluster.txt -np 8 --map-by lama:scbnh |
//     lamactl serve --workers 8 --stats
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <limits>
#include <map>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "dur/state_store.hpp"
#include "obs/chrome.hpp"
#include "obs/trace_dump.hpp"
#include "rte/runtime.hpp"
#include "sim/evaluator.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/numa.hpp"
#include "svc/client.hpp"
#include "svc/event_loop.hpp"
#include "svc/fault_injector.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "svc/shard_server.hpp"
#include "tmatch/comm_matrix.hpp"
#include "topo/serialize.hpp"
#include "topo/sysfs_topology.hpp"

// Exit codes shared by the client-side subcommands: 0 success, 1 error,
// 2 failed fault-injection invariants, 3 still busy after retries exhausted
// (the caller should back off and try again later — distinct from a hard
// error so scripts can tell "overloaded" from "broken").
constexpr int kExitBusy = 3;

namespace {

using namespace lama;

// Set by SIGTERM/SIGINT: the serve loop notices, drains, and exits cleanly.
volatile std::sig_atomic_t g_signal = 0;

void handle_shutdown_signal(int sig) { g_signal = sig; }

// Install without SA_RESTART so a signal interrupts the blocking stdin read
// (getline fails with EINTR) instead of silently restarting it — the serve
// loop must wake up to drain.
void install_shutdown_signals() {
  struct sigaction sa = {};
  sa.sa_handler = handle_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open file: " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Writes failed traces to <dir>/trace-<id>.json as they happen (the flight
// recorder's dump sink), GC'd oldest-first to `cap` files (0 = unbounded).
// The directory must already exist.
void install_trace_dump(svc::MappingService& service, const std::string& dir,
                        std::size_t cap) {
  if (dir.empty()) return;
  if (service.tracer() == nullptr) {
    throw ParseError("--trace-dump requires --flight-recorder > 0");
  }
  service.tracer()->recorder().set_dump_sink(
      obs::make_trace_dump_sink(obs::TraceDumpConfig{dir, cap}));
}

// `lamactl serve`: run the mapping service over stdin/stdout. With
// --state-dir, state mutations journal to disk and a restart restores them
// (docs/resilience.md); SIGTERM/SIGINT drain gracefully — in-flight work
// finishes or is shed with retry-after, the journal is flushed, a final
// snapshot compacts the state, and the process exits 0.
int run_serve(const std::vector<std::string>& args) {
  svc::ServiceConfig config;
  svc::NetConfig net_config;
  std::string listen_addr;
  bool stats = false;
  std::string trace_dump;
  std::size_t trace_dump_cap = 256;
  dur::DurConfig dur_config;
  bool persist = true;
  std::size_t shards = 1;
  bool discover = false;
  bool affinity = true;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--listen") {
      listen_addr = need_value();
    } else if (arg == "--max-connections") {
      net_config.max_connections =
          parse_size(need_value(), "serve max-connections");
    } else if (arg == "--state-dir") {
      dur_config.dir = need_value();
    } else if (arg == "--no-persist") {
      persist = false;
    } else if (arg == "--snapshot-every") {
      dur_config.snapshot_every =
          parse_size(need_value(), "serve snapshot-every");
    } else if (arg == "--fsync-every") {
      dur_config.fsync_every = parse_size(need_value(), "serve fsync-every");
      if (dur_config.fsync_every == 0) dur_config.fsync_every = 1;
    } else if (arg == "--no-prewarm") {
      dur_config.prewarm = false;
    } else if (arg == "--workers") {
      config.workers = parse_size(need_value(), "serve workers");
    } else if (arg == "--shards") {
      shards = parse_size(need_value(), "serve shards");
      if (shards == 0) shards = 1;
    } else if (arg == "--cache-shards") {
      config.cache_shards = parse_size(need_value(), "serve cache-shards");
    } else if (arg == "--discover-topology") {
      discover = true;
    } else if (arg == "--no-affinity") {
      affinity = false;
    } else if (arg == "--capacity") {
      config.shard_capacity = parse_size(need_value(), "serve capacity");
    } else if (arg == "--max-queue") {
      config.max_queue = parse_size(need_value(), "serve max-queue");
    } else if (arg == "--max-inflight") {
      config.max_inflight = parse_size(need_value(), "serve max-inflight");
    } else if (arg == "--timeout-ms") {
      config.default_timeout_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), "serve timeout-ms"));
    } else if (arg == "--retry-after-ms") {
      config.retry_after_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), "serve retry-after-ms"));
    } else if (arg == "--no-verify") {
      config.verify_trees = false;
    } else if (arg == "--flight-recorder") {
      config.flight_recorder =
          parse_size(need_value(), "serve flight-recorder");
    } else if (arg == "--trace-sample") {
      config.trace_sample = static_cast<std::uint32_t>(
          parse_size(need_value(), "serve trace-sample"));
    } else if (arg == "--trace-seed") {
      config.trace_seed = parse_size(need_value(), "serve trace-seed");
    } else if (arg == "--trace-dump") {
      trace_dump = need_value();
    } else if (arg == "--trace-dump-cap") {
      trace_dump_cap = parse_size(need_value(), "serve trace-dump-cap");
    } else if (arg == "--no-tail") {
      config.trace_tail = false;
    } else if (arg == "--tail-floor-ns") {
      config.trace_tail_floor_ns =
          parse_size(need_value(), "serve tail-floor-ns");
    } else if (arg == "--slo") {
      config.slo = svc::parse_slo_spec(need_value());
    } else if (arg == "--stats") {
      stats = true;
    } else {
      throw ParseError("unknown serve option: " + arg);
    }
  }
  if (shards > 1 && listen_addr.empty()) {
    throw ParseError("--shards > 1 requires --listen (stdin is one stream)");
  }
  if (shards > 1 && !dur_config.dir.empty() && persist) {
    // The durability journal is single-writer and sessions are shard-local;
    // N shards journaling into one store would interleave un-serializably.
    throw ParseError(
        "--state-dir requires --shards 1 (one journal, one writer); "
        "use --no-persist to shard without durability");
  }

  // --discover-topology: parse the real machine out of sysfs, NUMA-place
  // the cache shards on it, and let LAMA map the server's own shard
  // threads over it (unless --no-affinity).
  std::optional<TopologyDiscovery> discovery;
  std::unique_ptr<support::NumaTopology> numa_topo;
  std::unique_ptr<support::NumaAllocator> numa_arena;
  std::vector<std::vector<int>> shard_affinity;
  if (discover) {
    discovery.emplace(discover_topology());
    for (const std::string& warning : discovery->warnings) {
      std::fprintf(stderr, "lamactl: topology: %s\n", warning.c_str());
    }
    numa_topo = support::make_numa_topology();
    numa_arena = support::make_numa_allocator(*numa_topo);
    config.shard_arena = numa_arena.get();
    config.numa_topology = numa_topo.get();
    if (affinity) {
      shard_affinity =
          svc::compute_shard_affinity(discovery->topology, shards);
    }
  }

  svc::MappingService service(config);
  install_trace_dump(service, trace_dump, trace_dump_cap);
  install_shutdown_signals();

  std::unique_ptr<dur::StateStore> store;
  svc::ProtocolSession session(service);
  if (!dur_config.dir.empty() && persist) {
    store = std::make_unique<dur::StateStore>(dur_config);
    service.attach_durability(store.get());
    const svc::ProtocolSession::RecoveryInfo info =
        session.restore_from(*store);
    for (const std::string& warning : info.warnings) {
      std::fprintf(stderr, "lamactl: recovery: %s\n", warning.c_str());
    }
  }

  // The stop predicate begins the drain the moment a shutdown signal lands:
  // admission sheds new work with retry-after while reads keep serving, and
  // the loop exits (the signal also breaks the blocking getline / the
  // epoll_wait poll).
  const auto stop = [&service] {
    if (g_signal != 0 && !service.draining()) service.begin_drain();
    return service.draining();
  };
  if (!listen_addr.empty() && shards > 1) {
    // Sharded socket mode: N epoll loops behind one SO_REUSEPORT port,
    // shard-local sessions, one global connection cap, shard threads
    // pinned by LAMA's own mapping when the topology was discovered.
    svc::ShardServerConfig shard_config;
    shard_config.shards = shards;
    shard_config.net = net_config;
    shard_config.affinity = shard_affinity;
    svc::ShardedServer server(service, shard_config);
    server.listen(listen_addr);
    std::fprintf(stderr, "lamactl: listening on %s with %zu shards%s\n",
                 server.bound_address().to_string().c_str(), shards,
                 shard_affinity.empty() ? "" : " (affinity mapped)");
    server.run(stop);
    if (stats) std::fputs(service.render_stats().c_str(), stderr);
  } else if (!listen_addr.empty()) {
    // Socket mode: the epoll event loop serves many keep-alive connections,
    // text or binary framing per connection (docs/service.md). The drain
    // closes the acceptor, flushes in-flight connections, then falls
    // through to the snapshot below.
    if (!shard_affinity.empty()) {
      net_config.affinity_cpus = shard_affinity.front();
    }
    svc::EventLoopServer server(service, session, net_config);
    server.listen(listen_addr);
    std::fprintf(stderr, "lamactl: listening on %s\n",
                 server.bound_address().to_string().c_str());
    server.run(stop);
    if (stats) std::fputs(service.render_stats().c_str(), stderr);
  } else {
    svc::serve(std::cin, std::cout, session, service, stats, stop);
  }

  // Shutdown — signal-driven or clean EOF/QUIT: flush every batched journal
  // record, then compact the state into a final snapshot so the next start
  // restores without replay.
  service.begin_drain();
  if (store != nullptr) {
    store->flush();
    store->write_snapshot(session.snapshot_lines(), session.state_digest());
    if (g_signal != 0) {
      std::fprintf(stderr,
                   "lamactl: drained on signal %d (journal flushed, "
                   "snapshot seq=%llu)\n",
                   static_cast<int>(g_signal),
                   static_cast<unsigned long long>(store->snapshot_seq()));
    }
  }
  return 0;
}

// `lamactl query`: print the protocol lines for one mapping query, ready to
// pipe into `lamactl serve`. With --exec, run the query against an
// in-process service instead, through the retrying client (--retries,
// --backoff-ms) — busy responses back off and retry like a real client.
int run_query(const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::string alloc_id = "a0";
  std::string spec = "lama";
  std::size_t np = 0;
  std::string options;
  bool stats = false;
  bool exec = false;
  svc::RetryPolicy retry;
  svc::ServiceConfig exec_config;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--id") {
      alloc_id = need_value();
    } else if (arg == "-np" || arg == "--np") {
      np = parse_size(need_value(), "query process count");
    } else if (arg == "--map-by") {
      spec = need_value();
    } else if (arg == "--bind-to") {
      options += (options.empty() ? "" : " ") + ("bind=" + need_value());
    } else if (arg == "--npernode") {
      options += (options.empty() ? "" : " ") + ("npernode=" + need_value());
    } else if (arg == "--oversubscribe") {
      options += (options.empty() ? "" : " ") + std::string("oversub=1");
    } else if (arg == "--no-oversubscribe") {
      options += (options.empty() ? "" : " ") + std::string("oversub=0");
    } else if (arg == "--timeout-ms") {
      options += (options.empty() ? "" : " ") + ("timeout=" + need_value());
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--exec") {
      exec = true;
    } else if (arg == "--retries") {
      retry.max_attempts = parse_size(need_value(), "query retries");
    } else if (arg == "--backoff-ms") {
      retry.base_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), "query backoff-ms"));
    } else if (arg == "--max-inflight") {
      exec_config.max_inflight =
          parse_size(need_value(), "query max-inflight");
    } else {
      throw ParseError("unknown query option: " + arg);
    }
  }
  if (cluster_path.empty()) throw ParseError("--cluster <file> is required");
  if (np == 0) throw ParseError("-np <count> is required");

  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));
  if (!connect.address.empty()) {
    // Run the query against a live `lamactl serve --listen` server: the
    // socket client reconnects with backoff, the retrying client handles
    // busy responses — exit 3 when still shed after retries, like --exec.
    svc::SocketClient socket(connect);
    svc::QueryClient client(socket.transport(), retry);
    const svc::QueryResult result =
        client.query(alloc, alloc_id, np, spec, options);
    std::printf("%s\n", result.response.c_str());
    if (result.attempts > 1 || socket.reconnects() > 0) {
      std::printf("# attempts=%zu backoff-ms=%llu reconnects=%zu\n",
                  result.attempts,
                  static_cast<unsigned long long>(result.total_backoff_ms),
                  socket.reconnects());
    }
    if (stats) {
      for (const std::string& line : socket.request("STATS")) {
        std::printf("%s\n", line.c_str());
      }
    }
    if (result.gave_up_busy) return kExitBusy;
    return result.ok() ? 0 : 1;
  }
  if (exec) {
    svc::MappingService service(exec_config);
    svc::ProtocolSession session(service);
    std::istringstream no_more;
    svc::QueryClient client(
        [&](const std::string& line) {
          std::string response = session.execute(line, no_more);
          if (!response.empty() && response.back() == '\n') {
            response.pop_back();
          }
          return response;
        },
        retry);
    const svc::QueryResult result =
        client.query(alloc, alloc_id, np, spec, options);
    std::printf("%s\n", result.response.c_str());
    if (result.attempts > 1) {
      std::printf("# attempts=%zu backoff-ms=%llu\n", result.attempts,
                  static_cast<unsigned long long>(result.total_backoff_ms));
    }
    if (stats) {
      std::printf("%s", service.render_stats().c_str());
    }
    if (result.gave_up_busy) return kExitBusy;
    return result.ok() ? 0 : 1;
  }
  std::string out = svc::format_query(alloc, alloc_id, np, spec, options);
  if (stats) out += "STATS\n";
  std::fputs(out.c_str(), stdout);
  return 0;
}

// `lamactl mapbatch`: one MAPBATCH request carrying a job per -np value.
// Default prints the protocol lines (NODE definitions + the MAPBATCH line),
// ready to pipe into `lamactl serve`; --exec runs them against an
// in-process service through the batch-aware retrying client, which
// re-sends only the jobs the server shed.
int run_mapbatch(const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::string alloc_id = "a0";
  std::string spec = "lama";
  std::vector<std::size_t> np_list;
  std::vector<std::string> options;
  bool stats = false;
  bool exec = false;
  svc::RetryPolicy retry;
  svc::ServiceConfig exec_config;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--id") {
      alloc_id = need_value();
    } else if (arg == "-np" || arg == "--np") {
      // Comma-separated: one batch job per count.
      const std::string list = need_value();
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const auto comma = list.find(',', pos);
        np_list.push_back(parse_size(
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos),
            "mapbatch process count"));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--map-by") {
      spec = need_value();
    } else if (arg == "--bind-to") {
      options.push_back("bind=" + need_value());
    } else if (arg == "--npernode") {
      options.push_back("npernode=" + need_value());
    } else if (arg == "--threads") {
      options.push_back("threads=" + need_value());
    } else if (arg == "--oversubscribe") {
      options.push_back("oversub=1");
    } else if (arg == "--no-oversubscribe") {
      options.push_back("oversub=0");
    } else if (arg == "--timeout-ms") {
      options.push_back("timeout=" + need_value());
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--exec") {
      exec = true;
    } else if (arg == "--retries") {
      retry.max_attempts = parse_size(need_value(), "mapbatch retries");
    } else if (arg == "--backoff-ms") {
      retry.base_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), "mapbatch backoff-ms"));
    } else if (arg == "--max-inflight") {
      exec_config.max_inflight =
          parse_size(need_value(), "mapbatch max-inflight");
    } else {
      throw ParseError("unknown mapbatch option: " + arg);
    }
  }
  if (cluster_path.empty()) throw ParseError("--cluster <file> is required");
  if (np_list.empty()) throw ParseError("-np <count[,count...]> is required");

  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));
  std::vector<svc::BatchJob> jobs;
  jobs.reserve(np_list.size());
  for (const std::size_t np : np_list) {
    jobs.push_back(svc::BatchJob{alloc_id, np, spec, options});
  }
  // The NODE definitions, shared by both modes (format_query minus its MAP
  // line, which the batch replaces).
  std::string node_lines = svc::format_query(alloc, alloc_id, 1, spec);
  node_lines.erase(node_lines.rfind("MAP "));

  if (!connect.address.empty()) {
    svc::SocketClient socket(connect);
    // NODE definitions first (never shed), then the retried MAPBATCH.
    std::size_t at = 0;
    while (at < node_lines.size()) {
      const auto nl = node_lines.find('\n', at);
      const std::vector<std::string> reply =
          socket.request(node_lines.substr(at, nl - at));
      if (reply.empty() || !starts_with(reply.front(), "OK")) {
        std::printf("%s\n",
                    reply.empty() ? "ERR empty response"
                                  : reply.front().c_str());
        return 1;
      }
      at = nl == std::string::npos ? node_lines.size() : nl + 1;
    }
    svc::QueryClient client([](const std::string&) { return std::string(); },
                            retry);
    const svc::BatchResult result =
        client.map_batch(jobs, socket.multi_transport());
    for (std::size_t i = 0; i < result.responses.size(); ++i) {
      std::printf("JOB %zu %s\n", i, result.responses[i].c_str());
    }
    std::printf("%s\n", result.trailer.c_str());
    if (result.attempts > 1 || socket.reconnects() > 0) {
      std::printf("# attempts=%zu backoff-ms=%llu reconnects=%zu\n",
                  result.attempts,
                  static_cast<unsigned long long>(result.total_backoff_ms),
                  socket.reconnects());
    }
    if (stats) {
      for (const std::string& line : socket.request("STATS")) {
        std::printf("%s\n", line.c_str());
      }
    }
    if (result.gave_up_busy) return kExitBusy;
    return result.ok() ? 0 : 1;
  }

  if (!exec) {
    std::fputs(node_lines.c_str(), stdout);
    std::printf("%s\n", svc::format_mapbatch(jobs).c_str());
    if (stats) std::printf("STATS\n");
    return 0;
  }

  svc::MappingService service(exec_config);
  svc::ProtocolSession session(service);
  std::istringstream no_more;
  auto execute = [&](const std::string& line) {
    return session.execute(line, no_more);
  };
  std::size_t pos = 0;
  while (pos < node_lines.size()) {
    const auto nl = node_lines.find('\n', pos);
    execute(node_lines.substr(pos, nl - pos));
    pos = nl == std::string::npos ? node_lines.size() : nl + 1;
  }
  svc::QueryClient client([](const std::string&) { return std::string(); },
                          retry);
  const svc::BatchResult result =
      client.map_batch(jobs, [&](const std::string& line) {
        std::vector<std::string> lines;
        const std::string text = execute(line);
        std::size_t at = 0;
        while (at < text.size()) {
          const auto nl = text.find('\n', at);
          lines.push_back(text.substr(at, nl - at));
          at = nl == std::string::npos ? text.size() : nl + 1;
        }
        return lines;
      });
  for (std::size_t i = 0; i < result.responses.size(); ++i) {
    std::printf("JOB %zu %s\n", i, result.responses[i].c_str());
  }
  std::printf("%s\n", result.trailer.c_str());
  if (result.attempts > 1) {
    std::printf("# attempts=%zu backoff-ms=%llu\n", result.attempts,
                static_cast<unsigned long long>(result.total_backoff_ms));
  }
  if (stats) {
    std::printf("%s", service.render_stats().c_str());
  }
  if (result.gave_up_busy) return kExitBusy;
  return result.ok() ? 0 : 1;
}

// `lamactl optimize`: one OPTIMIZE request — search the placement space for
// np processes against a named pattern or a communication-matrix file.
// Default prints the protocol lines (NODE definitions, the OPTIMIZE line,
// and any framed matrix payload) ready to pipe into `lamactl serve`; --exec
// runs the request against an in-process service and prints the response.
int run_optimize(const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::string alloc_id = "a0";
  std::string pattern_spec;
  std::string matrix_path;
  std::size_t np = 0;
  std::string options;
  bool stats = false;
  bool exec = false;
  svc::ServiceConfig exec_config;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--id") {
      alloc_id = need_value();
    } else if (arg == "-np" || arg == "--np") {
      np = parse_size(need_value(), "optimize process count");
    } else if (arg == "--pattern") {
      pattern_spec = need_value();
    } else if (arg == "--matrix") {
      matrix_path = need_value();
    } else if (arg == "--budget") {
      options += " budget=" + need_value();
    } else if (arg == "--passes") {
      options += " passes=" + need_value();
    } else if (arg == "--timeout-ms") {
      options += " timeout=" + need_value();
    } else if (arg == "--threads") {
      options += " threads=" + need_value();
    } else if (arg == "--workers") {
      exec_config.workers = parse_size(need_value(), "optimize workers");
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--exec") {
      exec = true;
    } else {
      throw ParseError("unknown optimize option: " + arg);
    }
  }
  if (cluster_path.empty()) throw ParseError("--cluster <file> is required");
  if (pattern_spec.empty() == matrix_path.empty()) {
    throw ParseError("exactly one of --pattern or --matrix is required");
  }

  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));

  // The command line plus any framed payload. A matrix file carries its own
  // "np <N>" header (tmatch/comm_matrix.hpp); the wire form implies np from
  // the command, so the header is stripped and -np may be omitted.
  std::string command = "OPTIMIZE " + alloc_id + " ";
  std::string payload;
  if (!pattern_spec.empty()) {
    if (np == 0) throw ParseError("-np <count> is required with --pattern");
    command += std::to_string(np) + " pattern=" + pattern_spec;
  } else {
    const CommMatrix matrix = CommMatrix::parse(read_file(matrix_path));
    if (np == 0) {
      np = static_cast<std::size_t>(matrix.np());
    } else if (np != static_cast<std::size_t>(matrix.np())) {
      throw ParseError("-np disagrees with the matrix file's np header");
    }
    std::string body = matrix.serialize();
    body.erase(0, body.find('\n') + 1);  // strip the "np <N>" header line
    std::size_t lines = 0;
    for (const char c : body) lines += c == '\n' ? 1 : 0;
    command += std::to_string(np) + " matrix=" + std::to_string(lines);
    payload = std::move(body);
  }
  command += options;

  // The NODE definitions (format_query minus its MAP line).
  std::string node_lines = svc::format_query(alloc, alloc_id, 1, "lama");
  node_lines.erase(node_lines.rfind("MAP "));

  if (!exec) {
    std::fputs(node_lines.c_str(), stdout);
    std::printf("%s\n", command.c_str());
    std::fputs(payload.c_str(), stdout);
    if (stats) std::printf("STATS\n");
    return 0;
  }

  svc::MappingService service(exec_config);
  svc::ProtocolSession session(service);
  std::istringstream no_more;
  std::size_t pos = 0;
  while (pos < node_lines.size()) {
    const auto nl = node_lines.find('\n', pos);
    session.execute(node_lines.substr(pos, nl - pos), no_more);
    pos = nl == std::string::npos ? node_lines.size() : nl + 1;
  }
  std::istringstream more(payload);
  const std::string response = session.execute(command, more);
  std::fputs(response.c_str(), stdout);
  if (stats) {
    std::printf("%s", service.render_stats().c_str());
  }
  return starts_with(response, "OK") ? 0 : 1;
}

// `lamactl offline|online|remap`: one-shot control-plane mutations. Default
// prints the protocol line, ready to pipe into a running `lamactl serve`;
// --exec runs it against an in-process service (NODE lines from --cluster
// first) through the retrying client. Exit codes: 0 OK, 1 error, 3 when the
// server still answers "ERR busy retry-after=<ms>" after retries exhausted.
int run_mutation(const std::string& verb, const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::string alloc_id = "a0";
  std::optional<std::size_t> node;
  std::vector<std::string> pus;
  std::string timeout_ms;
  bool exec = false;
  svc::RetryPolicy retry;
  svc::ServiceConfig exec_config;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--id") {
      alloc_id = need_value();
    } else if (arg == "--node" && verb != "remap") {
      node = parse_size(need_value(), verb + " node index");
    } else if (arg == "--pus" && verb != "remap") {
      // Comma-separated PU indices; validated server-side against the node.
      for (const std::string& pu : split(need_value(), ',')) {
        parse_size(pu, verb + " pu index");
        pus.push_back(pu);
      }
    } else if (arg == "--timeout-ms" && verb == "remap") {
      timeout_ms = need_value();
    } else if (arg == "--exec") {
      exec = true;
    } else if (arg == "--retries") {
      retry.max_attempts = parse_size(need_value(), verb + " retries");
    } else if (arg == "--backoff-ms") {
      retry.base_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), verb + " backoff-ms"));
    } else if (arg == "--max-inflight") {
      exec_config.max_inflight =
          parse_size(need_value(), verb + " max-inflight");
    } else {
      throw ParseError("unknown " + verb + " option: " + arg);
    }
  }

  std::string command;
  if (verb == "remap") {
    command = "REMAP " + alloc_id;
    if (!timeout_ms.empty()) command += " timeout=" + timeout_ms;
  } else {
    if (!node.has_value()) {
      throw ParseError("--node <index> is required for " + verb);
    }
    command = (verb == "offline" ? "OFFLINE " : "ONLINE ") + alloc_id + " " +
              std::to_string(*node);
    for (const std::string& pu : pus) command += " " + pu;
  }

  if (!connect.address.empty()) {
    // A live server already holds the allocation state, so the mutation goes
    // straight over the socket — no --cluster needed.
    svc::SocketClient socket(connect);
    svc::QueryClient client(socket.transport(), retry);
    const svc::QueryResult result = client.send(command);
    std::printf("%s\n", result.response.c_str());
    if (result.attempts > 1 || socket.reconnects() > 0) {
      std::printf("# attempts=%zu backoff-ms=%llu reconnects=%zu\n",
                  result.attempts,
                  static_cast<unsigned long long>(result.total_backoff_ms),
                  socket.reconnects());
    }
    if (result.gave_up_busy) return kExitBusy;
    return result.ok() ? 0 : 1;
  }

  if (!exec) {
    std::printf("%s\n", command.c_str());
    return 0;
  }
  if (cluster_path.empty()) {
    throw ParseError("--exec needs --cluster <file>");
  }
  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));

  svc::MappingService service(exec_config);
  svc::ProtocolSession session(service);
  std::istringstream no_more;
  std::string node_lines = svc::format_query(alloc, alloc_id, 1, "lama");
  node_lines.erase(node_lines.rfind("MAP "));
  std::size_t pos = 0;
  while (pos < node_lines.size()) {
    const auto nl = node_lines.find('\n', pos);
    session.execute(node_lines.substr(pos, nl - pos), no_more);
    pos = nl == std::string::npos ? node_lines.size() : nl + 1;
  }
  // REMAP needs a baseline mapping to re-place.
  if (verb == "remap") {
    session.execute("MAP " + alloc_id + " 2 lama", no_more);
  }
  svc::QueryClient client(
      [&](const std::string& line) {
        std::string response = session.execute(line, no_more);
        if (!response.empty() && response.back() == '\n') response.pop_back();
        return response;
      },
      retry);
  const svc::QueryResult result = client.send(command);
  std::printf("%s\n", result.response.c_str());
  if (result.attempts > 1) {
    std::printf("# attempts=%zu backoff-ms=%llu\n", result.attempts,
                static_cast<unsigned long long>(result.total_backoff_ms));
  }
  if (result.gave_up_busy) return kExitBusy;
  return result.ok() ? 0 : 1;
}

// `lamactl inject`: replay a seeded fault schedule against an in-process
// service and report whether the resilience invariants held.
int run_inject(const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::uint64_t seed = 42;
  std::size_t requests = 200;
  svc::FaultMix mix;
  svc::ServiceConfig config;
  config.workers = 0;  // deterministic by default; faults are interleaved
  bool stats = false;
  std::string trace_dump;
  std::string state_dir;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--seed") {
      seed = parse_size(need_value(), "inject seed");
    } else if (arg == "--requests") {
      requests = parse_size(need_value(), "inject requests");
    } else if (arg == "--node-deaths") {
      mix.node_deaths = parse_size(need_value(), "inject node-deaths");
    } else if (arg == "--node-recoveries") {
      mix.node_recoveries = parse_size(need_value(), "inject node-recoveries");
    } else if (arg == "--pu-offlines") {
      mix.pu_offlines = parse_size(need_value(), "inject pu-offlines");
    } else if (arg == "--malformed") {
      mix.malformed = parse_size(need_value(), "inject malformed");
    } else if (arg == "--corruptions") {
      mix.tree_corruptions = parse_size(need_value(), "inject corruptions");
    } else if (arg == "--stalls") {
      mix.worker_stalls = parse_size(need_value(), "inject stalls");
    } else if (arg == "--journal-fails") {
      mix.journal_write_fails = parse_size(need_value(), "inject journal-fails");
    } else if (arg == "--fsync-stalls") {
      mix.fsync_stalls = parse_size(need_value(), "inject fsync-stalls");
    } else if (arg == "--corrupt-records") {
      mix.corrupt_records = parse_size(need_value(), "inject corrupt-records");
    } else if (arg == "--recovery-kills") {
      mix.recovery_kills = parse_size(need_value(), "inject recovery-kills");
    } else if (arg == "--state-dir") {
      state_dir = need_value();
    } else if (arg == "--max-inflight") {
      config.max_inflight = parse_size(need_value(), "inject max-inflight");
    } else if (arg == "--timeout-ms") {
      config.default_timeout_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), "inject timeout-ms"));
    } else if (arg == "--flight-recorder") {
      config.flight_recorder =
          parse_size(need_value(), "inject flight-recorder");
    } else if (arg == "--trace-sample") {
      config.trace_sample = static_cast<std::uint32_t>(
          parse_size(need_value(), "inject trace-sample"));
    } else if (arg == "--trace-dump") {
      trace_dump = need_value();
    } else if (arg == "--stats") {
      stats = true;
    } else {
      throw ParseError("unknown inject option: " + arg);
    }
  }
  if (cluster_path.empty()) throw ParseError("--cluster <file> is required");

  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));
  const svc::FaultPlan plan =
      svc::FaultPlan::random(seed, requests, mix, alloc);
  svc::MappingService service(config);
  install_trace_dump(service, trace_dump, /*cap=*/0);
  // With --state-dir the injector's session journals its mutations, which
  // the durability fault classes (--journal-fails, --fsync-stalls,
  // --corrupt-records, --recovery-kills) act on.
  std::unique_ptr<dur::StateStore> store;
  if (!state_dir.empty()) {
    dur::DurConfig dur_config;
    dur_config.dir = state_dir;
    store = std::make_unique<dur::StateStore>(dur_config);
    service.attach_durability(store.get());
  }
  const svc::InjectionOutcome outcome =
      svc::run_fault_injection(service, alloc, plan);
  std::printf("seed %llu: %s", static_cast<unsigned long long>(seed),
              outcome.report().c_str());
  if (stats) {
    std::printf("%s", service.render_stats().c_str());
  }
  return outcome.passed() ? 0 : 2;
}

// Shared by the observability subcommands' --exec mode: a traced in-process
// service warmed by `requests` lama MAPs (sampling 1/1 so every trace is
// retained), optionally ending with a corrupted-tree request so the flight
// recorder holds a real failure trace.
std::unique_ptr<svc::MappingService> run_obs_workload(
    const std::string& cluster_path, const std::string& hostfile_path,
    std::size_t requests, bool corrupt) {
  if (cluster_path.empty()) {
    throw ParseError("--exec needs --cluster <file>");
  }
  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));
  svc::ServiceConfig config;
  config.workers = 0;
  config.flight_recorder = 32;
  config.trace_sample = 1;
  auto service = std::make_unique<svc::MappingService>(config);
  const svc::InternedAlloc interned = service->intern(alloc);
  svc::MapRequest request;
  request.alloc = interned;
  request.opts.allow_oversubscribe = true;
  for (std::size_t i = 0; i < requests; ++i) {
    request.opts.np = 1 + i % 4;
    service->map(request);
  }
  if (corrupt) {
    // Poison every cached tree, then hit the cache: the integrity check
    // rejects it and the request degrades — a guaranteed failure trace.
    service->corrupt_cached_trees_for_testing();
    request.opts.np = 2;
    service->map(request);
  }
  return service;
}

// `lamactl stats [--json]`: print the STATS protocol line for piping into a
// server; with --exec, run a small workload in process and print its stats.
int run_stats(const std::vector<std::string>& args) {
  bool json = false, exec = false;
  std::string cluster_path, hostfile_path;
  std::size_t requests = 16;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--exec") {
      exec = true;
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--requests") {
      requests = parse_size(need_value(), "stats requests");
    } else {
      throw ParseError("unknown stats option: " + arg);
    }
  }
  if (!connect.address.empty()) {
    svc::SocketClient socket(connect);
    bool ok = true;
    for (const std::string& line :
         socket.request(json ? "STATS json" : "STATS")) {
      std::printf("%s\n", line.c_str());
      if (starts_with(line, "ERR")) ok = false;
    }
    return ok ? 0 : 1;
  }
  if (!exec) {
    std::printf(json ? "STATS json\n" : "STATS\n");
    return 0;
  }
  const auto service =
      run_obs_workload(cluster_path, hostfile_path, requests, false);
  if (json) {
    std::printf("%s\n", service->metrics_snapshot().to_json().c_str());
  } else {
    std::printf("%s", service->render_stats().c_str());
  }
  return 0;
}

// `lamactl metrics [--json]`: print the METRICS protocol line for piping;
// with --exec, run a workload and print the Prometheus (or JSON) exposition.
int run_metrics(const std::vector<std::string>& args) {
  bool json = false, exec = false;
  std::string cluster_path, hostfile_path;
  std::size_t requests = 16;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--exec") {
      exec = true;
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--requests") {
      requests = parse_size(need_value(), "metrics requests");
    } else {
      throw ParseError("unknown metrics option: " + arg);
    }
  }
  if (!connect.address.empty()) {
    svc::SocketClient socket(connect);
    bool ok = true;
    for (const std::string& line :
         socket.request(json ? "METRICS json" : "METRICS")) {
      std::printf("%s\n", line.c_str());
      if (starts_with(line, "ERR")) ok = false;
    }
    return ok ? 0 : 1;
  }
  if (!exec) {
    std::printf(json ? "METRICS json\n" : "METRICS\n");
    return 0;
  }
  const auto service =
      run_obs_workload(cluster_path, hostfile_path, requests, false);
  if (json) {
    std::printf("%s\n", service->metrics_snapshot().to_json().c_str());
  } else {
    std::printf("%s", service->metrics_snapshot().to_prometheus().c_str());
  }
  return 0;
}

// `lamactl trace [<id>|last|errors]`: print the TRACE protocol line for
// piping; with --exec, run a workload that includes one corrupted-tree
// failure and print (or --dump) the selected trace as Chrome trace-event
// JSON, loadable in chrome://tracing or Perfetto.
int run_trace(const std::vector<std::string>& args) {
  std::string selector = "last";
  bool exec = false;
  std::string cluster_path, hostfile_path, dump_dir;
  std::size_t requests = 16;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--exec") {
      exec = true;
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--requests") {
      requests = parse_size(need_value(), "trace requests");
    } else if (arg == "--dump") {
      dump_dir = need_value();
    } else if (!arg.empty() && arg[0] != '-') {
      selector = arg;
    } else {
      throw ParseError("unknown trace option: " + arg);
    }
  }
  if (!connect.address.empty()) {
    svc::SocketClient socket(connect);
    bool ok = true;
    for (const std::string& line : socket.request("TRACE " + selector)) {
      std::printf("%s\n", line.c_str());
      if (starts_with(line, "ERR")) ok = false;
    }
    return ok ? 0 : 1;
  }
  if (!exec) {
    std::printf("TRACE %s\n", selector.c_str());
    return 0;
  }
  const auto service =
      run_obs_workload(cluster_path, hostfile_path, requests, true);
  const obs::FlightRecorder& recorder = service->tracer()->recorder();
  std::optional<obs::Trace> trace;
  if (selector == "last") {
    trace = recorder.last();
  } else if (selector == "errors") {
    trace = recorder.last_failure();
  } else {
    trace = recorder.by_id(parse_size(selector, "trace id"));
  }
  if (!trace.has_value()) {
    throw ParseError("no retained trace for '" + selector + "'");
  }
  const std::string chrome = obs::to_chrome_json(*trace);
  if (!dump_dir.empty()) {
    const std::string path =
        dump_dir + "/trace-" + std::to_string(trace->id) + ".json";
    std::ofstream out(path);
    if (!out) throw ParseError("cannot write trace dump: " + path);
    out << chrome << "\n";
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::printf("%s\n", chrome.c_str());
  }
  return 0;
}

// ---- lamactl top -----------------------------------------------------------

// One parsed Prometheus text sample: name{labels} value. The exemplar
// suffix (" # {...} v"), if any, is not needed by the dashboard — strtod
// stops at the space after the value.
struct PromSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;

  [[nodiscard]] std::string label(const std::string& key) const {
    for (const auto& [k, v] : labels) {
      if (k == key) return v;
    }
    return "";
  }
};

// Parses one exposition line; returns false for comments, blanks, and
// anything that does not look like a sample (the dashboard just skips those).
bool parse_prom_line(const std::string& line, PromSample& out) {
  if (line.empty() || line[0] == '#') return false;
  out.labels.clear();
  std::size_t pos = line.find_first_of("{ ");
  if (pos == std::string::npos || pos == 0) return false;
  out.name = line.substr(0, pos);
  if (line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      const std::size_t eq = line.find('=', pos);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        return false;
      }
      std::string key = line.substr(pos, eq - pos);
      std::string value;
      std::size_t v = eq + 2;
      while (v < line.size() && line[v] != '"') {
        if (line[v] == '\\' && v + 1 < line.size()) ++v;
        value += line[v++];
      }
      if (v >= line.size()) return false;
      out.labels.emplace_back(std::move(key), std::move(value));
      pos = v + 1;
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size()) return false;
    ++pos;  // '}'
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return false;
  const std::string rest = line.substr(pos);
  if (rest == "+Inf") {
    out.value = std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  out.value = std::strtod(rest.c_str(), &end);
  return end != rest.c_str();
}

// The per-frame dashboard model, rebuilt from each METRICS push.
struct TopModel {
  std::map<std::string, double> scalar;  // label-less samples by name

  struct StageHist {
    std::vector<std::pair<double, double>> buckets;  // (le ns, cumulative)
    double count = 0.0;
    double sum = 0.0;
  };
  std::map<std::string, StageHist> stages;

  struct SloRow {
    double objective_ns = 0.0;
    double good = 0.0;
    double bad = 0.0;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
  };
  std::map<std::string, SloRow> slo;

  std::map<std::string, double> total_quantiles;  // "0.5" -> ns

  void ingest(const PromSample& s) {
    if (s.name == "lama_stage_latency_ns_bucket") {
      StageHist& h = stages[s.label("stage")];
      const std::string le = s.label("le");
      const double bound = le == "+Inf"
                               ? std::numeric_limits<double>::infinity()
                               : std::strtod(le.c_str(), nullptr);
      h.buckets.emplace_back(bound, s.value);
      return;
    }
    if (s.name == "lama_stage_latency_ns_count") {
      stages[s.label("stage")].count = s.value;
      return;
    }
    if (s.name == "lama_stage_latency_ns_sum") {
      stages[s.label("stage")].sum = s.value;
      return;
    }
    if (s.name == "lama_slo_objective_ns") {
      slo[s.label("verb")].objective_ns = s.value;
      return;
    }
    if (s.name == "lama_slo_good_total") {
      slo[s.label("verb")].good = s.value;
      return;
    }
    if (s.name == "lama_slo_bad_total") {
      slo[s.label("verb")].bad = s.value;
      return;
    }
    if (s.name == "lama_slo_burn_rate") {
      SloRow& row = slo[s.label("verb")];
      if (s.label("window") == "slow") {
        row.slow_burn = s.value;
      } else {
        row.fast_burn = s.value;
      }
      return;
    }
    if (s.name == "lama_total_ns" && !s.label("quantile").empty()) {
      total_quantiles[s.label("quantile")] = s.value;
      return;
    }
    if (s.labels.empty()) scalar[s.name] = s.value;
  }

  [[nodiscard]] double get(const std::string& name) const {
    const auto it = scalar.find(name);
    return it == scalar.end() ? 0.0 : it->second;
  }

  // Nearest-rank percentile from a stage's cumulative buckets: the upper
  // bound of the first bucket whose cumulative count covers the rank.
  [[nodiscard]] static double bucket_percentile(const StageHist& h, double p) {
    if (h.count <= 0.0 || h.buckets.empty()) return 0.0;
    const double rank = p * h.count;
    double bound = 0.0;
    for (const auto& [le, cum] : h.buckets) {
      bound = le;
      if (cum >= rank) break;
    }
    return std::isinf(bound) ? h.buckets.back().first : bound;
  }
};

std::string format_ns(double ns) {
  char buf[32];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fGB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fkB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  }
  return buf;
}

std::string percent_of(double part, double whole) {
  char buf[32];
  if (whole <= 0.0) return "-";
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * part / whole);
  return buf;
}

// Renders one dashboard frame. `qps` < 0 means "not yet known" (first frame).
std::string render_top_frame(const TopModel& m, const std::string& where,
                             std::size_t frame, double qps,
                             const std::deque<std::string>& events) {
  std::ostringstream out;
  char line[256];

  std::snprintf(line, sizeof(line), "lama top — %s   uptime %.1fs   frame %zu\n",
                where.c_str(), m.get("lama_uptime_seconds"), frame);
  out << line;

  char qps_text[32] = "-";
  if (qps >= 0.0) std::snprintf(qps_text, sizeof(qps_text), "%.1f", qps);
  std::snprintf(line, sizeof(line),
                "reqs     %.0f total, %.0f ok, %.0f err, %.0f shed, "
                "%.0f inflight   qps %s\n",
                m.get("lama_requests_total"),
                m.get("lama_completed_total") - m.get("lama_errors_total"),
                m.get("lama_errors_total"), m.get("lama_shed_total"),
                m.get("lama_inflight_requests"), qps_text);
  out << line;

  const auto quant = [&](const char* q) {
    const auto it = m.total_quantiles.find(q);
    return it == m.total_quantiles.end() ? 0.0 : it->second;
  };
  std::snprintf(line, sizeof(line),
                "latency  p50 %s   p90 %s   p99 %s   tail captured %.0f "
                "(threshold %s)\n",
                format_ns(quant("0.5")).c_str(),
                format_ns(quant("0.9")).c_str(),
                format_ns(quant("0.99")).c_str(),
                m.get("lama_traces_tail_total"),
                format_ns(m.get("lama_tail_threshold_ns")).c_str());
  out << line;

  const double hits = m.get("lama_cache_hits_total");
  const double misses = m.get("lama_cache_misses_total");
  const double plan_hits = m.get("lama_plan_cache_hits_total");
  const double plan_misses = m.get("lama_plan_cache_misses_total");
  const double opt_hits = m.get("lama_opt_hits_total");
  const double opt_misses = m.get("lama_opt_misses_total");
  std::snprintf(line, sizeof(line),
                "cache    tree %s hit (%.0f/%.0f)   plan %s   opt %s   "
                "%.0f trees resident\n",
                percent_of(hits, hits + misses).c_str(), hits, hits + misses,
                percent_of(plan_hits, plan_hits + plan_misses).c_str(),
                percent_of(opt_hits, opt_hits + opt_misses).c_str(),
                m.get("lama_cache_trees"));
  out << line;

  std::snprintf(line, sizeof(line),
                "net      %.0f conns   %.0f shed   %.0f frame errs   "
                "in %s   out %s\n",
                m.get("lama_net_active_connections"),
                m.get("lama_net_shed_total"),
                m.get("lama_net_frame_errors_total"),
                format_bytes(m.get("lama_net_bytes_in_total")).c_str(),
                format_bytes(m.get("lama_net_bytes_out_total")).c_str());
  out << line;

  std::snprintf(line, sizeof(line),
                "dur      journal lag %.0f   fsyncs %.0f   errors %.0f   "
                "snapshots %.0f\n",
                m.get("lama_dur_journal_lag"),
                m.get("lama_dur_journal_fsyncs_total"),
                m.get("lama_dur_journal_errors_total"),
                m.get("lama_dur_snapshots_total"));
  out << line;

  if (!m.slo.empty()) {
    out << "slo      verb       objective      good       bad  "
           "burn-fast  burn-slow\n";
    for (const auto& [verb, row] : m.slo) {
      std::snprintf(line, sizeof(line),
                    "         %-9s %9s %9.0f %9.0f %10.2f %10.2f%s\n",
                    verb.c_str(), format_ns(row.objective_ns).c_str(),
                    row.good, row.bad, row.fast_burn, row.slow_burn,
                    row.fast_burn > 1.0 ? "  BURNING" : "");
      out << line;
    }
  }

  if (!m.stages.empty()) {
    out << "stage               count       p50       p99       mean\n";
    std::vector<std::pair<std::string, const TopModel::StageHist*>> rows;
    rows.reserve(m.stages.size());
    for (const auto& [name, hist] : m.stages) {
      rows.emplace_back(name, &hist);
    }
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second->sum > b.second->sum;
    });
    const std::size_t shown = std::min<std::size_t>(rows.size(), 12);
    for (std::size_t i = 0; i < shown; ++i) {
      const TopModel::StageHist& h = *rows[i].second;
      std::snprintf(line, sizeof(line), "  %-15s %9.0f %9s %9s %10s\n",
                    rows[i].first.c_str(), h.count,
                    format_ns(TopModel::bucket_percentile(h, 0.5)).c_str(),
                    format_ns(TopModel::bucket_percentile(h, 0.99)).c_str(),
                    format_ns(h.count > 0 ? h.sum / h.count : 0.0).c_str());
      out << line;
    }
    if (rows.size() > shown) {
      std::snprintf(line, sizeof(line), "  ... %zu more stages\n",
                    rows.size() - shown);
      out << line;
    }
  }

  if (!events.empty()) {
    out << "events\n";
    for (const std::string& event : events) {
      out << "  " << event << "\n";
    }
  }
  return out.str();
}

// `lamactl top`: a live terminal dashboard over the WATCH verb. Subscribes
// with "WATCH <interval> metrics" and re-renders on every pushed Prometheus
// snapshot; EVENT lines (failures, SLO breaches) land in a rolling log.
// --once renders a single frame from one METRICS request and exits;
// --once --json prints the raw metrics-snapshot JSON for scripts.
int run_top(const std::vector<std::string>& args) {
  svc::ConnectConfig connect;
  std::uint32_t interval_ms = 1000;
  bool once = false;
  bool json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--interval-ms") {
      interval_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), "top interval-ms"));
      if (interval_ms == 0) interval_ms = 1;
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      throw ParseError("unknown top option: " + arg);
    }
  }
  if (connect.address.empty()) {
    throw ParseError("top needs --connect <addr> (a serve --listen server)");
  }
  if (json && !once) {
    throw ParseError("--json requires --once (one snapshot for scripts)");
  }
  svc::SocketClient socket(connect);

  if (once) {
    if (json) {
      // One-shot machine-readable snapshot: the full metrics JSON.
      const std::vector<std::string> lines = socket.request("STATS json");
      if (lines.empty() || starts_with(lines[0], "ERR")) {
        throw ParseError(lines.empty() ? "no response" : lines[0]);
      }
      const std::string& reply = lines[0];
      std::printf("%s\n", starts_with(reply, "STATS ")
                              ? reply.c_str() + 6
                              : reply.c_str());
      return 0;
    }
    TopModel model;
    for (const std::string& line : socket.request("METRICS")) {
      if (starts_with(line, "ERR")) throw ParseError(line);
      PromSample sample;
      if (parse_prom_line(line, sample)) model.ingest(sample);
    }
    std::fputs(render_top_frame(model, connect.address, 1, -1.0, {}).c_str(),
               stdout);
    return 0;
  }

  install_shutdown_signals();
  std::size_t frame = 0;
  double last_completed = -1.0;
  auto last_time = std::chrono::steady_clock::now();
  std::deque<std::string> events;
  TopModel model;
  std::string error;
  const bool ended = socket.watch(
      "WATCH " + std::to_string(interval_ms) + " metrics",
      [&](const std::string& unit) {
        if (g_signal != 0) return false;
        // A unit is one text line or one whole binary frame (several lines).
        std::size_t start = 0;
        while (start <= unit.size()) {
          std::size_t nl = unit.find('\n', start);
          if (nl == std::string::npos) nl = unit.size();
          const std::string line = unit.substr(start, nl - start);
          start = nl + 1;
          if (line.empty() && start > unit.size()) break;
          if (starts_with(line, "EVENT ")) {
            events.push_back(line);
            while (events.size() > 6) events.pop_front();
            continue;
          }
          if (line == "# EOF") {
            // Frame complete: compute qps from the completed-counter delta,
            // then repaint (ANSI home+clear keeps it flicker-free enough).
            ++frame;
            const auto now = std::chrono::steady_clock::now();
            const double dt =
                std::chrono::duration<double>(now - last_time).count();
            const double completed = model.get("lama_completed_total");
            double qps = -1.0;
            if (last_completed >= 0.0 && dt > 0.0) {
              qps = (completed - last_completed) / dt;
            }
            last_completed = completed;
            last_time = now;
            std::fputs("\x1b[H\x1b[2J", stdout);
            std::fputs(
                render_top_frame(model, connect.address, frame, qps, events)
                    .c_str(),
                stdout);
            std::fflush(stdout);
            model = TopModel{};
            continue;
          }
          PromSample sample;
          if (parse_prom_line(line, sample)) model.ingest(sample);
        }
        return g_signal == 0;
      },
      error);
  if (!ended && g_signal == 0) {
    std::fprintf(stderr, "lamactl: watch ended: %s\n", error.c_str());
    return 1;
  }
  std::fputs("\n", stdout);
  return 0;
}

// `lamactl topology [--json]`: one-shot discovery of the machine lamactl is
// running on — the sysfs-parsed tree, counts, warnings, and the canonical
// fingerprint parity check against an equivalent synthetic description
// (auto-derived for uniform machines, or supplied with --parity). Exit 0
// when parity holds (or no description exists to compare), 1 on mismatch.
// --cpu-root/--node-root point at fixture snapshots for tests.
int run_topology(const std::vector<std::string>& args) {
  bool json = false;
  std::string parity_desc;
  SysfsPaths paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--parity") {
      parity_desc = need_value();
    } else if (arg == "--cpu-root") {
      paths.cpu_root = need_value();
    } else if (arg == "--node-root") {
      paths.node_root = need_value();
    } else {
      throw ParseError("unknown topology option: " + arg);
    }
  }

  const TopologyDiscovery d = discover_topology(paths);
  const std::uint64_t fp = canonical_fingerprint(d.topology);
  const std::string parity_against =
      parity_desc.empty() ? d.synthetic_equivalent : parity_desc;
  bool parity_checked = false;
  bool parity_ok = true;
  std::uint64_t synth_fp = 0;
  std::string synth_shape;
  if (!parity_against.empty()) {
    const NodeTopology synth = NodeTopology::synthetic(parity_against);
    synth_fp = canonical_fingerprint(synth);
    synth_shape = synth.shape_string();
    parity_checked = true;
    parity_ok = synth_fp == fp;
  }

  if (json) {
    std::ostringstream out;
    out << "{\"sockets\":" << d.sockets << ",\"numa_nodes\":" << d.numa_nodes
        << ",\"cores\":" << d.cores << ",\"pus\":" << d.pus
        << ",\"offline_pus\":" << d.offline_pus
        << ",\"smt\":" << (d.smt ? "true" : "false")
        << ",\"numa_level\":" << (d.numa_level ? "true" : "false")
        << ",\"synthetic_equivalent\":\"" << d.synthetic_equivalent
        << "\",\"canonical_fingerprint\":\"" << std::hex << fp << std::dec
        << "\"";
    if (parity_checked) {
      out << ",\"parity\":{\"against\":\"" << parity_against
          << "\",\"fingerprint\":\"" << std::hex << synth_fp << std::dec
          << "\",\"match\":" << (parity_ok ? "true" : "false") << "}";
    }
    out << ",\"warnings\":[";
    for (std::size_t i = 0; i < d.warnings.size(); ++i) {
      std::string escaped;
      for (const char c : d.warnings[i]) {
        if (c == '"' || c == '\\') escaped += '\\';
        escaped += c;
      }
      out << (i == 0 ? "" : ",") << "\"" << escaped << "\"";
    }
    out << "]}";
    std::printf("%s\n", out.str().c_str());
    return parity_ok ? 0 : 1;
  }

  std::printf("%s", d.topology.render().c_str());
  std::printf(
      "discovered %zu socket(s), %zu numa node(s), %zu core(s), %zu pu(s)"
      "%s%s\n",
      d.sockets, d.numa_nodes, d.cores, d.pus, d.smt ? ", smt" : "",
      d.offline_pus > 0 ? (", " + std::to_string(d.offline_pus) +
                           " offline pu(s)").c_str()
                        : "");
  for (const std::string& warning : d.warnings) {
    std::printf("warning: %s\n", warning.c_str());
  }
  if (!d.synthetic_equivalent.empty()) {
    std::printf("synthetic equivalent: %s\n", d.synthetic_equivalent.c_str());
  }
  std::printf("canonical fingerprint: %016llx\n",
              static_cast<unsigned long long>(fp));
  if (parity_checked) {
    if (parity_ok) {
      std::printf("parity: MATCH against \"%s\"\n", parity_against.c_str());
    } else {
      std::printf("parity: MISMATCH against \"%s\"\n", parity_against.c_str());
      std::printf("  discovered %s (fingerprint %016llx)\n",
                  d.topology.shape_string().c_str(),
                  static_cast<unsigned long long>(fp));
      std::printf("  synthetic  %s (fingerprint %016llx)\n",
                  synth_shape.c_str(),
                  static_cast<unsigned long long>(synth_fp));
    }
  }
  return parity_ok ? 0 : 1;
}

int run(const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::string pattern_spec;
  bool show_topo = false;
  std::vector<std::string> mpirun_args;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--pattern") {
      pattern_spec = need_value();
    } else if (arg == "--topo") {
      show_topo = true;
    } else {
      mpirun_args.push_back(arg);
    }
  }
  if (cluster_path.empty()) {
    throw ParseError("--cluster <file> is required");
  }

  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  if (show_topo) {
    for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
      std::printf("%s", cluster.node(i).topo.render().c_str());
    }
    return 0;
  }

  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));

  const PlacementSpec spec = parse_mpirun_options(mpirun_args);
  LaunchPlan plan = plan_job(alloc, JobSpec{}, spec);
  plan.launch(alloc);
  std::printf("CLI level %d, %zu processes on %zu nodes\n", spec.level,
              plan.procs().size(), alloc.num_nodes());
  std::printf("%s", plan.report_bindings(alloc).c_str());
  if (plan.mapping().pu_oversubscribed) {
    std::printf("warning: processing units are oversubscribed\n");
  }
  if (plan.mapping().slot_oversubscribed) {
    std::printf("warning: scheduler slots are oversubscribed\n");
  }

  if (!pattern_spec.empty()) {
    const TrafficPattern pattern = make_named_pattern(
        pattern_spec, static_cast<int>(plan.procs().size()));
    const CostReport r = evaluate_mapping(alloc, plan.mapping(), pattern,
                                          DistanceModel::commodity());
    TextTable table({"pattern", "total ms", "max-rank ms", "inter-node msgs",
                     "max NIC MB"});
    table.add_row({pattern.name, TextTable::cell(r.total_ns / 1e6, 3),
                   TextTable::cell(r.max_rank_ns / 1e6, 3),
                   TextTable::cell(r.inter_node_messages),
                   TextTable::cell(
                       static_cast<double>(r.max_nic_bytes) / 1e6, 2)});
    std::printf("\n%s", table.to_string().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (!args.empty() && args[0] == "serve") {
      return run_serve({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "query") {
      return run_query({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "mapbatch") {
      return run_mapbatch({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "optimize") {
      return run_optimize({args.begin() + 1, args.end()});
    }
    if (!args.empty() &&
        (args[0] == "offline" || args[0] == "online" || args[0] == "remap")) {
      return run_mutation(args[0], {args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "inject") {
      return run_inject({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "stats") {
      return run_stats({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "metrics") {
      return run_metrics({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "trace") {
      return run_trace({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "top") {
      return run_top({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "topology") {
      return run_topology({args.begin() + 1, args.end()});
    }
    return run(args);
  } catch (const lama::Error& e) {
    std::fprintf(stderr, "lamactl: %s\n", e.what());
    std::fprintf(
        stderr,
        "usage: lamactl --cluster <file> [--hostfile <file>] [--topo]\n"
        "               [mpirun options: -np N, --map-by lama:<layout>,\n"
        "                --bind-to <level>, --by-*, --npernode N, ...]\n"
        "               [--pattern <name>[:<bytes>]]\n"
        "       lamactl serve [--workers N] [--cache-shards N] [--capacity N]\n"
        "               [--max-queue N] [--max-inflight N] [--timeout-ms N]\n"
        "               [--retry-after-ms N] [--no-verify] [--stats]\n"
        "               [--flight-recorder N] [--trace-sample N]\n"
        "               [--trace-seed N] [--trace-dump <dir>]\n"
        "               [--trace-dump-cap N] [--no-tail]\n"
        "               [--tail-floor-ns N]  # adaptive tail-latency capture\n"
        "               [--slo verb=dur[@pct],...]  # e.g. query=2ms@0.999\n"
        "               [--state-dir <dir> [--snapshot-every N]\n"
        "                [--fsync-every N] [--no-prewarm] | --no-persist]\n"
        "               [--listen tcp:<host>:<port>|unix:<path>\n"
        "                [--max-connections N] [--shards N]\n"
        "                [--discover-topology] [--no-affinity]]\n"
        "               # epoll socket server; text and binary wire framings\n"
        "               # auto-detected per conn; --shards N runs N epoll\n"
        "               # loops behind one SO_REUSEPORT port (TCP, global\n"
        "               # connection cap); --discover-topology parses sysfs\n"
        "               # and LAMA maps the shard threads onto the machine\n"
        "               # --state-dir journals mutations and restores them\n"
        "               # on restart (--shards 1 only); SIGTERM/SIGINT drain\n"
        "       lamactl query --cluster <file> [--hostfile <file>] -np N\n"
        "               [--map-by <spec>] [--bind-to <level>] [--id <name>]\n"
        "               [--npernode N] [--timeout-ms N] [--stats]\n"
        "               [--exec [--retries N] [--backoff-ms N]\n"
        "                [--max-inflight N]]  # run in-process with retries\n"
        "               [--connect <addr> [--binary]]  # against a --listen\n"
        "               # server, reconnecting with capped backoff\n"
        "       lamactl mapbatch --cluster <file> -np N[,N...]\n"
        "               [--map-by <spec>] [--threads N] [--bind-to <level>]\n"
        "               [--npernode N] [--timeout-ms N] [--id <name>]\n"
        "               [--stats] [--exec [--retries N] [--backoff-ms N]\n"
        "                [--max-inflight N]]  # one MAPBATCH, a job per np\n"
        "               [--connect <addr> [--binary]]\n"
        "       lamactl optimize --cluster <file> [--hostfile <file>]\n"
        "               (-np N --pattern <name>[:<bytes>] | --matrix <file>)\n"
        "               [--budget N] [--passes N] [--timeout-ms N]\n"
        "               [--threads N] [--id <name>] [--stats]\n"
        "               [--exec [--workers N]]  # communication-aware search\n"
        "       lamactl offline|online --id <name> --node N [--pus N,N...]\n"
        "               [--exec --cluster <file> [--hostfile <file>]\n"
        "                [--retries N] [--backoff-ms N] [--max-inflight N]]\n"
        "       lamactl remap [--id <name>] [--timeout-ms N] [--exec ...]\n"
        "               # one-shot verbs; print the protocol line, --exec it\n"
        "               # with retries (exit 3 = still busy after retries),\n"
        "               # or --connect <addr> [--binary] a running server\n"
        "       lamactl inject --cluster <file> [--seed N] [--requests N]\n"
        "               [--node-deaths N] [--node-recoveries N]\n"
        "               [--pu-offlines N] [--malformed N] [--corruptions N]\n"
        "               [--stalls N] [--journal-fails N] [--fsync-stalls N]\n"
        "               [--corrupt-records N] [--recovery-kills N]\n"
        "               [--state-dir <dir>] [--max-inflight N]\n"
        "               [--timeout-ms N] [--flight-recorder N]\n"
        "               [--trace-sample N] [--trace-dump <dir>]\n"
        "               [--stats]          # seeded fault-injection replay\n"
        "       lamactl stats [--json]     # print the STATS protocol line\n"
        "       lamactl metrics [--json]   # print the METRICS protocol line\n"
        "       lamactl trace [<id>|last|errors]  # print the TRACE line\n"
        "               (each: --connect <addr> [--binary] queries a live\n"
        "                server; --exec --cluster <file> [--hostfile <file>]\n"
        "                [--requests N] runs a traced in-process workload;\n"
        "                trace --exec adds [--dump <dir>] and ends with a\n"
        "                corrupted-tree failure so a failure trace exists)\n"
        "       lamactl top --connect <addr> [--binary] [--interval-ms N]\n"
        "               [--once [--json]]  # live dashboard over the WATCH\n"
        "               # verb: per-verb SLO burn, stage latency heatmap,\n"
        "               # qps, cache hit ratios; --once --json for scripts\n"
        "       lamactl topology [--json] [--parity <synthetic-desc>]\n"
        "               [--cpu-root <dir>] [--node-root <dir>]\n"
        "               # discover this machine from sysfs: tree, counts,\n"
        "               # warnings, canonical-fingerprint parity vs an\n"
        "               # equivalent synthetic description (exit 1 on\n"
        "               # mismatch); roots override for fixture snapshots\n");
    return 1;
  }
}
