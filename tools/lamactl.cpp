// lamactl — command-line front end for the whole library: describe a
// cluster in a file, optionally select nodes with a hostfile, pass any
// mpirun-style placement options, and inspect the resulting plan; with
// --pattern, additionally price the mapping under a synthetic workload.
//
//   lamactl --cluster cluster.txt -np 24 --map-by lama:scbnh --bind-to core
//   lamactl --cluster cluster.txt --hostfile hosts.txt -np 8 --by-node
//   lamactl --cluster cluster.txt --topo
//   lamactl --cluster cluster.txt -np 32 --pattern ring:8192
//
// The `serve` and `query` subcommands speak the mapping service's
// line-oriented protocol (docs/service.md) over stdin/stdout:
//
//   lamactl query --cluster cluster.txt -np 8 --map-by lama:scbnh |
//     lamactl serve --workers 8 --stats
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "dur/state_store.hpp"
#include "obs/chrome.hpp"
#include "rte/runtime.hpp"
#include "sim/evaluator.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "svc/client.hpp"
#include "svc/event_loop.hpp"
#include "svc/fault_injector.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "tmatch/comm_matrix.hpp"

// Exit codes shared by the client-side subcommands: 0 success, 1 error,
// 2 failed fault-injection invariants, 3 still busy after retries exhausted
// (the caller should back off and try again later — distinct from a hard
// error so scripts can tell "overloaded" from "broken").
constexpr int kExitBusy = 3;

namespace {

using namespace lama;

// Set by SIGTERM/SIGINT: the serve loop notices, drains, and exits cleanly.
volatile std::sig_atomic_t g_signal = 0;

void handle_shutdown_signal(int sig) { g_signal = sig; }

// Install without SA_RESTART so a signal interrupts the blocking stdin read
// (getline fails with EINTR) instead of silently restarting it — the serve
// loop must wake up to drain.
void install_shutdown_signals() {
  struct sigaction sa = {};
  sa.sa_handler = handle_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open file: " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Writes failed traces to <dir>/trace-<id>.json as they happen (the flight
// recorder's dump sink). The directory must already exist.
void install_trace_dump(svc::MappingService& service, const std::string& dir) {
  if (dir.empty()) return;
  if (service.tracer() == nullptr) {
    throw ParseError("--trace-dump requires --flight-recorder > 0");
  }
  service.tracer()->recorder().set_dump_sink([dir](const obs::Trace& trace) {
    const std::string path =
        dir + "/trace-" + std::to_string(trace.id) + ".json";
    std::ofstream out(path);
    if (out) out << obs::to_chrome_json(trace) << "\n";
  });
}

// `lamactl serve`: run the mapping service over stdin/stdout. With
// --state-dir, state mutations journal to disk and a restart restores them
// (docs/resilience.md); SIGTERM/SIGINT drain gracefully — in-flight work
// finishes or is shed with retry-after, the journal is flushed, a final
// snapshot compacts the state, and the process exits 0.
int run_serve(const std::vector<std::string>& args) {
  svc::ServiceConfig config;
  svc::NetConfig net_config;
  std::string listen_addr;
  bool stats = false;
  std::string trace_dump;
  dur::DurConfig dur_config;
  bool persist = true;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--listen") {
      listen_addr = need_value();
    } else if (arg == "--max-connections") {
      net_config.max_connections =
          parse_size(need_value(), "serve max-connections");
    } else if (arg == "--state-dir") {
      dur_config.dir = need_value();
    } else if (arg == "--no-persist") {
      persist = false;
    } else if (arg == "--snapshot-every") {
      dur_config.snapshot_every =
          parse_size(need_value(), "serve snapshot-every");
    } else if (arg == "--fsync-every") {
      dur_config.fsync_every = parse_size(need_value(), "serve fsync-every");
      if (dur_config.fsync_every == 0) dur_config.fsync_every = 1;
    } else if (arg == "--no-prewarm") {
      dur_config.prewarm = false;
    } else if (arg == "--workers") {
      config.workers = parse_size(need_value(), "serve workers");
    } else if (arg == "--shards") {
      config.cache_shards = parse_size(need_value(), "serve shards");
    } else if (arg == "--capacity") {
      config.shard_capacity = parse_size(need_value(), "serve capacity");
    } else if (arg == "--max-queue") {
      config.max_queue = parse_size(need_value(), "serve max-queue");
    } else if (arg == "--max-inflight") {
      config.max_inflight = parse_size(need_value(), "serve max-inflight");
    } else if (arg == "--timeout-ms") {
      config.default_timeout_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), "serve timeout-ms"));
    } else if (arg == "--retry-after-ms") {
      config.retry_after_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), "serve retry-after-ms"));
    } else if (arg == "--no-verify") {
      config.verify_trees = false;
    } else if (arg == "--flight-recorder") {
      config.flight_recorder =
          parse_size(need_value(), "serve flight-recorder");
    } else if (arg == "--trace-sample") {
      config.trace_sample = static_cast<std::uint32_t>(
          parse_size(need_value(), "serve trace-sample"));
    } else if (arg == "--trace-seed") {
      config.trace_seed = parse_size(need_value(), "serve trace-seed");
    } else if (arg == "--trace-dump") {
      trace_dump = need_value();
    } else if (arg == "--stats") {
      stats = true;
    } else {
      throw ParseError("unknown serve option: " + arg);
    }
  }
  svc::MappingService service(config);
  install_trace_dump(service, trace_dump);
  install_shutdown_signals();

  std::unique_ptr<dur::StateStore> store;
  svc::ProtocolSession session(service);
  if (!dur_config.dir.empty() && persist) {
    store = std::make_unique<dur::StateStore>(dur_config);
    service.attach_durability(store.get());
    const svc::ProtocolSession::RecoveryInfo info =
        session.restore_from(*store);
    for (const std::string& warning : info.warnings) {
      std::fprintf(stderr, "lamactl: recovery: %s\n", warning.c_str());
    }
  }

  // The stop predicate begins the drain the moment a shutdown signal lands:
  // admission sheds new work with retry-after while reads keep serving, and
  // the loop exits (the signal also breaks the blocking getline / the
  // epoll_wait poll).
  const auto stop = [&service] {
    if (g_signal != 0 && !service.draining()) service.begin_drain();
    return service.draining();
  };
  if (!listen_addr.empty()) {
    // Socket mode: the epoll event loop serves many keep-alive connections,
    // text or binary framing per connection (docs/service.md). The drain
    // closes the acceptor, flushes in-flight connections, then falls
    // through to the snapshot below.
    svc::EventLoopServer server(service, session, net_config);
    server.listen(listen_addr);
    std::fprintf(stderr, "lamactl: listening on %s\n",
                 server.bound_address().to_string().c_str());
    server.run(stop);
    if (stats) std::fputs(service.render_stats().c_str(), stderr);
  } else {
    svc::serve(std::cin, std::cout, session, service, stats, stop);
  }

  // Shutdown — signal-driven or clean EOF/QUIT: flush every batched journal
  // record, then compact the state into a final snapshot so the next start
  // restores without replay.
  service.begin_drain();
  if (store != nullptr) {
    store->flush();
    store->write_snapshot(session.snapshot_lines(), session.state_digest());
    if (g_signal != 0) {
      std::fprintf(stderr,
                   "lamactl: drained on signal %d (journal flushed, "
                   "snapshot seq=%llu)\n",
                   static_cast<int>(g_signal),
                   static_cast<unsigned long long>(store->snapshot_seq()));
    }
  }
  return 0;
}

// `lamactl query`: print the protocol lines for one mapping query, ready to
// pipe into `lamactl serve`. With --exec, run the query against an
// in-process service instead, through the retrying client (--retries,
// --backoff-ms) — busy responses back off and retry like a real client.
int run_query(const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::string alloc_id = "a0";
  std::string spec = "lama";
  std::size_t np = 0;
  std::string options;
  bool stats = false;
  bool exec = false;
  svc::RetryPolicy retry;
  svc::ServiceConfig exec_config;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--id") {
      alloc_id = need_value();
    } else if (arg == "-np" || arg == "--np") {
      np = parse_size(need_value(), "query process count");
    } else if (arg == "--map-by") {
      spec = need_value();
    } else if (arg == "--bind-to") {
      options += (options.empty() ? "" : " ") + ("bind=" + need_value());
    } else if (arg == "--npernode") {
      options += (options.empty() ? "" : " ") + ("npernode=" + need_value());
    } else if (arg == "--oversubscribe") {
      options += (options.empty() ? "" : " ") + std::string("oversub=1");
    } else if (arg == "--no-oversubscribe") {
      options += (options.empty() ? "" : " ") + std::string("oversub=0");
    } else if (arg == "--timeout-ms") {
      options += (options.empty() ? "" : " ") + ("timeout=" + need_value());
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--exec") {
      exec = true;
    } else if (arg == "--retries") {
      retry.max_attempts = parse_size(need_value(), "query retries");
    } else if (arg == "--backoff-ms") {
      retry.base_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), "query backoff-ms"));
    } else if (arg == "--max-inflight") {
      exec_config.max_inflight =
          parse_size(need_value(), "query max-inflight");
    } else {
      throw ParseError("unknown query option: " + arg);
    }
  }
  if (cluster_path.empty()) throw ParseError("--cluster <file> is required");
  if (np == 0) throw ParseError("-np <count> is required");

  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));
  if (!connect.address.empty()) {
    // Run the query against a live `lamactl serve --listen` server: the
    // socket client reconnects with backoff, the retrying client handles
    // busy responses — exit 3 when still shed after retries, like --exec.
    svc::SocketClient socket(connect);
    svc::QueryClient client(socket.transport(), retry);
    const svc::QueryResult result =
        client.query(alloc, alloc_id, np, spec, options);
    std::printf("%s\n", result.response.c_str());
    if (result.attempts > 1 || socket.reconnects() > 0) {
      std::printf("# attempts=%zu backoff-ms=%llu reconnects=%zu\n",
                  result.attempts,
                  static_cast<unsigned long long>(result.total_backoff_ms),
                  socket.reconnects());
    }
    if (stats) {
      for (const std::string& line : socket.request("STATS")) {
        std::printf("%s\n", line.c_str());
      }
    }
    if (result.gave_up_busy) return kExitBusy;
    return result.ok() ? 0 : 1;
  }
  if (exec) {
    svc::MappingService service(exec_config);
    svc::ProtocolSession session(service);
    std::istringstream no_more;
    svc::QueryClient client(
        [&](const std::string& line) {
          std::string response = session.execute(line, no_more);
          if (!response.empty() && response.back() == '\n') {
            response.pop_back();
          }
          return response;
        },
        retry);
    const svc::QueryResult result =
        client.query(alloc, alloc_id, np, spec, options);
    std::printf("%s\n", result.response.c_str());
    if (result.attempts > 1) {
      std::printf("# attempts=%zu backoff-ms=%llu\n", result.attempts,
                  static_cast<unsigned long long>(result.total_backoff_ms));
    }
    if (stats) {
      std::printf("%s", service.render_stats().c_str());
    }
    if (result.gave_up_busy) return kExitBusy;
    return result.ok() ? 0 : 1;
  }
  std::string out = svc::format_query(alloc, alloc_id, np, spec, options);
  if (stats) out += "STATS\n";
  std::fputs(out.c_str(), stdout);
  return 0;
}

// `lamactl mapbatch`: one MAPBATCH request carrying a job per -np value.
// Default prints the protocol lines (NODE definitions + the MAPBATCH line),
// ready to pipe into `lamactl serve`; --exec runs them against an
// in-process service through the batch-aware retrying client, which
// re-sends only the jobs the server shed.
int run_mapbatch(const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::string alloc_id = "a0";
  std::string spec = "lama";
  std::vector<std::size_t> np_list;
  std::vector<std::string> options;
  bool stats = false;
  bool exec = false;
  svc::RetryPolicy retry;
  svc::ServiceConfig exec_config;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--id") {
      alloc_id = need_value();
    } else if (arg == "-np" || arg == "--np") {
      // Comma-separated: one batch job per count.
      const std::string list = need_value();
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const auto comma = list.find(',', pos);
        np_list.push_back(parse_size(
            list.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos),
            "mapbatch process count"));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--map-by") {
      spec = need_value();
    } else if (arg == "--bind-to") {
      options.push_back("bind=" + need_value());
    } else if (arg == "--npernode") {
      options.push_back("npernode=" + need_value());
    } else if (arg == "--threads") {
      options.push_back("threads=" + need_value());
    } else if (arg == "--oversubscribe") {
      options.push_back("oversub=1");
    } else if (arg == "--no-oversubscribe") {
      options.push_back("oversub=0");
    } else if (arg == "--timeout-ms") {
      options.push_back("timeout=" + need_value());
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--exec") {
      exec = true;
    } else if (arg == "--retries") {
      retry.max_attempts = parse_size(need_value(), "mapbatch retries");
    } else if (arg == "--backoff-ms") {
      retry.base_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), "mapbatch backoff-ms"));
    } else if (arg == "--max-inflight") {
      exec_config.max_inflight =
          parse_size(need_value(), "mapbatch max-inflight");
    } else {
      throw ParseError("unknown mapbatch option: " + arg);
    }
  }
  if (cluster_path.empty()) throw ParseError("--cluster <file> is required");
  if (np_list.empty()) throw ParseError("-np <count[,count...]> is required");

  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));
  std::vector<svc::BatchJob> jobs;
  jobs.reserve(np_list.size());
  for (const std::size_t np : np_list) {
    jobs.push_back(svc::BatchJob{alloc_id, np, spec, options});
  }
  // The NODE definitions, shared by both modes (format_query minus its MAP
  // line, which the batch replaces).
  std::string node_lines = svc::format_query(alloc, alloc_id, 1, spec);
  node_lines.erase(node_lines.rfind("MAP "));

  if (!connect.address.empty()) {
    svc::SocketClient socket(connect);
    // NODE definitions first (never shed), then the retried MAPBATCH.
    std::size_t at = 0;
    while (at < node_lines.size()) {
      const auto nl = node_lines.find('\n', at);
      const std::vector<std::string> reply =
          socket.request(node_lines.substr(at, nl - at));
      if (reply.empty() || !starts_with(reply.front(), "OK")) {
        std::printf("%s\n",
                    reply.empty() ? "ERR empty response"
                                  : reply.front().c_str());
        return 1;
      }
      at = nl == std::string::npos ? node_lines.size() : nl + 1;
    }
    svc::QueryClient client([](const std::string&) { return std::string(); },
                            retry);
    const svc::BatchResult result =
        client.map_batch(jobs, socket.multi_transport());
    for (std::size_t i = 0; i < result.responses.size(); ++i) {
      std::printf("JOB %zu %s\n", i, result.responses[i].c_str());
    }
    std::printf("%s\n", result.trailer.c_str());
    if (result.attempts > 1 || socket.reconnects() > 0) {
      std::printf("# attempts=%zu backoff-ms=%llu reconnects=%zu\n",
                  result.attempts,
                  static_cast<unsigned long long>(result.total_backoff_ms),
                  socket.reconnects());
    }
    if (stats) {
      for (const std::string& line : socket.request("STATS")) {
        std::printf("%s\n", line.c_str());
      }
    }
    if (result.gave_up_busy) return kExitBusy;
    return result.ok() ? 0 : 1;
  }

  if (!exec) {
    std::fputs(node_lines.c_str(), stdout);
    std::printf("%s\n", svc::format_mapbatch(jobs).c_str());
    if (stats) std::printf("STATS\n");
    return 0;
  }

  svc::MappingService service(exec_config);
  svc::ProtocolSession session(service);
  std::istringstream no_more;
  auto execute = [&](const std::string& line) {
    return session.execute(line, no_more);
  };
  std::size_t pos = 0;
  while (pos < node_lines.size()) {
    const auto nl = node_lines.find('\n', pos);
    execute(node_lines.substr(pos, nl - pos));
    pos = nl == std::string::npos ? node_lines.size() : nl + 1;
  }
  svc::QueryClient client([](const std::string&) { return std::string(); },
                          retry);
  const svc::BatchResult result =
      client.map_batch(jobs, [&](const std::string& line) {
        std::vector<std::string> lines;
        const std::string text = execute(line);
        std::size_t at = 0;
        while (at < text.size()) {
          const auto nl = text.find('\n', at);
          lines.push_back(text.substr(at, nl - at));
          at = nl == std::string::npos ? text.size() : nl + 1;
        }
        return lines;
      });
  for (std::size_t i = 0; i < result.responses.size(); ++i) {
    std::printf("JOB %zu %s\n", i, result.responses[i].c_str());
  }
  std::printf("%s\n", result.trailer.c_str());
  if (result.attempts > 1) {
    std::printf("# attempts=%zu backoff-ms=%llu\n", result.attempts,
                static_cast<unsigned long long>(result.total_backoff_ms));
  }
  if (stats) {
    std::printf("%s", service.render_stats().c_str());
  }
  if (result.gave_up_busy) return kExitBusy;
  return result.ok() ? 0 : 1;
}

// `lamactl optimize`: one OPTIMIZE request — search the placement space for
// np processes against a named pattern or a communication-matrix file.
// Default prints the protocol lines (NODE definitions, the OPTIMIZE line,
// and any framed matrix payload) ready to pipe into `lamactl serve`; --exec
// runs the request against an in-process service and prints the response.
int run_optimize(const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::string alloc_id = "a0";
  std::string pattern_spec;
  std::string matrix_path;
  std::size_t np = 0;
  std::string options;
  bool stats = false;
  bool exec = false;
  svc::ServiceConfig exec_config;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--id") {
      alloc_id = need_value();
    } else if (arg == "-np" || arg == "--np") {
      np = parse_size(need_value(), "optimize process count");
    } else if (arg == "--pattern") {
      pattern_spec = need_value();
    } else if (arg == "--matrix") {
      matrix_path = need_value();
    } else if (arg == "--budget") {
      options += " budget=" + need_value();
    } else if (arg == "--passes") {
      options += " passes=" + need_value();
    } else if (arg == "--timeout-ms") {
      options += " timeout=" + need_value();
    } else if (arg == "--threads") {
      options += " threads=" + need_value();
    } else if (arg == "--workers") {
      exec_config.workers = parse_size(need_value(), "optimize workers");
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--exec") {
      exec = true;
    } else {
      throw ParseError("unknown optimize option: " + arg);
    }
  }
  if (cluster_path.empty()) throw ParseError("--cluster <file> is required");
  if (pattern_spec.empty() == matrix_path.empty()) {
    throw ParseError("exactly one of --pattern or --matrix is required");
  }

  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));

  // The command line plus any framed payload. A matrix file carries its own
  // "np <N>" header (tmatch/comm_matrix.hpp); the wire form implies np from
  // the command, so the header is stripped and -np may be omitted.
  std::string command = "OPTIMIZE " + alloc_id + " ";
  std::string payload;
  if (!pattern_spec.empty()) {
    if (np == 0) throw ParseError("-np <count> is required with --pattern");
    command += std::to_string(np) + " pattern=" + pattern_spec;
  } else {
    const CommMatrix matrix = CommMatrix::parse(read_file(matrix_path));
    if (np == 0) {
      np = static_cast<std::size_t>(matrix.np());
    } else if (np != static_cast<std::size_t>(matrix.np())) {
      throw ParseError("-np disagrees with the matrix file's np header");
    }
    std::string body = matrix.serialize();
    body.erase(0, body.find('\n') + 1);  // strip the "np <N>" header line
    std::size_t lines = 0;
    for (const char c : body) lines += c == '\n' ? 1 : 0;
    command += std::to_string(np) + " matrix=" + std::to_string(lines);
    payload = std::move(body);
  }
  command += options;

  // The NODE definitions (format_query minus its MAP line).
  std::string node_lines = svc::format_query(alloc, alloc_id, 1, "lama");
  node_lines.erase(node_lines.rfind("MAP "));

  if (!exec) {
    std::fputs(node_lines.c_str(), stdout);
    std::printf("%s\n", command.c_str());
    std::fputs(payload.c_str(), stdout);
    if (stats) std::printf("STATS\n");
    return 0;
  }

  svc::MappingService service(exec_config);
  svc::ProtocolSession session(service);
  std::istringstream no_more;
  std::size_t pos = 0;
  while (pos < node_lines.size()) {
    const auto nl = node_lines.find('\n', pos);
    session.execute(node_lines.substr(pos, nl - pos), no_more);
    pos = nl == std::string::npos ? node_lines.size() : nl + 1;
  }
  std::istringstream more(payload);
  const std::string response = session.execute(command, more);
  std::fputs(response.c_str(), stdout);
  if (stats) {
    std::printf("%s", service.render_stats().c_str());
  }
  return starts_with(response, "OK") ? 0 : 1;
}

// `lamactl offline|online|remap`: one-shot control-plane mutations. Default
// prints the protocol line, ready to pipe into a running `lamactl serve`;
// --exec runs it against an in-process service (NODE lines from --cluster
// first) through the retrying client. Exit codes: 0 OK, 1 error, 3 when the
// server still answers "ERR busy retry-after=<ms>" after retries exhausted.
int run_mutation(const std::string& verb, const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::string alloc_id = "a0";
  std::optional<std::size_t> node;
  std::vector<std::string> pus;
  std::string timeout_ms;
  bool exec = false;
  svc::RetryPolicy retry;
  svc::ServiceConfig exec_config;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--id") {
      alloc_id = need_value();
    } else if (arg == "--node" && verb != "remap") {
      node = parse_size(need_value(), verb + " node index");
    } else if (arg == "--pus" && verb != "remap") {
      // Comma-separated PU indices; validated server-side against the node.
      for (const std::string& pu : split(need_value(), ',')) {
        parse_size(pu, verb + " pu index");
        pus.push_back(pu);
      }
    } else if (arg == "--timeout-ms" && verb == "remap") {
      timeout_ms = need_value();
    } else if (arg == "--exec") {
      exec = true;
    } else if (arg == "--retries") {
      retry.max_attempts = parse_size(need_value(), verb + " retries");
    } else if (arg == "--backoff-ms") {
      retry.base_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), verb + " backoff-ms"));
    } else if (arg == "--max-inflight") {
      exec_config.max_inflight =
          parse_size(need_value(), verb + " max-inflight");
    } else {
      throw ParseError("unknown " + verb + " option: " + arg);
    }
  }

  std::string command;
  if (verb == "remap") {
    command = "REMAP " + alloc_id;
    if (!timeout_ms.empty()) command += " timeout=" + timeout_ms;
  } else {
    if (!node.has_value()) {
      throw ParseError("--node <index> is required for " + verb);
    }
    command = (verb == "offline" ? "OFFLINE " : "ONLINE ") + alloc_id + " " +
              std::to_string(*node);
    for (const std::string& pu : pus) command += " " + pu;
  }

  if (!connect.address.empty()) {
    // A live server already holds the allocation state, so the mutation goes
    // straight over the socket — no --cluster needed.
    svc::SocketClient socket(connect);
    svc::QueryClient client(socket.transport(), retry);
    const svc::QueryResult result = client.send(command);
    std::printf("%s\n", result.response.c_str());
    if (result.attempts > 1 || socket.reconnects() > 0) {
      std::printf("# attempts=%zu backoff-ms=%llu reconnects=%zu\n",
                  result.attempts,
                  static_cast<unsigned long long>(result.total_backoff_ms),
                  socket.reconnects());
    }
    if (result.gave_up_busy) return kExitBusy;
    return result.ok() ? 0 : 1;
  }

  if (!exec) {
    std::printf("%s\n", command.c_str());
    return 0;
  }
  if (cluster_path.empty()) {
    throw ParseError("--exec needs --cluster <file>");
  }
  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));

  svc::MappingService service(exec_config);
  svc::ProtocolSession session(service);
  std::istringstream no_more;
  std::string node_lines = svc::format_query(alloc, alloc_id, 1, "lama");
  node_lines.erase(node_lines.rfind("MAP "));
  std::size_t pos = 0;
  while (pos < node_lines.size()) {
    const auto nl = node_lines.find('\n', pos);
    session.execute(node_lines.substr(pos, nl - pos), no_more);
    pos = nl == std::string::npos ? node_lines.size() : nl + 1;
  }
  // REMAP needs a baseline mapping to re-place.
  if (verb == "remap") {
    session.execute("MAP " + alloc_id + " 2 lama", no_more);
  }
  svc::QueryClient client(
      [&](const std::string& line) {
        std::string response = session.execute(line, no_more);
        if (!response.empty() && response.back() == '\n') response.pop_back();
        return response;
      },
      retry);
  const svc::QueryResult result = client.send(command);
  std::printf("%s\n", result.response.c_str());
  if (result.attempts > 1) {
    std::printf("# attempts=%zu backoff-ms=%llu\n", result.attempts,
                static_cast<unsigned long long>(result.total_backoff_ms));
  }
  if (result.gave_up_busy) return kExitBusy;
  return result.ok() ? 0 : 1;
}

// `lamactl inject`: replay a seeded fault schedule against an in-process
// service and report whether the resilience invariants held.
int run_inject(const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::uint64_t seed = 42;
  std::size_t requests = 200;
  svc::FaultMix mix;
  svc::ServiceConfig config;
  config.workers = 0;  // deterministic by default; faults are interleaved
  bool stats = false;
  std::string trace_dump;
  std::string state_dir;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--seed") {
      seed = parse_size(need_value(), "inject seed");
    } else if (arg == "--requests") {
      requests = parse_size(need_value(), "inject requests");
    } else if (arg == "--node-deaths") {
      mix.node_deaths = parse_size(need_value(), "inject node-deaths");
    } else if (arg == "--node-recoveries") {
      mix.node_recoveries = parse_size(need_value(), "inject node-recoveries");
    } else if (arg == "--pu-offlines") {
      mix.pu_offlines = parse_size(need_value(), "inject pu-offlines");
    } else if (arg == "--malformed") {
      mix.malformed = parse_size(need_value(), "inject malformed");
    } else if (arg == "--corruptions") {
      mix.tree_corruptions = parse_size(need_value(), "inject corruptions");
    } else if (arg == "--stalls") {
      mix.worker_stalls = parse_size(need_value(), "inject stalls");
    } else if (arg == "--journal-fails") {
      mix.journal_write_fails = parse_size(need_value(), "inject journal-fails");
    } else if (arg == "--fsync-stalls") {
      mix.fsync_stalls = parse_size(need_value(), "inject fsync-stalls");
    } else if (arg == "--corrupt-records") {
      mix.corrupt_records = parse_size(need_value(), "inject corrupt-records");
    } else if (arg == "--recovery-kills") {
      mix.recovery_kills = parse_size(need_value(), "inject recovery-kills");
    } else if (arg == "--state-dir") {
      state_dir = need_value();
    } else if (arg == "--max-inflight") {
      config.max_inflight = parse_size(need_value(), "inject max-inflight");
    } else if (arg == "--timeout-ms") {
      config.default_timeout_ms = static_cast<std::uint32_t>(
          parse_size(need_value(), "inject timeout-ms"));
    } else if (arg == "--flight-recorder") {
      config.flight_recorder =
          parse_size(need_value(), "inject flight-recorder");
    } else if (arg == "--trace-sample") {
      config.trace_sample = static_cast<std::uint32_t>(
          parse_size(need_value(), "inject trace-sample"));
    } else if (arg == "--trace-dump") {
      trace_dump = need_value();
    } else if (arg == "--stats") {
      stats = true;
    } else {
      throw ParseError("unknown inject option: " + arg);
    }
  }
  if (cluster_path.empty()) throw ParseError("--cluster <file> is required");

  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));
  const svc::FaultPlan plan =
      svc::FaultPlan::random(seed, requests, mix, alloc);
  svc::MappingService service(config);
  install_trace_dump(service, trace_dump);
  // With --state-dir the injector's session journals its mutations, which
  // the durability fault classes (--journal-fails, --fsync-stalls,
  // --corrupt-records, --recovery-kills) act on.
  std::unique_ptr<dur::StateStore> store;
  if (!state_dir.empty()) {
    dur::DurConfig dur_config;
    dur_config.dir = state_dir;
    store = std::make_unique<dur::StateStore>(dur_config);
    service.attach_durability(store.get());
  }
  const svc::InjectionOutcome outcome =
      svc::run_fault_injection(service, alloc, plan);
  std::printf("seed %llu: %s", static_cast<unsigned long long>(seed),
              outcome.report().c_str());
  if (stats) {
    std::printf("%s", service.render_stats().c_str());
  }
  return outcome.passed() ? 0 : 2;
}

// Shared by the observability subcommands' --exec mode: a traced in-process
// service warmed by `requests` lama MAPs (sampling 1/1 so every trace is
// retained), optionally ending with a corrupted-tree request so the flight
// recorder holds a real failure trace.
std::unique_ptr<svc::MappingService> run_obs_workload(
    const std::string& cluster_path, const std::string& hostfile_path,
    std::size_t requests, bool corrupt) {
  if (cluster_path.empty()) {
    throw ParseError("--exec needs --cluster <file>");
  }
  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));
  svc::ServiceConfig config;
  config.workers = 0;
  config.flight_recorder = 32;
  config.trace_sample = 1;
  auto service = std::make_unique<svc::MappingService>(config);
  const svc::InternedAlloc interned = service->intern(alloc);
  svc::MapRequest request;
  request.alloc = interned;
  request.opts.allow_oversubscribe = true;
  for (std::size_t i = 0; i < requests; ++i) {
    request.opts.np = 1 + i % 4;
    service->map(request);
  }
  if (corrupt) {
    // Poison every cached tree, then hit the cache: the integrity check
    // rejects it and the request degrades — a guaranteed failure trace.
    service->corrupt_cached_trees_for_testing();
    request.opts.np = 2;
    service->map(request);
  }
  return service;
}

// `lamactl stats [--json]`: print the STATS protocol line for piping into a
// server; with --exec, run a small workload in process and print its stats.
int run_stats(const std::vector<std::string>& args) {
  bool json = false, exec = false;
  std::string cluster_path, hostfile_path;
  std::size_t requests = 16;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--exec") {
      exec = true;
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--requests") {
      requests = parse_size(need_value(), "stats requests");
    } else {
      throw ParseError("unknown stats option: " + arg);
    }
  }
  if (!connect.address.empty()) {
    svc::SocketClient socket(connect);
    bool ok = true;
    for (const std::string& line :
         socket.request(json ? "STATS json" : "STATS")) {
      std::printf("%s\n", line.c_str());
      if (starts_with(line, "ERR")) ok = false;
    }
    return ok ? 0 : 1;
  }
  if (!exec) {
    std::printf(json ? "STATS json\n" : "STATS\n");
    return 0;
  }
  const auto service =
      run_obs_workload(cluster_path, hostfile_path, requests, false);
  if (json) {
    std::printf("%s\n", service->metrics_snapshot().to_json().c_str());
  } else {
    std::printf("%s", service->render_stats().c_str());
  }
  return 0;
}

// `lamactl metrics [--json]`: print the METRICS protocol line for piping;
// with --exec, run a workload and print the Prometheus (or JSON) exposition.
int run_metrics(const std::vector<std::string>& args) {
  bool json = false, exec = false;
  std::string cluster_path, hostfile_path;
  std::size_t requests = 16;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--exec") {
      exec = true;
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--requests") {
      requests = parse_size(need_value(), "metrics requests");
    } else {
      throw ParseError("unknown metrics option: " + arg);
    }
  }
  if (!connect.address.empty()) {
    svc::SocketClient socket(connect);
    bool ok = true;
    for (const std::string& line :
         socket.request(json ? "METRICS json" : "METRICS")) {
      std::printf("%s\n", line.c_str());
      if (starts_with(line, "ERR")) ok = false;
    }
    return ok ? 0 : 1;
  }
  if (!exec) {
    std::printf(json ? "METRICS json\n" : "METRICS\n");
    return 0;
  }
  const auto service =
      run_obs_workload(cluster_path, hostfile_path, requests, false);
  if (json) {
    std::printf("%s\n", service->metrics_snapshot().to_json().c_str());
  } else {
    std::printf("%s", service->metrics_snapshot().to_prometheus().c_str());
  }
  return 0;
}

// `lamactl trace [<id>|last|errors]`: print the TRACE protocol line for
// piping; with --exec, run a workload that includes one corrupted-tree
// failure and print (or --dump) the selected trace as Chrome trace-event
// JSON, loadable in chrome://tracing or Perfetto.
int run_trace(const std::vector<std::string>& args) {
  std::string selector = "last";
  bool exec = false;
  std::string cluster_path, hostfile_path, dump_dir;
  std::size_t requests = 16;
  svc::ConnectConfig connect;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--exec") {
      exec = true;
    } else if (arg == "--connect") {
      connect.address = need_value();
    } else if (arg == "--binary") {
      connect.binary = true;
    } else if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--requests") {
      requests = parse_size(need_value(), "trace requests");
    } else if (arg == "--dump") {
      dump_dir = need_value();
    } else if (!arg.empty() && arg[0] != '-') {
      selector = arg;
    } else {
      throw ParseError("unknown trace option: " + arg);
    }
  }
  if (!connect.address.empty()) {
    svc::SocketClient socket(connect);
    bool ok = true;
    for (const std::string& line : socket.request("TRACE " + selector)) {
      std::printf("%s\n", line.c_str());
      if (starts_with(line, "ERR")) ok = false;
    }
    return ok ? 0 : 1;
  }
  if (!exec) {
    std::printf("TRACE %s\n", selector.c_str());
    return 0;
  }
  const auto service =
      run_obs_workload(cluster_path, hostfile_path, requests, true);
  const obs::FlightRecorder& recorder = service->tracer()->recorder();
  std::optional<obs::Trace> trace;
  if (selector == "last") {
    trace = recorder.last();
  } else if (selector == "errors") {
    trace = recorder.last_failure();
  } else {
    trace = recorder.by_id(parse_size(selector, "trace id"));
  }
  if (!trace.has_value()) {
    throw ParseError("no retained trace for '" + selector + "'");
  }
  const std::string chrome = obs::to_chrome_json(*trace);
  if (!dump_dir.empty()) {
    const std::string path =
        dump_dir + "/trace-" + std::to_string(trace->id) + ".json";
    std::ofstream out(path);
    if (!out) throw ParseError("cannot write trace dump: " + path);
    out << chrome << "\n";
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::printf("%s\n", chrome.c_str());
  }
  return 0;
}

int run(const std::vector<std::string>& args) {
  std::string cluster_path;
  std::string hostfile_path;
  std::string pattern_spec;
  bool show_topo = false;
  std::vector<std::string> mpirun_args;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto need_value = [&] {
      if (i + 1 >= args.size()) {
        throw ParseError("option " + arg + " requires a value");
      }
      return args[++i];
    };
    if (arg == "--cluster") {
      cluster_path = need_value();
    } else if (arg == "--hostfile") {
      hostfile_path = need_value();
    } else if (arg == "--pattern") {
      pattern_spec = need_value();
    } else if (arg == "--topo") {
      show_topo = true;
    } else {
      mpirun_args.push_back(arg);
    }
  }
  if (cluster_path.empty()) {
    throw ParseError("--cluster <file> is required");
  }

  const Cluster cluster = parse_cluster_file(read_file(cluster_path));
  if (show_topo) {
    for (std::size_t i = 0; i < cluster.num_nodes(); ++i) {
      std::printf("%s", cluster.node(i).topo.render().c_str());
    }
    return 0;
  }

  const Allocation alloc =
      hostfile_path.empty()
          ? allocate_all(cluster)
          : parse_hostfile(cluster, read_file(hostfile_path));

  const PlacementSpec spec = parse_mpirun_options(mpirun_args);
  LaunchPlan plan = plan_job(alloc, JobSpec{}, spec);
  plan.launch(alloc);
  std::printf("CLI level %d, %zu processes on %zu nodes\n", spec.level,
              plan.procs().size(), alloc.num_nodes());
  std::printf("%s", plan.report_bindings(alloc).c_str());
  if (plan.mapping().pu_oversubscribed) {
    std::printf("warning: processing units are oversubscribed\n");
  }
  if (plan.mapping().slot_oversubscribed) {
    std::printf("warning: scheduler slots are oversubscribed\n");
  }

  if (!pattern_spec.empty()) {
    const TrafficPattern pattern = make_named_pattern(
        pattern_spec, static_cast<int>(plan.procs().size()));
    const CostReport r = evaluate_mapping(alloc, plan.mapping(), pattern,
                                          DistanceModel::commodity());
    TextTable table({"pattern", "total ms", "max-rank ms", "inter-node msgs",
                     "max NIC MB"});
    table.add_row({pattern.name, TextTable::cell(r.total_ns / 1e6, 3),
                   TextTable::cell(r.max_rank_ns / 1e6, 3),
                   TextTable::cell(r.inter_node_messages),
                   TextTable::cell(
                       static_cast<double>(r.max_nic_bytes) / 1e6, 2)});
    std::printf("\n%s", table.to_string().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (!args.empty() && args[0] == "serve") {
      return run_serve({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "query") {
      return run_query({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "mapbatch") {
      return run_mapbatch({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "optimize") {
      return run_optimize({args.begin() + 1, args.end()});
    }
    if (!args.empty() &&
        (args[0] == "offline" || args[0] == "online" || args[0] == "remap")) {
      return run_mutation(args[0], {args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "inject") {
      return run_inject({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "stats") {
      return run_stats({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "metrics") {
      return run_metrics({args.begin() + 1, args.end()});
    }
    if (!args.empty() && args[0] == "trace") {
      return run_trace({args.begin() + 1, args.end()});
    }
    return run(args);
  } catch (const lama::Error& e) {
    std::fprintf(stderr, "lamactl: %s\n", e.what());
    std::fprintf(
        stderr,
        "usage: lamactl --cluster <file> [--hostfile <file>] [--topo]\n"
        "               [mpirun options: -np N, --map-by lama:<layout>,\n"
        "                --bind-to <level>, --by-*, --npernode N, ...]\n"
        "               [--pattern <name>[:<bytes>]]\n"
        "       lamactl serve [--workers N] [--shards N] [--capacity N]\n"
        "               [--max-queue N] [--max-inflight N] [--timeout-ms N]\n"
        "               [--retry-after-ms N] [--no-verify] [--stats]\n"
        "               [--flight-recorder N] [--trace-sample N]\n"
        "               [--trace-seed N] [--trace-dump <dir>]\n"
        "               [--state-dir <dir> [--snapshot-every N]\n"
        "                [--fsync-every N] [--no-prewarm] | --no-persist]\n"
        "               [--listen tcp:<host>:<port>|unix:<path>\n"
        "                [--max-connections N]]  # epoll socket server; text\n"
        "               # and binary wire framings auto-detected per conn\n"
        "               # --state-dir journals mutations and restores them\n"
        "               # on restart; SIGTERM/SIGINT drain and exit 0\n"
        "       lamactl query --cluster <file> [--hostfile <file>] -np N\n"
        "               [--map-by <spec>] [--bind-to <level>] [--id <name>]\n"
        "               [--npernode N] [--timeout-ms N] [--stats]\n"
        "               [--exec [--retries N] [--backoff-ms N]\n"
        "                [--max-inflight N]]  # run in-process with retries\n"
        "               [--connect <addr> [--binary]]  # against a --listen\n"
        "               # server, reconnecting with capped backoff\n"
        "       lamactl mapbatch --cluster <file> -np N[,N...]\n"
        "               [--map-by <spec>] [--threads N] [--bind-to <level>]\n"
        "               [--npernode N] [--timeout-ms N] [--id <name>]\n"
        "               [--stats] [--exec [--retries N] [--backoff-ms N]\n"
        "                [--max-inflight N]]  # one MAPBATCH, a job per np\n"
        "               [--connect <addr> [--binary]]\n"
        "       lamactl optimize --cluster <file> [--hostfile <file>]\n"
        "               (-np N --pattern <name>[:<bytes>] | --matrix <file>)\n"
        "               [--budget N] [--passes N] [--timeout-ms N]\n"
        "               [--threads N] [--id <name>] [--stats]\n"
        "               [--exec [--workers N]]  # communication-aware search\n"
        "       lamactl offline|online --id <name> --node N [--pus N,N...]\n"
        "               [--exec --cluster <file> [--hostfile <file>]\n"
        "                [--retries N] [--backoff-ms N] [--max-inflight N]]\n"
        "       lamactl remap [--id <name>] [--timeout-ms N] [--exec ...]\n"
        "               # one-shot verbs; print the protocol line, --exec it\n"
        "               # with retries (exit 3 = still busy after retries),\n"
        "               # or --connect <addr> [--binary] a running server\n"
        "       lamactl inject --cluster <file> [--seed N] [--requests N]\n"
        "               [--node-deaths N] [--node-recoveries N]\n"
        "               [--pu-offlines N] [--malformed N] [--corruptions N]\n"
        "               [--stalls N] [--journal-fails N] [--fsync-stalls N]\n"
        "               [--corrupt-records N] [--recovery-kills N]\n"
        "               [--state-dir <dir>] [--max-inflight N]\n"
        "               [--timeout-ms N] [--flight-recorder N]\n"
        "               [--trace-sample N] [--trace-dump <dir>]\n"
        "               [--stats]          # seeded fault-injection replay\n"
        "       lamactl stats [--json]     # print the STATS protocol line\n"
        "       lamactl metrics [--json]   # print the METRICS protocol line\n"
        "       lamactl trace [<id>|last|errors]  # print the TRACE line\n"
        "               (each: --connect <addr> [--binary] queries a live\n"
        "                server; --exec --cluster <file> [--hostfile <file>]\n"
        "                [--requests N] runs a traced in-process workload;\n"
        "                trace --exec adds [--dump <dir>] and ends with a\n"
        "                corrupted-tree failure so a failure trace exists)\n");
    return 1;
  }
}
