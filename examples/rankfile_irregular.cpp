// Irregular placement via a rankfile — CLI Level 4 (§V). A hybrid
// application wants rank 0 (a fat I/O/coordinator rank) bound to a whole
// socket on node0, and compute ranks packed two-per-core elsewhere; no
// regular pattern expresses that, so the rankfile pins each rank explicitly.
//
//   $ ./rankfile_irregular
#include <cstdio>

#include "cluster/cluster.hpp"
#include "lama/rankfile.hpp"
#include "rte/runtime.hpp"

int main() {
  using namespace lama;

  const Cluster cluster = Cluster::homogeneous(2, "socket:2 core:4 pu:2");
  const Allocation alloc = allocate_all(cluster);

  const char* rankfile =
      "# coordinator gets socket 0 of node0 (binding width 8)\n"
      "rank 0=node0 slot=0:0-3\n"
      "# compute ranks: one core each on the other socket\n"
      "rank 1=node0 slot=1:0\n"
      "rank 2=node0 slot=1:1\n"
      "rank 3=node0 slot=1:2\n"
      "rank 4=node0 slot=1:3\n"
      "# and node1 handles the I/O staging pair on explicit PUs\n"
      "rank 5=node1 slot=0,1\n"
      "rank 6=node1 slot=2-5\n";

  const RankfilePlacement rf = parse_rankfile(alloc, rankfile);
  LaunchPlan plan(alloc, rf.mapping, rf.binding);
  plan.launch(alloc);

  std::printf("rankfile:\n%s\n%s", rankfile,
              plan.report_bindings(alloc).c_str());

  std::printf("\nbinding widths: ");
  for (const LaunchedProcess& p : plan.procs()) {
    std::printf("rank%d=%zu ", p.rank, p.binding_width);
  }
  std::printf("\npu-oversubscribed: %s\n",
              rf.mapping.pu_oversubscribed ? "yes" : "no");
  return 0;
}
