// mpirun-style driver: pass any combination of the four CLI abstraction
// levels on the command line and see the resulting plan, exactly as the
// paper's Open MPI implementation exposes the LAMA.
//
//   $ ./mpirun_demo -np 8 --map-by lama:scbnh --bind-to core
//   $ ./mpirun_demo -np 8 --by-node --bind-to-socket
//   $ ./mpirun_demo -np 4 --mca rmaps_lama_map Nscbnh --mca rmaps_lama_bind 2c
//   $ ./mpirun_demo -np 2 --rankfile-text "rank 0=node0 slot=0;rank 1=node1 slot=3"
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "rte/runtime.hpp"
#include "support/error.hpp"

int main(int argc, char** argv) {
  using namespace lama;

  const std::vector<std::string> args(argv + 1, argv + argc);
  const Cluster cluster =
      Cluster::homogeneous(2, "socket:2 numa:2 l3:1 l2:2 l1:1 core:2 pu:2");
  const Allocation alloc = allocate_all(cluster);

  try {
    const PlacementSpec spec = parse_mpirun_options(args);
    std::printf("CLI abstraction level: %d\n", spec.level);
    LaunchPlan plan = plan_job(alloc, JobSpec{}, spec);
    plan.launch(alloc);
    std::printf("%s", plan.report_bindings(alloc).c_str());
    if (plan.mapping().pu_oversubscribed) {
      std::printf("warning: processing units are oversubscribed\n");
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "mpirun_demo: %s\n", e.what());
    std::fprintf(stderr,
                 "usage: mpirun_demo -np N [--by-node|--by-slot|--by-socket|"
                 "--by-core|--by-numa|--by-board]\n"
                 "       [--map-by lama:<layout>] [--bind-to <level>]\n"
                 "       [--mca rmaps_lama_map <layout>] "
                 "[--mca rmaps_lama_bind <width><level>]\n"
                 "       [--rankfile-text \"rank 0=node0 slot=0;...\"]\n");
    return 1;
  }
  return 0;
}
