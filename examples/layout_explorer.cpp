// Layout exploration — the workflow the paper argues for (§I): "domain-level
// experts need to be able to specify and experiment with different placements
// to find an optimal configuration". This example does that experiment
// programmatically: it prices a set of candidate layouts against several
// application communication patterns on a simulated NUMA cluster and prints
// the winners, losers, and the spread between them.
//
//   $ ./layout_explorer [np]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "lama/mapper.hpp"
#include "sim/evaluator.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace lama;

  const std::size_t np =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 64;

  const Cluster cluster =
      Cluster::homogeneous(4, "socket:2 numa:2 l3:1 l2:4 l1:1 core:1 pu:2");
  const Allocation alloc = allocate_all(cluster);
  if (np > alloc.total_online_pus()) {
    std::fprintf(stderr, "np %zu exceeds the %zu PUs of the demo cluster\n",
                 np, alloc.total_online_pus());
    return 1;
  }
  const DistanceModel model = DistanceModel::commodity();

  const std::vector<std::string> layouts = {
      "hcL1L2L3Nsbn",  // full pack (by-slot)
      "nhcL1L2L3Nsb",  // full scatter (by-node)
      "scbnh",         // Figure 2: sockets first
      "Nschbn",        // NUMA domains first
      "csbnh",         // cores first
      "nscbh",         // nodes, then sockets
      "L2cnsbh",       // L2 domains first
  };

  std::vector<TrafficPattern> patterns;
  patterns.push_back(make_ring(static_cast<int>(np), 8192));
  patterns.push_back(make_halo2d(8, static_cast<int>(np / 8), 4096));
  patterns.push_back(make_alltoall(static_cast<int>(np), 1024));
  patterns.push_back(make_toroidal(static_cast<int>(np), 16384, 128));
  patterns.push_back(make_pairs(static_cast<int>(np), 8192));

  for (const TrafficPattern& pattern : patterns) {
    TextTable table({"layout", "total ms", "max-rank ms", "inter-node msgs",
                     "max NIC MB"});
    double best = 0.0;
    double worst = 0.0;
    std::string best_name;
    std::string worst_name;
    for (const std::string& layout : layouts) {
      const MappingResult m = lama_map(alloc, layout, {.np = np});
      const CostReport r = evaluate_mapping(alloc, m, pattern, model);
      table.add_row({layout, TextTable::cell(r.total_ns / 1e6, 3),
                     TextTable::cell(r.max_rank_ns / 1e6, 3),
                     TextTable::cell(r.inter_node_messages),
                     TextTable::cell(
                         static_cast<double>(r.max_nic_bytes) / 1e6, 2)});
      if (best_name.empty() || r.total_ns < best) {
        best = r.total_ns;
        best_name = layout;
      }
      if (worst_name.empty() || r.total_ns > worst) {
        worst = r.total_ns;
        worst_name = layout;
      }
    }
    std::printf("pattern: %s (np=%zu)\n%s", pattern.name.c_str(), np,
                table.to_string().c_str());
    std::printf("  best %s, worst %s, spread %.1f%%\n\n", best_name.c_str(),
                worst_name.c_str(), (worst - best) / worst * 100.0);
  }

  std::printf(
      "Note how the winning layout differs per pattern — the reason the LAMA "
      "exposes the full permutation space instead of one policy.\n");
  return 0;
}
