// Affinity-driven mapping (related work [3]): when the application's
// communication matrix is known, a TreeMatch-style partitioner places
// heavily-communicating processes under shared caches automatically — no
// layout string to pick. This example contrasts it with the LAMA's regular
// layouts on traffic that no fixed order anticipates.
//
//   $ ./affinity_mapping
#include <cstdio>

#include "lama/baselines.hpp"
#include "lama/mapper.hpp"
#include "sim/evaluator.hpp"
#include "support/table.hpp"
#include "tmatch/treematch.hpp"

int main() {
  using namespace lama;

  const Allocation alloc = allocate_all(
      Cluster::homogeneous(2, "socket:2 numa:2 l3:1 l2:4 l1:1 core:1 pu:2"));
  const std::size_t np = alloc.total_online_pus();
  const DistanceModel model = DistanceModel::commodity();

  // Irregular application: a random sparse communication graph.
  const TrafficPattern pattern =
      make_random_sparse(static_cast<int>(np), 4, 8192, 99);
  const CommMatrix matrix = CommMatrix::from_pattern(pattern);

  TextTable table({"mapping", "total ms", "inter-node msgs"});
  auto add = [&](const char* name, const MappingResult& m) {
    const CostReport r = evaluate_mapping(alloc, m, pattern, model);
    table.add_row({name, TextTable::cell(r.total_ns / 1e6, 3),
                   TextTable::cell(r.inter_node_messages)});
  };
  add("by-slot", map_by_slot(alloc, {.np = np}));
  add("by-node", map_by_node(alloc, {.np = np}));
  add("lama:scbnh", lama_map(alloc, "scbnh", {.np = np}));
  add("lama:hcL1L2L3Nsbn", lama_map(alloc, "hcL1L2L3Nsbn", {.np = np}));
  add("treematch (comm matrix)", map_treematch(alloc, matrix, {.np = np}));

  std::printf("pattern: %s, np=%zu, 2 NUMA nodes\n%s\n", pattern.name.c_str(),
              np, table.to_string().c_str());
  std::printf(
      "The matrix-driven mapping needs the application's communication "
      "pattern up front;\nthe LAMA asks only for a layout string — the "
      "trade-off between the two approaches.\n");
  return 0;
}
