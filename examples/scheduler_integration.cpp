// Resource-manager integration (§III): jobs queue at a SLURM-like scheduler,
// receive core-granular allocations under different distribution policies,
// and each running job's processes are then mapped by the LAMA strictly
// inside its grant — the scheduler's restrictions are exactly the
// "unavailable resources" the mapping iteration skips.
//
//   $ ./scheduler_integration
#include <cstdio>

#include "lama/mapper.hpp"
#include "sched/scheduler.hpp"
#include "support/table.hpp"

int main() {
  using namespace lama;

  const Cluster cluster = Cluster::homogeneous(3, "socket:2 core:4 pu:2");
  Scheduler sched(cluster);

  const int sim = sched.submit({.name = "sim", .pus = 24});
  const int viz = sched.submit(
      {.name = "viz", .pus = 8, .distribution = SchedDistribution::kCyclic});
  const int big = sched.submit({.name = "big", .pus = 40});
  const int tiny = sched.submit({.name = "tiny", .pus = 4});

  std::printf("submitted: sim(24 block) viz(8 cyclic) big(40) tiny(4)\n");
  auto started = sched.schedule(/*backfill=*/true);
  std::printf("started after scheduling pass:");
  for (int id : started) std::printf(" %s", sched.job(id).spec.name.c_str());
  std::printf("  (big waits; tiny backfilled)\n\n");

  TextTable grants({"job", "node", "granted PUs"});
  for (int id : {sim, viz, tiny}) {
    for (const auto& [node, pus] : sched.job(id).grants) {
      grants.add_row({sched.job(id).spec.name,
                      cluster.node(node).topo.name(),
                      pus.to_string()});
    }
  }
  std::printf("%s\n", grants.to_string().c_str());

  // Map the simulation job with the LAMA inside its grant.
  const Allocation alloc = sched.allocation_for(sim);
  const MappingResult m = lama_map(alloc, "scbnh", {.np = 24});
  std::printf("mapped %zu 'sim' processes (layout scbnh), skipped %zu "
              "coordinates held by other jobs\n",
              m.num_procs(), m.skipped);

  // Finish the simulation; now the big job fits.
  sched.complete(sim);
  sched.complete(tiny);
  started = sched.schedule();
  std::printf("after sim+tiny complete, started:");
  for (int id : started) std::printf(" %s", sched.job(id).spec.name.c_str());
  std::printf("\nfree PUs now: %zu\n", sched.total_free_pus());
  (void)big;
  return 0;
}
