// BlueGene-style torus mapping (related work [8]-[10]): place a GTC-like
// toroidal application on a 3-D torus with different XYZT orders and watch
// hops and link congestion move — the network-level counterpart of the
// on-node placement the LAMA handles.
//
//   $ ./torus_mapping [nx ny nz]
#include <cstdio>
#include <cstdlib>

#include "lama/mapper.hpp"
#include "net/xyzt.hpp"
#include "sim/torus_evaluator.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace lama;

  const int nx = argc > 3 ? std::atoi(argv[1]) : 4;
  const int ny = argc > 3 ? std::atoi(argv[2]) : 4;
  const int nz = argc > 3 ? std::atoi(argv[3]) : 2;
  const TorusNetwork net(nx, ny, nz);

  const Allocation alloc =
      allocate_all(Cluster::homogeneous(net.num_nodes(), "socket:2 core:4"));
  const std::size_t np = alloc.total_online_pus();
  const TrafficPattern gtc = make_toroidal(static_cast<int>(np), 32768, 0);
  const DistanceModel model = DistanceModel::commodity();
  const TorusCostModel net_model;

  std::printf("%dx%dx%d torus, %zu nodes x 8 cores, toroidal pattern np=%zu\n\n",
              nx, ny, nz, net.num_nodes(), np);

  TextTable table({"XYZT order", "avg hops", "max hops", "max link MB",
                   "bottleneck ms"});
  for (const char* order : {"TXYZ", "XYZT", "TZYX", "YXTZ", "TZXY"}) {
    const MappingResult m = map_xyzt(alloc, net, order, {.np = np});
    const TorusCostReport r =
        evaluate_on_torus(alloc, net, m, gtc, model, net_model);
    table.add_row({order, TextTable::cell(r.avg_hops, 2),
                   TextTable::cell(static_cast<std::size_t>(r.max_hops)),
                   TextTable::cell(
                       static_cast<double>(r.max_link_bytes) / 1e6, 2),
                   TextTable::cell(r.bottleneck_ns / 1e6, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nT-first orders fill a node before stepping the torus (consecutive "
      "ranks share memory);\ncoordinate-first orders stripe ranks across "
      "the machine (every hop crosses a link).\n");
  return 0;
}
