// Heterogeneous-system walk-through (§IV-B of the paper): three different
// node generations plus scheduler/OS restrictions, one maximal tree, one
// layout — the mapper skips coordinates that do not exist or are off-lined.
//
//   $ ./heterogeneous_cluster
#include <cstdio>

#include "cluster/cluster.hpp"
#include "lama/mapper.hpp"
#include "lama/maximal_tree.hpp"
#include "support/table.hpp"
#include "topo/presets.hpp"

int main() {
  using namespace lama;

  // A cluster collected over time: a new SMT box, an old quad-core, and a
  // lopsided node (6 + 2 cores), as heterogeneous systems often are.
  Cluster cluster;
  cluster.add_node(NodeTopology::synthetic("socket:2 core:4 pu:2", "new"));
  cluster.add_node(NodeTopology::synthetic("socket:1 core:4", "old"));
  cluster.add_node(presets::lopsided_node("odd"));

  Allocation alloc = allocate_all(cluster);
  // The scheduler off-lined socket 1 of the new node for another job, and
  // the OS disabled one core of the old node for maintenance (§III-A).
  alloc.mutable_node(0).topo.set_object_disabled(ResourceType::kSocket, 1,
                                                 true);
  alloc.mutable_node(1).topo.set_object_disabled(ResourceType::kCore, 2, true);

  std::printf("allocated hardware (after restrictions):\n");
  for (std::size_t i = 0; i < alloc.num_nodes(); ++i) {
    const NodeTopology& topo = alloc.node(i).topo;
    std::printf("  %-20s online PUs: %s\n", topo.shape_string().c_str(),
                topo.online_pus().to_string().c_str());
  }

  const ProcessLayout layout = ProcessLayout::parse("scbnh");
  const MaximalTree mtree(alloc, layout);
  std::printf("\nmaximal tree widths for layout %s:\n",
              layout.to_string().c_str());
  for (ResourceType t : layout.order()) {
    std::printf("  %-18s %zu\n", std::string(resource_name(t)).c_str(),
                mtree.width_of(t));
  }
  std::printf("  capacity: %zu online PUs, iteration space %zu\n",
              mtree.online_pu_capacity(), mtree.iteration_space());

  const std::size_t np = mtree.online_pu_capacity();
  const MappingResult m = lama_map(alloc, layout, {.np = np});
  std::printf(
      "\nmapped %zu processes in %zu sweep(s); skipped %zu nonexistent or "
      "unavailable coordinates\n\n",
      m.num_procs(), m.sweeps, m.skipped);

  TextTable table({"rank", "node", "target PUs"});
  for (const Placement& p : m.placements) {
    table.add_row({std::to_string(p.rank),
                   alloc.node(p.node).topo.name(),
                   p.target_pus.to_string()});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nprocesses per node:");
  for (std::size_t i = 0; i < alloc.num_nodes(); ++i) {
    std::printf(" %s=%zu", alloc.node(i).topo.name().c_str(),
                m.procs_per_node[i]);
  }
  std::printf("\n");
  return 0;
}
