// Application study in miniature: a 2-D Jacobi heat-diffusion solver
// written against the mini-MPI layer (halo exchange + periodic residual
// allreduce), executed under different process placements. This is the
// shape of the studies the paper's introduction cites: same code, same
// machine, different mapping — different wall clock.
//
//   $ ./miniapp_jacobi [iterations]
#include <cstdio>
#include <cstdlib>

#include "lama/baselines.hpp"
#include "lama/mapper.hpp"
#include "mpi/minimpi.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace lama;

  const int iterations = argc > 1 ? std::atoi(argv[1]) : 10;

  // 4 dual-socket NUMA nodes, 128 PUs -> a 16 x 8 process grid.
  const Allocation alloc = allocate_all(
      Cluster::homogeneous(4, "socket:2 numa:2 l3:1 l2:4 l1:1 core:1 pu:2"));
  const std::size_t np = alloc.total_online_pus();
  const int px = 16;
  const int py = static_cast<int>(np) / px;

  // Per-iteration work: local stencil sweep (~80 us of compute per rank),
  // 4-neighbour halo exchange of one row/column (8 KiB), and a residual
  // allreduce every 5 iterations.
  auto jacobi = [&](Comm& comm) {
    const int r = comm.rank();
    const int x = r % px;
    const int y = r / px;
    auto grid_rank = [&](int gx, int gy) {
      return ((gy + py) % py) * px + ((gx + px) % px);
    };
    for (int iter = 0; iter < iterations; ++iter) {
      comm.compute(80'000.0);
      // Post all four halo sends, then receive all four.
      for (const int nb : {grid_rank(x - 1, y), grid_rank(x + 1, y),
                           grid_rank(x, y - 1), grid_rank(x, y + 1)}) {
        if (nb != r) comm.send(nb, 8192);
      }
      for (const int nb : {grid_rank(x - 1, y), grid_rank(x + 1, y),
                           grid_rank(x, y - 1), grid_rank(x, y + 1)}) {
        if (nb != r) comm.recv(nb);
      }
      if (iter % 5 == 4) comm.allreduce(8);
    }
  };

  const DistanceModel model = DistanceModel::commodity();
  const NicModel nic;

  std::printf(
      "2-D Jacobi, %dx%d process grid, %d iterations, on 4 NUMA nodes\n\n",
      px, py, iterations);
  TextTable table({"mapping", "makespan ms", "max rank wait ms",
                   "max NIC busy ms"});
  auto run = [&](const char* name, const MappingResult& m) {
    const SimReport r = run_program(alloc, m, jacobi, model, nic);
    double wait = 0.0;
    for (double w : r.wait_ns) wait = std::max(wait, w);
    table.add_row({name, TextTable::cell(r.makespan_ns / 1e6, 3),
                   TextTable::cell(wait / 1e6, 3),
                   TextTable::cell(r.max_nic_busy_ns / 1e6, 3)});
    return r.makespan_ns;
  };

  const double slot = run("by-slot", map_by_slot(alloc, {.np = np}));
  run("by-node", map_by_node(alloc, {.np = np}));
  run("lama:scbnh", lama_map(alloc, "scbnh", {.np = np}));
  const double tuned =
      run("lama:Nschbn", lama_map(alloc, "Nschbn", {.np = np}));
  run("lama:hcL1L2L3Nsbn", lama_map(alloc, "hcL1L2L3Nsbn", {.np = np}));

  std::printf("%s\n", table.to_string().c_str());
  std::printf("tuned vs default: %+.1f%%\n",
              (slot - tuned) / slot * 100.0);
  return 0;
}
