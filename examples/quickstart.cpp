// Quickstart: map and bind a 24-process job onto a two-node cluster with the
// paper's Figure 2 layout ("scbnh"), then print where every rank landed.
//
//   $ ./quickstart
//
// This walks the full pipeline a resource manager / MPI runtime would run:
// describe the hardware, allocate it, pick a process layout, map, bind,
// launch, report.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "rte/runtime.hpp"
#include "support/table.hpp"

int main() {
  using namespace lama;

  // Two identical nodes: 2 sockets x 4 cores x 2 hardware threads, exactly
  // the machines drawn in the paper's Figure 2.
  const Cluster cluster = Cluster::homogeneous(2, "socket:2 core:4 pu:2");
  const Allocation alloc = allocate_all(cluster);
  std::printf("cluster: %zu x %s\n\n", cluster.num_nodes(),
              cluster.node(0).topo.shape_string().c_str());

  // Level-3 CLI: the LAMA layout "scbnh" scatters ranks across sockets,
  // then cores, then boards, then nodes, and uses hardware threads last.
  const JobSpec job{.np = 24, .name = "quickstart"};
  LaunchPlan plan =
      plan_job(alloc, job, {"--map-by", "lama:scbnh", "--bind-to", "core"});
  plan.launch(alloc);

  std::printf("%s\n", plan.report_bindings(alloc).c_str());

  // Regenerate the Figure 2 grid: ranks by (node, socket, core, thread).
  TextTable grid({"node", "socket", "core", "thread 0", "thread 1"});
  for (std::size_t n = 0; n < alloc.num_nodes(); ++n) {
    const NodeTopology& topo = alloc.node(n).topo;
    for (std::size_t s = 0; s < 2; ++s) {
      for (std::size_t c = 0; c < 4; ++c) {
        std::string cell[2] = {"-", "-"};
        for (const LaunchedProcess& p : plan.procs()) {
          if (p.node != n) continue;
          const std::size_t pu =
              plan.mapping().placements[static_cast<std::size_t>(p.rank)]
                  .representative_pu();
          if (pu / 8 == s && (pu % 8) / 2 == c) {
            cell[pu % 2] = std::to_string(p.rank);
          }
        }
        grid.add_row({topo.name(), std::to_string(s), std::to_string(c),
                      cell[0], cell[1]});
      }
    }
  }
  std::printf("Figure 2 mapping grid (layout scbnh, 24 processes):\n%s",
              grid.to_string().c_str());
  return 0;
}
